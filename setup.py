"""Setup shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in fully offline environments (no ``wheel`` package, no
network to fetch build isolation dependencies) by falling back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
