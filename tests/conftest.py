"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence

import pytest

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.net.network import SimNetwork
from repro.net.protocol import ProtocolBlock, ProtocolNode
from repro.net.scheduler import Scheduler


def run_block_network(
    node_ids: Sequence[str],
    block_factory: Callable[[str], ProtocolBlock],
    scheduler: Optional[Scheduler] = None,
    seed: int = 0,
    max_steps: int = 500_000,
) -> Dict[str, object]:
    """Run one protocol block per node on a SimNetwork and return the outputs.

    ``block_factory`` receives the node id and returns the root block for that node.
    Nodes that never finish are reported with the value ``None``.
    """
    network = SimNetwork(scheduler=scheduler, seed=seed)
    ids = list(node_ids)
    for node_id in ids:
        network.add_node(
            ProtocolNode(node_id, ids, "root", lambda nid=node_id: block_factory(nid))
        )
    network.run(max_steps=max_steps)
    return {
        node_id: (network.node(node_id).output if network.node(node_id).finished else None)
        for node_id in ids
    }


@pytest.fixture(autouse=True)
def _fresh_oversubscription_warnings():
    """Reset the warn-once oversubscription dedupe between tests.

    ``resolve_workers`` warns once per distinct ``(requested, cpus)``
    resolution per process; without a reset, whichever test triggers a given
    resolution first would swallow the warning every later test asserts on.
    """
    from repro.scenarios.dispatch import reset_oversubscription_warnings

    reset_oversubscription_warnings()
    yield
    reset_oversubscription_warnings()


@pytest.fixture
def provider_ids():
    return [f"p{j}" for j in range(4)]


@pytest.fixture
def small_standard_bids():
    """A small standard-auction instance: 5 users, 3 providers (zero cost)."""
    users = (
        UserBid("u0", 1.0, 0.6),
        UserBid("u1", 0.9, 0.4),
        UserBid("u2", 1.2, 0.5),
        UserBid("u3", 0.8, 0.7),
        UserBid("u4", 1.1, 0.3),
    )
    providers = (
        ProviderAsk("p0", 0.0, 1.0),
        ProviderAsk("p1", 0.0, 0.8),
        ProviderAsk("p2", 0.0, 0.5),
    )
    return BidVector(users, providers)


@pytest.fixture
def small_double_bids():
    """A small double-auction instance: 6 users, 4 providers with costs."""
    users = (
        UserBid("u0", 1.20, 0.5),
        UserBid("u1", 1.10, 0.6),
        UserBid("u2", 1.00, 0.4),
        UserBid("u3", 0.95, 0.7),
        UserBid("u4", 0.85, 0.3),
        UserBid("u5", 0.80, 0.5),
    )
    providers = (
        ProviderAsk("p0", 0.20, 0.8),
        ProviderAsk("p1", 0.40, 0.7),
        ProviderAsk("p2", 0.60, 0.9),
        ProviderAsk("p3", 0.90, 1.0),
    )
    return BidVector(users, providers)


@pytest.fixture
def rng():
    return random.Random(1234)
