"""Tests for the amortised batch auction runner."""

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.engine import VectorizedStandardAuction, clear_solve_cache
from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.runtime.batch import BatchAuctionRunner


class TestBatchAuctionRunner:
    def test_batch_of_double_auction_rounds(self):
        runner = BatchAuctionRunner(
            DoubleAuction(),
            DoubleAuctionWorkload(seed=1),
            num_providers=4,
            config=FrameworkConfig(k=1),
        )
        summary = runner.run_batch(8, instances=range(3))
        assert summary.total_rounds == 3
        assert summary.aborted_rounds == 0
        assert summary.total_elapsed_seconds >= 0.0
        # Distinct instances are distinct rounds of the same scenario.
        results = {r.instance: r.report.result for r in summary.rounds}
        assert len(results) == 3

    def test_auctioneer_is_reused_across_rounds(self):
        runner = BatchAuctionRunner(
            DoubleAuction(),
            DoubleAuctionWorkload(seed=2),
            num_providers=4,
            config=FrameworkConfig(k=1),
        )
        runner.run_round(6, instance=0)
        first = runner._distributed
        runner.run_round(6, instance=1)
        assert runner._distributed is first

    def test_engine_resolution(self):
        runner = BatchAuctionRunner(
            StandardAuction(epsilon=0.5),
            StandardAuctionWorkload(seed=3),
            num_providers=4,
            engine="vectorized",
            config=FrameworkConfig(k=1),
        )
        assert isinstance(runner.algorithm, VectorizedStandardAuction)

    def test_default_engine_leaves_algorithm_as_given(self):
        """engine=None must not silently downgrade a pre-resolved mechanism."""
        mechanism = VectorizedStandardAuction(epsilon=0.5, pivot_mode="serial")
        runner = BatchAuctionRunner(
            mechanism,
            StandardAuctionWorkload(seed=3),
            num_providers=4,
            config=FrameworkConfig(k=1),
        )
        assert runner.algorithm is mechanism

    def test_figure5_run_batch_preserves_engine(self):
        from repro.bench.harness import Figure5Experiment

        experiment = Figure5Experiment(
            num_providers=4, n_values=(8,), p_values=(1,), engine="vectorized", seed=1
        )
        summary = experiment.run_batch(8, 1, instances=range(2))
        assert summary.aborted_rounds == 0
        assert isinstance(experiment.mechanism, VectorizedStandardAuction)

    def test_batch_results_match_engines(self):
        """The same batch, either engine: identical per-round auction results."""
        results = {}
        for engine in ("reference", "vectorized"):
            clear_solve_cache()
            runner = BatchAuctionRunner(
                StandardAuction(epsilon=0.5),
                StandardAuctionWorkload(seed=4),
                num_providers=4,
                engine=engine,
                config=FrameworkConfig(k=1),
            )
            summary = runner.run_batch(10, instances=range(2))
            assert summary.aborted_rounds == 0
            results[engine] = [r.report.result for r in summary.rounds]
        assert results["reference"] == results["vectorized"]

    def test_centralized_baseline_when_no_config(self):
        runner = BatchAuctionRunner(
            StandardAuction(epsilon=0.5),
            StandardAuctionWorkload(seed=5),
            num_providers=3,
            config=None,
        )
        round_result = runner.run_round(6)
        assert not round_result.aborted
        assert round_result.report.stats is None  # centralised: no network

    def test_executor_subset(self):
        """Fig4 shape: the protocol runs on 2k+1 executors out of m sellers."""
        runner = BatchAuctionRunner(
            DoubleAuction(),
            DoubleAuctionWorkload(seed=6),
            num_providers=8,
            config=FrameworkConfig(k=1),
            executors=["p00", "p01", "p02"],
        )
        round_result = runner.run_round(8, instance=0)
        assert not round_result.aborted
        assert runner._distributed is not None
        assert runner._distributed.providers == ["p00", "p01", "p02"]
