"""Tests for bidder/provider runtime nodes and full auction rounds."""

import pytest

from repro.adversary.bidder_behaviors import InconsistentBidder, InvalidBidder, SilentBidder
from repro.auctions.base import AuctionResult, BidVector, ProviderAsk, UserBid
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.common import is_abort
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.net.latency import ConstantLatencyModel
from repro.runtime.auction_run import AuctionRun
from repro.runtime.bidder import BidderNode, TruthfulBidder

PROVIDERS = [f"p{i}" for i in range(3)]


def small_bids(num_users=6, seed=0):
    return DoubleAuctionWorkload(seed=seed).generate(num_users, len(PROVIDERS), provider_ids=PROVIDERS)


class TestBidderStrategies:
    def test_truthful_bidder_sends_true_bid_everywhere(self):
        bid = UserBid("u0", 1.0, 0.5)
        strategy = TruthfulBidder()
        assert strategy.bid_for_provider(bid, "p0") == bid
        assert strategy.bid_for_provider(bid, "p1") == bid

    def test_bidder_node_ids_match_user_ids(self):
        node = BidderNode(UserBid("u7", 1.0, 0.5), PROVIDERS)
        assert node.node_id == "u7"


class TestAuctionRunHonest:
    def test_full_round_completes_and_matches_direct_run(self):
        bids = small_bids()
        run = AuctionRun(bids, DoubleAuction(), config=FrameworkConfig(k=1))
        result = run.execute()
        assert not result.aborted
        assert result.outcome.result == DoubleAuction().run(bids)

    def test_bidders_observe_the_agreed_outcome(self):
        bids = small_bids(seed=1)
        run = AuctionRun(bids, DoubleAuction(), config=FrameworkConfig(k=1))
        result = run.execute()
        for user_id, observed in result.bidder_observations.items():
            assert observed == result.outcome.result

    def test_with_latency_model(self):
        bids = small_bids(seed=2)
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=1),
            latency_model=ConstantLatencyModel(0.005),
        )
        result = run.execute()
        assert not result.aborted
        assert result.outcome.elapsed_time > 0.005

    def test_standard_auction_round(self):
        users = tuple(UserBid(f"u{i}", 1.0 + 0.05 * i, 0.4) for i in range(5))
        providers = tuple(ProviderAsk(pid, 0.0, 0.9) for pid in PROVIDERS)
        bids = BidVector(users, providers)
        run = AuctionRun(
            bids, StandardAuction(epsilon=0.5), config=FrameworkConfig(k=1, parallel=True)
        )
        result = run.execute()
        assert not result.aborted
        result.outcome.auction_result.allocation.check_feasible(bids, single_provider=True)


class TestAuctionRunMisbehavingBidders:
    def test_silent_bidder_is_excluded_but_round_completes(self):
        bids = small_bids(seed=3)
        silent_user = bids.users[0].user_id
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=1),
            bidder_strategies={silent_user: SilentBidder()},
            deadline=0.5,
        )
        result = run.execute()
        assert not result.aborted
        assert silent_user not in result.outcome.auction_result.allocation.winners()

    def test_invalid_bidder_is_excluded(self):
        bids = small_bids(seed=4)
        bad_user = bids.users[1].user_id
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=1),
            bidder_strategies={bad_user: InvalidBidder()},
        )
        result = run.execute()
        assert not result.aborted
        assert bad_user not in result.outcome.auction_result.allocation.winners()

    def test_inconsistent_bidder_does_not_break_agreement(self):
        bids = small_bids(seed=5)
        equivocator = bids.users[2].user_id
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=1),
            bidder_strategies={equivocator: InconsistentBidder()},
        )
        result = run.execute()
        # The outcome is a single agreed pair; all providers output the same thing.
        assert not result.aborted
        outputs = list(result.outcome.provider_outputs.values())
        assert all(o == outputs[0] for o in outputs)

    def test_other_bidders_unaffected_by_misbehaviour(self):
        """Validity: a correct user's bid is preserved even with a silent peer."""
        users = (
            UserBid("honest", 1.2, 0.4),
            UserBid("silent", 1.1, 0.4),
            UserBid("filler", 0.9, 0.4),
        )
        # Small per-provider capacities so that several providers trade and the
        # McAfee trade reduction leaves the top user as a winner.
        providers = tuple(ProviderAsk(pid, 0.1, 0.3) for pid in PROVIDERS)
        bids = BidVector(users, providers)
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=1),
            bidder_strategies={"silent": SilentBidder()},
            deadline=0.2,
        )
        result = run.execute()
        assert not result.aborted
        assert "honest" in result.outcome.auction_result.allocation.winners()
