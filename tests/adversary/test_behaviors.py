"""Unit tests for behaviour composition and coalition payoff accounting.

The integration suite (test_provider_coalitions.py) checks outcomes of full
simulated rounds; these tests pin the *units* underneath: how a coalition's node
factory composes deviant and honest implementations, how each deviating node
transforms its outgoing traffic, and how the resilience report accounts for
coalition member gains.
"""

import functools

import pytest

from repro.adversary.coalition import Coalition, coalition_node_factory
from repro.adversary.provider_behaviors import (
    CrashingProviderNode,
    DeviantProviderNode,
    EquivocatingProviderNode,
    InputForgingProviderNode,
    MessageDroppingProviderNode,
    OutputTamperingProviderNode,
)
from repro.auctions.base import (
    Allocation,
    AuctionResult,
    BidVector,
    Payments,
    ProviderAsk,
    UserBid,
)
from repro.auctions.double_auction import DoubleAuction
from repro.common import ABORT
from repro.core.config import FrameworkConfig
from repro.core.outcome import Outcome
from repro.core.provider_protocol import FrameworkProviderNode, ProviderInput
from repro.gametheory.resilience import DeviationOutcome, ResilienceReport

PROVIDERS = ["p0", "p1", "p2", "p3"]


def make_input(provider_id="p0"):
    users = {f"u{i}": UserBid(f"u{i}", 1.0 + i / 10.0, 0.5) for i in range(3)}
    asks = {pid: ProviderAsk(pid, 0.1, 1.0) for pid in PROVIDERS}
    return ProviderInput(provider_id, users, asks)


def make_node(cls=FrameworkProviderNode, provider_id="p0", **kwargs):
    return cls(
        make_input(provider_id),
        DoubleAuction(),
        FrameworkConfig(k=1),
        expected_users=["u0", "u1", "u2"],
        providers=PROVIDERS,
        **kwargs,
    )


class TestCoalitionComposition:
    def test_of_normalises_members_to_frozenset(self):
        coalition = Coalition.of(["p1", "p0", "p1"], EquivocatingProviderNode)
        assert coalition.members == frozenset({"p0", "p1"})
        assert coalition.size == 2

    def test_factory_builds_deviants_for_members_only(self):
        coalition = Coalition.of(["p1", "p3"], EquivocatingProviderNode)
        factory = coalition.factory()
        for pid in PROVIDERS:
            node = factory(
                make_input(pid),
                DoubleAuction(),
                FrameworkConfig(k=1),
                ["u0", "u1", "u2"],
                PROVIDERS,
            )
            if pid in coalition.members:
                assert isinstance(node, EquivocatingProviderNode)
            else:
                assert type(node) is FrameworkProviderNode
            assert node.node_id == pid

    def test_factory_forwards_constructor_arguments(self):
        coalition = Coalition.of(
            ["p2"], functools.partial(CrashingProviderNode, max_sends=7)
        )
        node = coalition_node_factory(coalition)(
            make_input("p2"),
            DoubleAuction(),
            FrameworkConfig(k=1),
            ["u0", "u1", "u2"],
            PROVIDERS,
        )
        assert isinstance(node, CrashingProviderNode)
        assert node.max_sends == 7


class TestBehaviourTransforms:
    def test_default_deviant_is_honest(self):
        node = make_node(DeviantProviderNode)
        assert node.transform_send("p1", {"x": 1}, "ba|value") == ({"x": 1}, "ba|value")

    def test_equivocator_corrupts_only_victims_and_matching_tags(self):
        node = make_node(EquivocatingProviderNode, victim_fraction=0.5)
        victims = node._victims()
        # Half of the three peers, by sorted order: exactly the first one.
        assert victims == {"p1"}
        assert node.transform_send("p1", "payload", "ba|value") == ("equivocated", "ba|value")
        # Non-victims and non-matching tags pass through unchanged.
        assert node.transform_send("p2", "payload", "ba|value") == ("payload", "ba|value")
        assert node.transform_send("p1", "payload", "ba|echo") == ("payload", "ba|echo")

    def test_equivocator_custom_corruption(self):
        node = make_node(
            EquivocatingProviderNode,
            victim_fraction=1.0,
            corrupt=lambda payload: {"forged": payload},
        )
        payload, tag = node.transform_send("p3", 42, "x|value")
        assert payload == {"forged": 42}
        assert tag == "x|value"

    def test_dropper_drops_matching_tags_only(self):
        node = make_node(MessageDroppingProviderNode, tag_substring="|echo")
        assert node.transform_send("p1", "payload", "ba|echo") is None
        assert node.transform_send("p1", "payload", "ba|value") == ("payload", "ba|value")

    def test_crasher_stops_after_max_sends(self):
        node = make_node(CrashingProviderNode, max_sends=2)
        assert node.transform_send("p1", "a", "t") is not None
        assert node.transform_send("p2", "b", "t") is not None
        assert node.transform_send("p3", "c", "t") is None
        assert node.transform_send("p1", "d", "t") is None

    def test_input_forger_applies_forge_before_protocol(self):
        def forge(provider_input):
            forged = dict(provider_input.received_user_bids)
            forged["u0"] = None
            return ProviderInput(
                provider_input.provider_id, forged, provider_input.received_provider_asks
            )

        node = make_node(InputForgingProviderNode, forge=forge)
        root = node._root_factory()  # the FrameworkBlock the node will run
        assert root.provider_input.received_user_bids["u0"] is None
        assert root.provider_input.received_user_bids["u1"] is not None


class TestOutputTampering:
    def _result(self):
        allocation = Allocation.from_dict({("u0", "p0"): 0.5})
        payments = Payments.from_dicts({"u0": 0.4}, {"p0": 0.4})
        return AuctionResult(allocation, payments)

    class _FakeBlock:
        def __init__(self, result):
            self.result = result

    def test_inflates_own_revenue_in_announced_output(self):
        node = make_node(OutputTamperingProviderNode, bonus=2.5)
        node._on_root_done(self._FakeBlock(self._result()))
        assert node.finished
        tampered = node.output
        assert isinstance(tampered, AuctionResult)
        assert tampered.payments.provider_revenue("p0") == pytest.approx(2.9)
        # The allocation and user payments are untouched — only revenue is doctored.
        assert tampered.allocation == self._result().allocation
        assert tampered.payments.user_payment("u0") == pytest.approx(0.4)

    def test_abort_results_pass_through_untampered(self):
        node = make_node(OutputTamperingProviderNode, bonus=2.5)
        node._on_root_done(self._FakeBlock(ABORT))
        assert node.finished
        assert node.output is ABORT


class TestCoalitionPayoffAccounting:
    def _outcome(self, result):
        return Outcome(
            result=result,
            provider_outputs={pid: result for pid in PROVIDERS},
            elapsed_time=1.0,
            messages=10,
            bytes_transferred=100,
        )

    def _deviation(self, gains):
        allocation = Allocation.from_dict({("u0", "p0"): 0.5})
        result = AuctionResult(allocation, Payments.from_dicts({"u0": 0.4}, {"p0": 0.4}))
        return DeviationOutcome(
            coalition=Coalition.of(list(gains), EquivocatingProviderNode),
            label="test",
            honest_outcome=self._outcome(result),
            deviating_outcome=self._outcome(result),
            member_gains=dict(gains),
        )

    def test_profitable_requires_strictly_positive_gain(self):
        assert not self._deviation({"p0": 0.0, "p1": -0.5}).profitable
        assert not self._deviation({"p0": 1e-12}).profitable  # below tolerance
        assert self._deviation({"p0": 0.1, "p1": -0.5}).profitable

    def test_altered_result_distinguishes_abort_from_divergence(self):
        outcome = self._deviation({"p0": 0.0})
        assert not outcome.altered_result  # identical valid outcomes
        aborted = Outcome(
            result=ABORT,
            provider_outputs={pid: ABORT for pid in PROVIDERS},
            elapsed_time=1.0,
            messages=0,
            bytes_transferred=0,
        )
        to_abort = self._deviation({"p0": 0.0})
        to_abort.deviating_outcome = aborted
        assert not to_abort.altered_result  # steering to ⊥ is allowed
        different = AuctionResult(
            Allocation.from_dict({("u1", "p1"): 0.5}),
            Payments.from_dicts({"u1": 0.1}, {"p1": 0.1}),
        )
        diverged = self._deviation({"p0": 0.0})
        diverged.deviating_outcome = self._outcome(different)
        assert diverged.altered_result  # a *different valid* pair is a violation

    def test_report_aggregates_violations(self):
        report = ResilienceReport(
            outcomes=[self._deviation({"p0": 0.0}), self._deviation({"p1": 0.7})]
        )
        assert len(report.profitable_deviations) == 1
        assert report.profitable_deviations[0].member_gains == {"p1": 0.7}
        assert not report.influence_violations
        assert not report.is_resilient()
