"""Tests for deviating provider coalitions (safety of the distributed simulation)."""

import functools

import pytest

from repro.adversary.coalition import Coalition
from repro.adversary.provider_behaviors import (
    CrashingProviderNode,
    EquivocatingProviderNode,
    InputForgingProviderNode,
    MessageDroppingProviderNode,
    OutputTamperingProviderNode,
)
from repro.auctions.double_auction import DoubleAuction
from repro.common import is_abort
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer
from repro.core.provider_protocol import ProviderInput

PROVIDERS = [f"p{i}" for i in range(4)]


def make_bids(seed=0):
    return DoubleAuctionWorkload(seed=seed).generate(8, len(PROVIDERS), provider_ids=PROVIDERS)


def make_auctioneer():
    return DistributedAuctioneer(
        DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
    )


def run_with_coalition(coalition, seed=0):
    auctioneer = make_auctioneer()
    bids = make_bids(seed)
    inputs = auctioneer.consistent_inputs(bids)
    honest = auctioneer.run_from_bids(bids)
    deviating = auctioneer.run(
        inputs,
        expected_users=[u.user_id for u in bids.users],
        node_factory=coalition.factory(),
    )
    return honest, deviating


class TestSingleDeviations:
    def test_output_tampering_is_detected_by_outcome_combination(self):
        coalition = Coalition.of(
            ["p0"], functools.partial(OutputTamperingProviderNode, bonus=10.0)
        )
        honest, deviating = run_with_coalition(coalition)
        assert not honest.aborted
        # The tampered output disagrees with the honest providers' pair -> ⊥.
        assert deviating.aborted

    def test_equivocation_leads_to_abort_not_a_different_result(self):
        coalition = Coalition.of(["p1"], EquivocatingProviderNode)
        honest, deviating = run_with_coalition(coalition)
        assert not honest.aborted
        assert deviating.aborted

    def test_message_dropping_cannot_forge_a_result(self):
        coalition = Coalition.of(
            ["p2"], functools.partial(MessageDroppingProviderNode, tag_substring="|echo")
        )
        honest, deviating = run_with_coalition(coalition)
        assert not honest.aborted
        # Omission can only prevent termination (⊥), never yield a different pair.
        assert deviating.aborted or deviating.outcome.result == honest.outcome.result

    def test_crash_mid_protocol_yields_abort(self):
        coalition = Coalition.of(
            ["p3"], functools.partial(CrashingProviderNode, max_sends=4)
        )
        honest, deviating = run_with_coalition(coalition)
        assert deviating.aborted or deviating.outcome.result == honest.outcome.result

    def test_input_forgery_is_caught_by_validation(self):
        def forge(provider_input: ProviderInput) -> ProviderInput:
            forged = dict(provider_input.received_user_bids)
            # Drop the strongest competitor's bid entirely.
            first_user = sorted(forged)[0]
            forged[first_user] = None
            return ProviderInput(
                provider_input.provider_id, forged, provider_input.received_provider_asks
            )

        coalition = Coalition.of(
            ["p0"], functools.partial(InputForgingProviderNode, forge=forge)
        )
        honest, deviating = run_with_coalition(coalition)
        assert not honest.aborted
        # The forged vector either loses the per-bidder majority (same outcome) or the
        # forger ends up input-validating a different vector (⊥); it is never adopted.
        assert deviating.aborted or deviating.outcome.result == honest.outcome.result


class TestCoalitionsOfSizeK:
    def test_two_member_coalition_cannot_alter_result_with_k2(self):
        """With m=5 > 2k=4 and a 2-member equivocating coalition, correct providers
        still never adopt a forged result."""
        providers = [f"p{i}" for i in range(5)]
        bids = DoubleAuctionWorkload(seed=3).generate(8, len(providers), provider_ids=providers)
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=providers, config=FrameworkConfig(k=2)
        )
        honest = auctioneer.run_from_bids(bids)
        coalition = Coalition.of(["p0", "p1"], EquivocatingProviderNode)
        deviating = auctioneer.run(
            auctioneer.consistent_inputs(bids),
            expected_users=[u.user_id for u in bids.users],
            node_factory=coalition.factory(),
        )
        assert not honest.aborted
        assert deviating.aborted or deviating.outcome.result == honest.outcome.result

    def test_coalition_helpers(self):
        coalition = Coalition.of(["p0", "p1"], EquivocatingProviderNode)
        assert coalition.size == 2
        assert "p0" in coalition.members
