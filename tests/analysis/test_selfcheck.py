"""The linter's reason to exist: the repo's own source must lint clean.

This is the static counterpart of the differential suites — every future
registry entry, spec dataclass and worker payload must conform *by
construction*.  A new finding here means either a real determinism/contract
hazard (fix it) or a deliberate exception (suppress it on the line with
``# repro: noqa[RPAxxx]`` plus a justification comment).
"""

from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _tree(name: str) -> Path:
    path = REPO_ROOT / name
    if not path.is_dir():  # pragma: no cover - installed-package runs
        pytest.skip(f"{name}/ not present next to tests/")
    return path


class TestRepoLintsClean:
    def test_src_has_zero_unsuppressed_findings(self):
        report = lint_paths([_tree("src")])
        assert report.findings == (), "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.files_checked > 50

    def test_benchmarks_have_zero_unsuppressed_findings(self):
        report = lint_paths([_tree("benchmarks")])
        assert report.findings == (), "\n".join(
            finding.render() for finding in report.findings
        )

    def test_full_rule_set_ran(self):
        report = lint_paths([_tree("src")])
        assert list(report.codes) == RULES.available()

    def test_suppressions_are_the_documented_wall_clock_fields(self):
        # The deliberate exceptions are pinned: the real-time threaded
        # transport's clock (and its genuine inter-poll sleep) and
        # SimNetwork's opt-in measure_compute timing.  If this count moves,
        # the new suppression needs the same scrutiny these eight got
        # (see DESIGN.md).
        report = lint_paths([_tree("src")])
        assert report.suppressed == 8
