"""The taint-path policy table: classification drives which rules apply where."""

import pytest

from repro.analysis.paths import classify_path


class TestDeterministicPaths:
    @pytest.mark.parametrize(
        "path",
        [
            "src/repro/auctions/base.py",
            "src/repro/net/scheduler.py",
            "src/repro/consensus/commitment.py",
            "src/repro/gametheory/resilience.py",
            "src/repro/scenarios/sweep.py",
            "src/repro/obs/trace.py",  # sim-time-only tracing is on the surface
            "src/repro/auctions/engine/kernel.py",  # nested packages inherit
            "/abs/checkout/src/repro/net/network.py",  # absolute paths classify too
        ],
    )
    def test_deterministic(self, path):
        assert classify_path(path).deterministic

    @pytest.mark.parametrize(
        "path",
        [
            "src/repro/scenarios/dispatch.py",  # the documented exemption
            "src/repro/core/framework.py",
            "src/repro/runtime/batch.py",
            "src/repro/adversary/coalition.py",
            "src/repro/cli.py",
            "tests/net/test_network.py",  # tests are not under repro/
        ],
    )
    def test_not_deterministic(self, path):
        assert not classify_path(path).deterministic


class TestAllowlistAndBenchmarks:
    def test_bench_package_allowlisted(self):
        klass = classify_path("src/repro/bench/harness.py")
        assert klass.allowlisted and not klass.deterministic

    def test_benchmarks_tests_detected(self):
        assert classify_path("benchmarks/test_bench_mechanisms.py").benchmarks_test
        assert not classify_path("benchmarks/conftest.py").benchmarks_test
        assert not classify_path("tests/net/test_network.py").benchmarks_test

    def test_display_path_is_posix(self):
        assert classify_path("src\\repro\\net\\x.py").display_path == "src/repro/net/x.py"
