"""The ``repro-auction lint`` front door: flags, formats and the exit contract.

Exit status is part of the interface (CI branches on it): 0 clean, 1 findings,
2 the lint run itself failed (unknown ``--select`` code, missing path,
unparseable file).
"""

import json

import pytest

from repro.cli import build_parser, main

CLEAN = "import random\n\nrng = random.Random(7)\n"
TAINTED = "import time\n\nx = time.time()\n"


@pytest.fixture()
def det_tree(tmp_path, monkeypatch):
    """A tmp repo-shaped tree with one deterministic-path module; cwd inside."""
    package = tmp_path / "src" / "repro" / "net"
    package.mkdir(parents=True)
    monkeypatch.chdir(tmp_path)

    def write(body: str):
        (package / "fixture.py").write_text(body)
        return package / "fixture.py"

    return write


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == [] and args.format == "text" and args.select == []

    def test_flags(self):
        args = build_parser().parse_args(
            ["lint", "src", "--format", "json", "--select", "RPA001,RPA002",
             "--select", "RPA007"]
        )
        assert args.paths == ["src"]
        assert args.format == "json"
        assert args.select == ["RPA001,RPA002", "RPA007"]

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "yaml"])


class TestExitContract:
    def test_clean_tree_exits_0(self, det_tree, capsys):
        det_tree(CLEAN)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, det_tree, capsys):
        det_tree(TAINTED)
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "RPA001" in out and "fixture.py:3" in out

    def test_unknown_select_code_exits_2_with_path(self, det_tree, capsys):
        det_tree(CLEAN)
        assert main(["lint", "--select", "RPA001,RPA999"]) == 2
        err = capsys.readouterr().err
        assert "--select[0]" in err and "RPA999" in err and "available" in err

    def test_missing_path_exits_2(self, det_tree, capsys):
        det_tree(CLEAN)
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_syntax_error_exits_2_naming_the_file(self, det_tree, capsys):
        det_tree("def broken(:\n")
        assert main(["lint"]) == 2
        err = capsys.readouterr().err
        assert "fixture.py" in err and "cannot parse" in err

    def test_no_paths_and_no_default_dirs_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint"]) == 2
        assert "name paths to lint" in capsys.readouterr().err


class TestFormats:
    def test_json_document(self, det_tree, capsys):
        det_tree(TAINTED)
        assert main(["lint", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["counts"] == {"RPA001": 1}
        (finding,) = document["findings"]
        assert finding["code"] == "RPA001" and finding["line"] == 3

    def test_select_narrows_the_run(self, det_tree, capsys):
        det_tree(TAINTED)
        # RPA002 alone does not see the wall-clock call
        assert main(["lint", "--select", "RPA002"]) == 0
        assert "rules RPA002" in capsys.readouterr().out

    def test_explicit_file_argument(self, det_tree, capsys):
        path = det_tree(TAINTED)
        assert main(["lint", str(path), "--select", "RPA001"]) == 1
        assert "RPA001" in capsys.readouterr().out

    def test_suppressed_count_reported(self, det_tree, capsys):
        det_tree(
            "import time\n\n"
            "x = time.time()  # repro: noqa[RPA001] fixture timing field\n"
        )
        assert main(["lint"]) == 0
        assert "1 suppressed" in capsys.readouterr().out
