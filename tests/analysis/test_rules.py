"""Per-rule fixtures: every RPA rule fires on seeded-bad code and stays quiet on good.

Each rule gets at least one *failing* fixture (the finding's code and line are
asserted, not just "something was found") and one *clean* fixture exercising
the nearest legitimate idiom — the pattern the rule must NOT confuse with the
bug class.  Plus: the ``# repro: noqa[RPAxxx]`` suppression contract and the
JSON report schema.
"""

import json

import pytest

from repro.analysis import (
    REPORT_VERSION,
    RULES,
    lint_source,
    report_to_dict,
    select_rules,
)
from repro.scenarios.spec import SpecError

#: A virtual path inside a deterministic package (RPA001/RPA002 apply here).
DET_PATH = "src/repro/net/fixture.py"
#: A virtual path outside the deterministic packages.
CORE_PATH = "src/repro/core/fixture.py"
#: A virtual path in the wall-clock-allowlisted bench package.
BENCH_PATH = "src/repro/bench/fixture.py"


def codes_at(report):
    return [(finding.code, finding.line) for finding in report.findings]


# ---------------------------------------------------------------------- RPA001 --
class TestDeterminismTaint:
    @pytest.mark.parametrize(
        "snippet, line",
        [
            ("import time\n\nx = time.time()\n", 3),
            ("import time\n\nx = time.perf_counter()\n", 3),
            ("import random\n\nx = random.randint(0, 3)\n", 3),
            ("from random import randint\n\nx = randint(0, 3)\n", 3),
            ("import random\n\nrng = random.Random()\n", 3),
            ("import numpy as np\n\nnp.random.seed(0)\n", 3),
            ("import numpy as np\n\nx = np.random.rand(4)\n", 3),
            ("import numpy as np\n\nrng = np.random.default_rng()\n", 3),
            ("import os\n\nx = os.urandom(8)\n", 3),
            ("import uuid\n\nx = uuid.uuid4()\n", 3),
            ("import secrets\n\nx = secrets.token_bytes(8)\n", 3),
            ("from datetime import datetime\n\nx = datetime.now()\n", 3),
        ],
    )
    def test_tainted_calls_fire(self, snippet, line):
        report = lint_source(snippet, DET_PATH, select=["RPA001"])
        assert codes_at(report) == [("RPA001", line)]

    @pytest.mark.parametrize(
        "snippet",
        [
            # seeded RNG construction is the blessed idiom
            "import random\n\nrng = random.Random(42)\n",
            "import numpy as np\n\nrng = np.random.default_rng(7)\n",
            # instance methods on a passed-in rng are invisible to the rule
            "def draw(rng):\n    return rng.random()\n",
            # annotations mention random.Random without calling it
            "import random\n\n\ndef f(rng: random.Random) -> None:\n    pass\n",
        ],
    )
    def test_clean_idioms(self, snippet):
        assert lint_source(snippet, DET_PATH, select=["RPA001"]).clean

    def test_outside_deterministic_paths_not_flagged(self):
        snippet = "import time\n\nx = time.time()\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA001"]).clean
        assert lint_source(snippet, BENCH_PATH, select=["RPA001"]).clean

    def test_dispatch_py_is_exempt(self):
        snippet = "import time\n\nx = time.time()\n"
        path = "src/repro/scenarios/dispatch.py"
        assert lint_source(snippet, path, select=["RPA001"]).clean
        sibling = "src/repro/scenarios/sweep.py"
        assert not lint_source(snippet, sibling, select=["RPA001"]).clean


# ---------------------------------------------------------------------- RPA002 --
class TestUnorderedIteration:
    @pytest.mark.parametrize(
        "snippet, line",
        [
            ("for x in {1, 2, 3}:\n    print(x)\n", 1),
            ("items = [x for x in {n for n in range(3)}]\n", 1),
            ("for x in set([3, 1, 2]):\n    print(x)\n", 1),
            ("values = list(frozenset((1, 2)))\n", 1),
            ("def f(a, b):\n    for x in a.intersection(b):\n        yield x\n", 2),
            ("pairs = list(enumerate(set('ab')))\n", 1),
        ],
    )
    def test_unordered_iteration_fires(self, snippet, line):
        report = lint_source(snippet, DET_PATH, select=["RPA002"])
        assert ("RPA002", line) in codes_at(report)

    @pytest.mark.parametrize(
        "snippet",
        [
            # sorting restores determinism
            "for x in sorted({1, 2, 3}):\n    print(x)\n",
            "values = sorted(set([3, 1, 2]))\n",
            # dicts are insertion-ordered; membership tests are order-free
            "d = {'a': 1}\nfor k in d:\n    print(k)\n",
            "s = {1, 2}\nok = 1 in s\n",
            # order-independent reductions over sets are fine
            "total = sum({1, 2, 3})\nbiggest = max(set([1, 2]))\n",
        ],
    )
    def test_clean_idioms(self, snippet):
        assert lint_source(snippet, DET_PATH, select=["RPA002"]).clean

    def test_outside_deterministic_paths_not_flagged(self):
        snippet = "for x in {1, 2}:\n    print(x)\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA002"]).clean


# ---------------------------------------------------------------------- RPA003 --
BAD_EXCEPTION = '''\
class PathError(ValueError):
    def __init__(self, path, message):
        self.path = path
        super().__init__(f"{path}: {message}")
'''

GOOD_EXCEPTION_REDUCE = '''\
class PathError(ValueError):
    def __init__(self, path, message):
        self.path = path
        super().__init__(f"{path}: {message}")

    def __reduce__(self):
        return (PathError, (self.path, self.message))
'''

GOOD_EXCEPTION_MIRROR = '''\
class SimpleError(ValueError):
    def __init__(self, path, message):
        super().__init__(path, message)
        self.path = path
'''


class TestPoolSafeException:
    def test_pre_pr3_specerror_shape_fires(self):
        # The exact PR 3 bug class: args holds one formatted string, __init__
        # expects two parameters — unpickling in the pool explodes.
        report = lint_source(BAD_EXCEPTION, CORE_PATH, select=["RPA003"])
        assert codes_at(report) == [("RPA003", 2)]

    def test_reduce_makes_it_safe(self):
        assert lint_source(GOOD_EXCEPTION_REDUCE, CORE_PATH, select=["RPA003"]).clean

    def test_parameter_mirroring_super_call_is_safe(self):
        assert lint_source(GOOD_EXCEPTION_MIRROR, CORE_PATH, select=["RPA003"]).clean

    def test_trivial_exception_is_safe(self):
        snippet = "class QuietError(RuntimeError):\n    pass\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA003"]).clean

    def test_applies_everywhere_not_just_deterministic_paths(self):
        assert not lint_source(BAD_EXCEPTION, BENCH_PATH, select=["RPA003"]).clean


# ---------------------------------------------------------------------- RPA004 --
class TestPicklableSubmission:
    def test_lambda_submission_fires(self):
        snippet = "def run(pool, data):\n    return pool.submit(lambda: data)\n"
        report = lint_source(snippet, CORE_PATH, select=["RPA004"])
        assert codes_at(report) == [("RPA004", 2)]

    def test_nested_def_submission_fires(self):
        snippet = (
            "def run(pool, data):\n"
            "    def work():\n"
            "        return data\n"
            "    return pool.submit(work)\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA004"])
        assert codes_at(report) == [("RPA004", 4)]

    def test_lambda_inside_partial_fires(self):
        snippet = (
            "import functools\n"
            "def run(backend, chunks, n):\n"
            "    worker = None\n"
            "    return backend.execute(chunks, functools.partial(lambda c: c), n)\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA004"])
        assert codes_at(report) == [("RPA004", 4)]

    def test_module_level_callable_is_clean(self):
        snippet = (
            "import functools\n"
            "def work(chunk):\n"
            "    return chunk\n"
            "def run(pool, backend, chunks, n):\n"
            "    pool.submit(work, chunks[0])\n"
            "    return backend.execute(chunks, functools.partial(work), n)\n"
        )
        assert lint_source(snippet, CORE_PATH, select=["RPA004"]).clean

    def test_unrelated_execute_is_clean(self):
        snippet = "def q(cursor):\n    cursor.execute('SELECT 1', ())\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA004"]).clean


# ---------------------------------------------------------------------- RPA005 --
class TestFrozenSpec:
    def test_unfrozen_dataclass_spec_fires(self):
        snippet = (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\n"
            "class ShardSpec:\n"
            "    shards: int = 1\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA005"])
        assert codes_at(report) == [("RPA005", 5)]

    def test_non_dataclass_spec_fires(self):
        snippet = "class ShardSpec:\n    shards = 1\n"
        report = lint_source(snippet, CORE_PATH, select=["RPA005"])
        assert ("RPA005", 1) in codes_at(report)

    def test_untyped_field_fires(self):
        snippet = (
            "from dataclasses import dataclass\n\n\n"
            "@dataclass(frozen=True)\n"
            "class ShardSpec:\n"
            "    shards: int = 1\n"
            "    replicas = 2\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA005"])
        assert codes_at(report) == [("RPA005", 7)]

    def test_frozen_typed_spec_is_clean(self):
        snippet = (
            "from dataclasses import dataclass\n"
            "from typing import ClassVar\n\n\n"
            "@dataclass(frozen=True)\n"
            "class ShardSpec:\n"
            "    KINDS: ClassVar[tuple] = ('a',)\n"
            "    shards: int = 1\n"
        )
        assert lint_source(snippet, CORE_PATH, select=["RPA005"]).clean

    def test_non_spec_class_untouched(self):
        snippet = "class Mutable:\n    pass\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA005"]).clean


# ---------------------------------------------------------------------- RPA006 --
class TestRegistryLiteralKind:
    def test_dynamic_kind_fires(self):
        snippet = (
            "from repro.scenarios.registry import MECHANISMS\n"
            "name = 'stand' + 'ard2'\n"
            "MECHANISMS.register(name, object)\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA006"])
        assert codes_at(report) == [("RPA006", 3)]

    def test_empty_kind_fires(self):
        snippet = "MECHANISMS.register('', object)\n"
        report = lint_source(snippet, CORE_PATH, select=["RPA006"])
        assert codes_at(report) == [("RPA006", 1)]

    def test_missing_kind_fires(self):
        snippet = "MECHANISMS.register()\n"
        report = lint_source(snippet, CORE_PATH, select=["RPA006"])
        assert codes_at(report) == [("RPA006", 1)]

    def test_literal_kind_is_clean(self):
        snippet = "MECHANISMS.register('standard2', object)\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA006"]).clean

    def test_lowercase_receivers_ignored(self):
        # atexit.register and friends are not registries
        snippet = "import atexit\n\n\ndef f():\n    pass\n\n\natexit.register(f)\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA006"]).clean


# ---------------------------------------------------------------------- RPA007 --
class TestBenchPytestmark:
    BENCHMARK_PATH = "benchmarks/test_bench_fixture.py"

    def test_missing_pytestmark_fires(self):
        snippet = "def test_speed(benchmark):\n    pass\n"
        report = lint_source(snippet, self.BENCHMARK_PATH, select=["RPA007"])
        assert codes_at(report) == [("RPA007", 1)]

    def test_pytestmark_without_bench_fires(self):
        snippet = (
            "import pytest\n\npytestmark = pytest.mark.slow\n\n\n"
            "def test_speed(benchmark):\n    pass\n"
        )
        report = lint_source(snippet, self.BENCHMARK_PATH, select=["RPA007"])
        assert codes_at(report) == [("RPA007", 3)]

    def test_bench_pytestmark_is_clean(self):
        snippet = (
            "import pytest\n\npytestmark = pytest.mark.bench\n\n\n"
            "def test_speed(benchmark):\n    pass\n"
        )
        assert lint_source(snippet, self.BENCHMARK_PATH, select=["RPA007"]).clean

    def test_list_pytestmark_is_clean(self):
        snippet = (
            "import pytest\n\npytestmark = [pytest.mark.bench, pytest.mark.slow]\n"
        )
        assert lint_source(snippet, self.BENCHMARK_PATH, select=["RPA007"]).clean

    def test_non_benchmark_files_untouched(self):
        assert lint_source("x = 1\n", DET_PATH, select=["RPA007"]).clean
        assert lint_source("x = 1\n", "benchmarks/conftest.py", select=["RPA007"]).clean


# ---------------------------------------------------------------------- RPA008 --
class TestStoreBackendKind:
    def test_missing_kind_fires(self):
        snippet = (
            "from repro.scenarios.store import StoreBackend\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    pass\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA008"])
        assert codes_at(report) == [("RPA008", 4)]

    def test_dynamic_kind_fires(self):
        snippet = (
            "from repro.scenarios.store import StoreBackend\n\n"
            "FORMAT = 'parquet'\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    kind = FORMAT\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA008"])
        assert codes_at(report) == [("RPA008", 7)]

    def test_empty_kind_fires(self):
        snippet = (
            "from repro.scenarios.store import StoreBackend\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    kind = ''\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA008"])
        assert codes_at(report) == [("RPA008", 5)]

    def test_registration_kind_drift_fires(self):
        snippet = (
            "from repro.scenarios.store import STORE_BACKENDS, StoreBackend\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    kind = 'parquet'\n\n\n"
            "STORE_BACKENDS.register('arrow', ParquetStoreBackend)\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA008"])
        assert codes_at(report) == [("RPA008", 8)]

    def test_literal_kind_with_matching_registration_is_clean(self):
        snippet = (
            "from repro.scenarios.store import STORE_BACKENDS, StoreBackend\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    kind = 'parquet'\n\n\n"
            "STORE_BACKENDS.register('parquet', ParquetStoreBackend)\n"
        )
        assert lint_source(snippet, CORE_PATH, select=["RPA008"]).clean

    def test_annotated_kind_is_clean(self):
        snippet = (
            "from repro.scenarios.store import StoreBackend\n\n\n"
            "class ParquetStoreBackend(StoreBackend):\n"
            "    kind: str = 'parquet'\n"
        )
        assert lint_source(snippet, CORE_PATH, select=["RPA008"]).clean

    def test_subclass_of_concrete_backend_needs_own_kind(self):
        snippet = (
            "from repro.scenarios.columnar import ColumnarStoreBackend\n\n\n"
            "class TunedColumnar(ColumnarStoreBackend):\n"
            "    pass\n"
        )
        report = lint_source(snippet, CORE_PATH, select=["RPA008"])
        assert codes_at(report) == [("RPA008", 4)]

    def test_unrelated_classes_untouched(self):
        snippet = "class Store:\n    kind = compute()\n"
        assert lint_source(snippet, CORE_PATH, select=["RPA008"]).clean


# ---------------------------------------------------------------------- RPA009 --
UNBOUNDED_RETRY = """\
def fetch(op):
    while True:
        try:
            return op()
        except OSError:
            continue
"""

SLEEPING_RETRY = """\
import time


def fetch(op):
    for attempt in range(3):
        try:
            return op()
        except OSError:
            time.sleep(0.1 * attempt)
"""

DYNAMIC_BOUND_RETRY = """\
def fetch(op, attempts):
    for attempt in range(attempts):
        try:
            return op()
        except OSError:
            continue
"""

LITERAL_BOUND_RETRY = """\
def fetch(op):
    for attempt in range(3):
        try:
            return op()
        except OSError:
            continue
    raise TimeoutError
"""

CONSTANT_BOUND_RETRY = """\
MAX_RETRIES = 4


def fetch(op):
    for attempt in range(MAX_RETRIES):
        try:
            return op()
        except OSError:
            continue
    raise TimeoutError
"""


class TestBoundedRetry:
    def test_while_true_retry_fires(self):
        report = lint_source(UNBOUNDED_RETRY, DET_PATH, select=["RPA009"])
        assert codes_at(report) == [("RPA009", 2)]

    def test_sleep_inside_loop_fires(self):
        report = lint_source(SLEEPING_RETRY, DET_PATH, select=["RPA009"])
        assert codes_at(report) == [("RPA009", 9)]

    def test_dynamic_bound_fires(self):
        report = lint_source(DYNAMIC_BOUND_RETRY, DET_PATH, select=["RPA009"])
        assert codes_at(report) == [("RPA009", 2)]

    def test_literal_bound_is_clean(self):
        assert lint_source(LITERAL_BOUND_RETRY, DET_PATH, select=["RPA009"]).clean

    def test_module_constant_bound_is_clean(self):
        assert lint_source(CONSTANT_BOUND_RETRY, DET_PATH, select=["RPA009"]).clean

    def test_dynamic_exit_condition_is_out_of_scope(self):
        # `while not done` is the protocol's own progress argument, not a
        # retry bound — the transport's poll loop must stay clean.
        snippet = (
            "def drain(mailbox, node):\n"
            "    while not node.finished:\n"
            "        try:\n"
            "            node.on_message(mailbox.get())\n"
            "        except KeyError:\n"
            "            continue\n"
        )
        assert lint_source(snippet, DET_PATH, select=["RPA009"]).clean

    def test_handler_that_raises_is_not_a_retry(self):
        snippet = (
            "def run_all(cells, op):\n"
            "    while True:\n"
            "        try:\n"
            "            return op(cells)\n"
            "        except OSError as exc:\n"
            "            raise RuntimeError('fatal') from exc\n"
        )
        assert lint_source(snippet, DET_PATH, select=["RPA009"]).clean

    def test_iterating_real_items_is_clean(self):
        snippet = (
            "def parse(lines):\n"
            "    out = []\n"
            "    for line in lines:\n"
            "        try:\n"
            "            out.append(int(line))\n"
            "        except ValueError:\n"
            "            continue\n"
            "    return out\n"
        )
        assert lint_source(snippet, DET_PATH, select=["RPA009"]).clean

    def test_nested_bounded_loop_does_not_taint_outer(self):
        # the try lives in the (bounded) inner loop; the outer `while True`
        # has no retry handler of its own.
        snippet = (
            "def pump(queue, op):\n"
            "    while True:\n"
            "        item = queue.pop()\n"
            "        if item is None:\n"
            "            break\n"
            "        for attempt in range(2):\n"
            "            try:\n"
            "                op(item)\n"
            "                break\n"
            "            except OSError:\n"
            "                continue\n"
        )
        assert lint_source(snippet, DET_PATH, select=["RPA009"]).clean

    def test_sleep_outside_loops_is_out_of_scope(self):
        snippet = "import time\n\n\ndef nap():\n    time.sleep(1.0)\n"
        assert lint_source(snippet, DET_PATH, select=["RPA009"]).clean

    def test_outside_deterministic_paths_not_flagged(self):
        assert lint_source(UNBOUNDED_RETRY, CORE_PATH, select=["RPA009"]).clean
        assert lint_source(SLEEPING_RETRY, BENCH_PATH, select=["RPA009"]).clean


# ---------------------------------------------------------------- suppression --
class TestNoqaSuppression:
    def test_line_scoped_code_scoped_suppression(self):
        snippet = (
            "import time\n\n"
            "a = time.time()  # repro: noqa[RPA001] wall-clock field, journaled as-is\n"
            "b = time.time()\n"
        )
        report = lint_source(snippet, DET_PATH, select=["RPA001"])
        assert codes_at(report) == [("RPA001", 4)]
        assert report.suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        snippet = "import time\n\na = time.time()  # repro: noqa[RPA002] wrong code\n"
        report = lint_source(snippet, DET_PATH, select=["RPA001"])
        assert codes_at(report) == [("RPA001", 3)]
        assert report.suppressed == 0

    def test_bare_noqa_without_codes_is_ignored(self):
        snippet = "import time\n\na = time.time()  # repro: noqa\n"
        report = lint_source(snippet, DET_PATH, select=["RPA001"])
        assert codes_at(report) == [("RPA001", 3)]

    def test_multi_code_suppression(self):
        snippet = (
            "import time\n\n"
            "a = list(set(str(time.time())))  # repro: noqa[RPA001, RPA002] fixture\n"
        )
        report = lint_source(snippet, DET_PATH, select=["RPA001", "RPA002"])
        assert report.clean
        assert report.suppressed == 2


# --------------------------------------------------------------- JSON schema --
class TestJsonReportSchema:
    def test_schema_fields_and_types(self):
        snippet = (
            "import time\n\n"
            "a = time.time()\n"
            "b = time.time()  # repro: noqa[RPA001] fixture\n"
        )
        report = lint_source(snippet, DET_PATH)
        document = report_to_dict(report)
        # stable envelope
        assert document["version"] == REPORT_VERSION
        assert document["tool"] == "repro-lint"
        assert document["rules"] == list(RULES.available())
        assert document["files_checked"] == 1
        assert document["suppressed"] == 1
        assert isinstance(document["summary"], str)
        assert document["counts"] == {"RPA001": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"code", "path", "line", "col", "message"}
        assert finding["code"] == "RPA001"
        assert finding["path"] == DET_PATH
        assert isinstance(finding["line"], int) and isinstance(finding["col"], int)
        # byte-stable: rendering twice gives identical documents
        from repro.analysis import render_json

        assert render_json(report) == render_json(report)
        json.loads(render_json(report))


# ------------------------------------------------------------------ selection --
class TestSelection:
    def test_unknown_code_is_path_precise(self):
        with pytest.raises(SpecError) as excinfo:
            select_rules(["RPA001", "RPA999"])
        assert excinfo.value.path == "--select[1]"
        assert "RPA999" in str(excinfo.value)
        assert "available" in str(excinfo.value)

    def test_comma_separated_and_case_insensitive(self):
        rules = select_rules(["rpa001,RPA004"])
        assert [rule.code for rule in rules] == ["RPA001", "RPA004"]

    def test_empty_selection_rejected(self):
        with pytest.raises(SpecError):
            select_rules([","])

    def test_registry_shape(self):
        # RULES is a scenario-style registry: stable sorted codes, membership.
        assert RULES.available() == sorted(RULES.available())
        assert "RPA001" in RULES and "RPA999" not in RULES
