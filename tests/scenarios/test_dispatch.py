"""Worker resolution policy + the pluggable executor dispatch layer.

The contract under test (DESIGN.md, "Executor dispatch"):

* ``workers="auto"`` sizes the pool from the CPUs this process may actually
  use (affinity-aware), and on a single available CPU resolves to the
  sequential path — pool overhead can never be the default;
* an explicit count above the available CPUs degrades to the available count
  with a stderr warning instead of oversubscribing;
* both executors (sweep and resilience audit) dispatch through
  :data:`EXECUTOR_BACKENDS`, and every backend/worker-count combination is
  bit-identical to the sequential path;
* the CLI accepts ``--workers auto`` and surfaces the degrade warning.
"""

import pytest

from repro.cli import main
from repro.scenarios import (
    EXECUTOR_BACKENDS,
    ExecutorBackend,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    WorkerPlan,
    resolve_workers,
    run_resilience,
    run_sweep,
    spec_from_dict,
)
from repro.scenarios.dispatch import (
    CHUNKS_PER_WORKER,
    SerialExecutorBackend,
    create_backend,
    split_chunks,
)
from repro.scenarios.resilience import ResilienceSpec


def _pin_cpus(monkeypatch, count):
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: count)


def _sweep():
    return SweepSpec(
        base=spec_from_dict(
            {"mechanism": "double", "users": 5, "providers": 3,
             "latency": "constant", "measure_compute": False}
        ),
        axes=(("users", (4, 5)), ("seed", (0, 1))),
    )


def _audit():
    return ResilienceSpec(
        name="dispatch-audit",
        base=ScenarioSpec(
            mechanism="double", users=6, providers=3, config={"k": 1},
            latency="constant", measure_compute=False,
        ),
        k=1,
        adversaries=("equivocate",),
        seeds=(0, 1),
    )


class TestResolveWorkers:
    def test_none_is_sequential(self):
        assert resolve_workers(None) == WorkerPlan(
            requested=None, workers=1, backend="serial", capped=False
        )

    def test_auto_sizes_from_available_cpus(self, monkeypatch):
        _pin_cpus(monkeypatch, 6)
        plan = resolve_workers("auto")
        assert plan.workers == 6
        assert plan.backend == "process"
        assert plan.requested == "auto"
        assert not plan.capped
        assert plan.parallel

    def test_auto_on_one_core_host_is_sequential(self, monkeypatch, capsys):
        # The headline policy: the default fast path can never pay pool
        # overhead — one available CPU means the sequential path, silently.
        _pin_cpus(monkeypatch, 1)
        plan = resolve_workers("auto")
        assert plan == WorkerPlan(
            requested="auto", workers=1, backend="serial", capped=False
        )
        assert not plan.parallel
        assert capsys.readouterr().err == ""

    def test_oversubscription_degrades_with_warning(self, monkeypatch, capsys):
        _pin_cpus(monkeypatch, 2)
        plan = resolve_workers(4)
        assert plan.workers == 2
        assert plan.backend == "process"
        assert plan.capped
        err = capsys.readouterr().err
        assert "requested 4 workers" in err
        assert "2 CPUs are available" in err
        assert "running 2" in err

    def test_oversubscription_warns_once_per_resolution(self, monkeypatch, capsys):
        # Audit harnesses re-resolve the same worker request several times in
        # one invocation; the degrade warning must print exactly once per
        # distinct (requested, available) resolution, not once per call.
        _pin_cpus(monkeypatch, 2)
        first = resolve_workers(4)
        second = resolve_workers(4)
        assert first == second  # the dedupe changes stderr, never the plan
        err = capsys.readouterr().err
        assert err.count("requested 4 workers") == 1
        assert len(err.strip().splitlines()) == 1
        # A different request is a different warning, and still prints.
        resolve_workers(8)
        assert "requested 8 workers" in capsys.readouterr().err

    def test_warn_once_dedupe_is_resettable(self, monkeypatch, capsys):
        from repro.scenarios.dispatch import reset_oversubscription_warnings

        _pin_cpus(monkeypatch, 2)
        resolve_workers(4)
        reset_oversubscription_warnings()
        resolve_workers(4)
        assert capsys.readouterr().err.count("requested 4 workers") == 2

    def test_explicit_count_within_budget_is_silent(self, monkeypatch, capsys):
        _pin_cpus(monkeypatch, 8)
        plan = resolve_workers(3)
        assert plan == WorkerPlan(requested=3, workers=3, backend="process")
        assert capsys.readouterr().err == ""

    def test_explicit_count_on_one_core_degrades_to_serial(self, monkeypatch, capsys):
        _pin_cpus(monkeypatch, 1)
        plan = resolve_workers(4)
        assert plan.backend == "serial"
        assert plan.workers == 1
        assert plan.capped
        assert "only 1 CPU is available" in capsys.readouterr().err

    def test_workers_one_is_sequential_without_warning(self, monkeypatch, capsys):
        _pin_cpus(monkeypatch, 8)
        assert resolve_workers(1).backend == "serial"
        assert capsys.readouterr().err == ""

    @pytest.mark.parametrize("bad", [0, -2, "fast", "", 2.5, True])
    def test_invalid_values_raise_path_precise_spec_errors(self, bad):
        with pytest.raises(SpecError, match=r"workers"):
            resolve_workers(bad)

    def test_error_path_is_customisable(self):
        with pytest.raises(SpecError, match=r"audit\.workers"):
            resolve_workers("sideways", path="audit.workers")

    def test_backend_override_applies_to_parallel_plans_only(self, monkeypatch):
        _pin_cpus(monkeypatch, 4)
        assert resolve_workers(2, backend="custom").backend == "custom"
        assert resolve_workers(None, backend="custom").backend == "serial"


class TestBackendRegistry:
    def test_builtin_backends_are_registered(self):
        assert set(EXECUTOR_BACKENDS.available()) >= {"serial", "process"}

    def test_unknown_backend_is_a_spec_error(self):
        with pytest.raises(SpecError, match=r"workers\.backend"):
            create_backend("multihost")

    def test_custom_backend_plugs_into_run_sweep(self, monkeypatch):
        # The extension seam: registering a backend kind makes it reachable
        # from run_sweep without touching the executor, like MECHANISMS.
        _pin_cpus(monkeypatch, 8)
        used = []

        class TracingBackend(SerialExecutorBackend):
            def execute(self, chunks, worker, workers):
                used.append((len(chunks), workers))
                return super().execute(chunks, worker, workers)

        EXECUTOR_BACKENDS.register("tracing", TracingBackend)
        try:
            sweep = _sweep()
            baseline = run_sweep(sweep)
            traced = run_sweep(sweep, workers=2, backend="tracing")
            assert traced.records == baseline.records
            assert used and used[0][1] == 2
        finally:
            EXECUTOR_BACKENDS.unregister("tracing")


class TestSplitChunks:
    def test_splits_largest_until_target(self):
        chunks = split_chunks([list(range(8))], target=4)
        assert len(chunks) == 4
        assert sorted(x for chunk in chunks for x in chunk) == list(range(8))

    def test_indivisible_chunks_survive(self):
        assert split_chunks([[1], [2]], target=10) == [[1], [2]]

    def test_empty_input(self):
        assert split_chunks([], target=4) == []


class TestDispatchBitIdentity:
    def test_sweep_auto_equals_sequential(self, monkeypatch):
        sweep = _sweep()
        sequential = run_sweep(sweep)
        _pin_cpus(monkeypatch, 4)
        assert run_sweep(sweep, workers="auto").records == sequential.records

    def test_sweep_auto_on_one_core_never_launches_a_pool(self, monkeypatch):
        _pin_cpus(monkeypatch, 1)

        def forbidden(self, chunks, worker, workers):  # pragma: no cover
            raise AssertionError("process pool launched on a 1-CPU host")

        monkeypatch.setattr(
            "repro.scenarios.dispatch.ProcessExecutorBackend.execute", forbidden
        )
        result = run_sweep(_sweep(), workers="auto")
        assert len(result.records) == 4

    def test_resilience_auto_equals_sequential(self, monkeypatch):
        spec = _audit()
        sequential = run_resilience(spec)
        _pin_cpus(monkeypatch, 4)
        parallel = run_resilience(spec, workers="auto")
        assert parallel.records == sequential.records
        assert parallel.is_resilient() == sequential.is_resilient()

    def test_resilience_auto_on_one_core_never_launches_a_pool(self, monkeypatch):
        _pin_cpus(monkeypatch, 1)

        def forbidden(self, chunks, worker, workers):  # pragma: no cover
            raise AssertionError("process pool launched on a 1-CPU host")

        monkeypatch.setattr(
            "repro.scenarios.dispatch.ProcessExecutorBackend.execute", forbidden
        )
        result = run_resilience(_audit(), workers="auto")
        assert result.records

    def test_capped_sweep_still_bit_identical(self, monkeypatch, capsys):
        # Degrading 4 -> 2 workers must only change the pool size, never the
        # records: chunk determinism is independent of the worker count.
        sweep = _sweep()
        sequential = run_sweep(sweep)
        _pin_cpus(monkeypatch, 2)
        capped = run_sweep(sweep, workers=4)
        assert capped.records == sequential.records
        assert "requested 4 workers" in capsys.readouterr().err


class TestCliWorkers:
    def test_cli_accepts_auto(self, tmp_path, capsys, monkeypatch):
        _pin_cpus(monkeypatch, 2)
        from repro.scenarios import dump_sweep

        spec_path = tmp_path / "sweep.json"
        dump_sweep(_sweep(), spec_path)
        journal = tmp_path / "out.jsonl"
        assert main(
            ["sweep", "--spec", str(spec_path), "--workers", "auto",
             "--output", str(journal)]
        ) == 0
        assert "executed 4 new rounds" in capsys.readouterr().err

    def test_cli_oversubscription_warning(self, tmp_path, capsys, monkeypatch):
        _pin_cpus(monkeypatch, 1)
        from repro.scenarios import dump_sweep

        spec_path = tmp_path / "sweep.json"
        dump_sweep(_sweep(), spec_path)
        assert main(["sweep", "--spec", str(spec_path), "--workers", "64"]) == 0
        assert "requested 64 workers" in capsys.readouterr().err

    def test_cli_rejects_garbage_worker_counts(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig4", "--workers", "sideways"])
        assert "expected a positive integer or 'auto'" in capsys.readouterr().err

    def test_chunks_per_worker_bounds_checkpoint_loss(self):
        # Documented knob: chunk count targets workers * CHUNKS_PER_WORKER so
        # a crash loses at most the in-flight chunks between journal appends.
        assert CHUNKS_PER_WORKER >= 2
