"""The chaos audit surface: spec tree, invariants, locks, quarantine, CLI.

The contracts under test (ISSUE 9, audit surface):

* ``FaultSpec``/``ChaosSpec`` parse from JSON/TOML-shaped tables with
  path-precise errors, round-trip losslessly, and compose with ``--set``
  overrides;
* every cell of a chaos run checks delivery conservation, termination,
  bit-identical replay and (``torn_append``) journal repair-on-resume;
* the **differential lock**: an empty ``FaultPlan`` produces a byte-identical
  ``RunRecord`` JSON to no plan at all, and an unarmed (store-level-only)
  plan leaves the network counters identical to the fault-free run;
* the **determinism lock**: a chaos run — fault journal digest and
  retransmission counters included — replays bit-identically across
  interpreter invocations with different ``PYTHONHASHSEED`` values;
* parallel execution is bit-identical to sequential, journals resume with 0
  new cells, and ``--quarantine`` survives a poison fault, journals the
  failed cells and lets ``--resume`` re-execute exactly those.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import build_parser, main
from repro.community.workload import default_provider_ids
from repro.core.framework import DistributedAuctioneer
from repro.net.faults import FAULTS, FaultModel, FaultPlan, RecoveryPolicy
from repro.scenarios import (
    ChaosRecord,
    ChaosSpec,
    FaultSpec,
    ScenarioSpec,
    Simulation,
    SpecError,
    chaos_fingerprint,
    chaos_from_dict,
    chaos_to_dict,
    chaos_with_overrides,
    dump_chaos,
    load_chaos,
    run_chaos,
    spec_from_dict,
)
from repro.scenarios.runner import (
    build_latency_model,
    build_mechanism,
    build_workload,
    record_from_outcome,
)

_PARENT_PID = os.getpid()
SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    # Keep the pool paths parallel (and warning-free) on single-core runners.
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _base_table(**overrides):
    data = {
        "mechanism": "double",
        "users": 6,
        "providers": 3,
        "config": {"k": 1},
        "latency": "constant",
        "measure_compute": False,
    }
    data.update(overrides)
    return data


def _chaos_table(**overrides):
    data = {
        "name": "test-audit",
        "base": _base_table(),
        "faults": ["loss", {"kind": "loss", "rate": 0.3, "label": "heavy"}],
        "seeds": [0, 1],
    }
    data.update(overrides)
    return data


# ------------------------------------------------------------------ spec tree --
class TestFaultSpec:
    def test_bare_string(self):
        fault = FaultSpec.from_value("loss", "faults[0]")
        assert fault.kind == "loss" and fault.params == {} and fault.label is None
        assert fault.display_label == "loss"
        assert fault.to_value() == "loss"

    def test_table_with_params_and_label(self):
        fault = FaultSpec.from_value(
            {"kind": "loss", "rate": 0.2, "label": "light"}, "faults[0]"
        )
        assert fault.params == {"rate": 0.2} and fault.label == "light"
        assert fault.display_label == "light"
        assert fault.to_value() == {"kind": "loss", "label": "light", "rate": 0.2}

    def test_display_label_sorts_params(self):
        fault = FaultSpec("crash", {"node": "p01", "at": 0.1, "duration": 0.2})
        assert fault.display_label == "crash(at=0.1,duration=0.2,node=p01)"

    def test_missing_kind_is_path_precise(self):
        with pytest.raises(SpecError, match=r"faults\[3\]"):
            FaultSpec.from_value({"rate": 0.5}, "faults[3]")

    def test_wrong_type_is_path_precise(self):
        with pytest.raises(SpecError, match=r"faults\[1\]"):
            FaultSpec.from_value(17, "faults[1]")

    def test_unknown_kind_fails_at_build(self):
        with pytest.raises(SpecError, match=r"faults\[0\].*no-such-fault"):
            FaultSpec("no-such-fault").build("faults[0]")

    def test_bad_params_fail_at_build_with_path(self):
        with pytest.raises(SpecError, match=r"faults\[2\]"):
            FaultSpec("loss", {"rate": 3.0}).build("faults[2]")


class TestChaosSpecParsing:
    def test_round_trip(self):
        spec = chaos_from_dict(_chaos_table(recovery={"max_retries": 5}))
        assert chaos_from_dict(chaos_to_dict(spec)) == spec
        assert spec.recovery.max_retries == 5
        assert spec.effective_seeds() == (0, 1)

    def test_file_round_trip_json_and_toml(self, tmp_path):
        spec = chaos_from_dict(_chaos_table(recovery={"enabled": False}))
        for name in ("audit.json", "audit.toml"):
            path = tmp_path / name
            dump_chaos(spec, path)
            assert load_chaos(path) == spec

    def test_unknown_key_is_rejected(self):
        with pytest.raises(SpecError, match=r"fautls"):
            chaos_from_dict(_chaos_table(fautls=["loss"]))

    def test_non_distributed_runner_is_rejected(self):
        table = _chaos_table(base=_base_table(runner="centralized"))
        with pytest.raises(SpecError, match=r"base\.runner"):
            chaos_from_dict(table)

    def test_empty_fault_grid_is_rejected(self):
        with pytest.raises(SpecError, match=r"faults.*at least one"):
            chaos_from_dict(_chaos_table(faults=[]))

    def test_recovery_unknown_key_is_path_precise(self):
        with pytest.raises(SpecError, match=r"recovery\.retries"):
            chaos_from_dict(_chaos_table(recovery={"retries": 3}))

    def test_recovery_invalid_value_is_wrapped(self):
        with pytest.raises(SpecError, match=r"recovery"):
            chaos_from_dict(_chaos_table(recovery={"max_retries": -1}))

    def test_seeds_must_be_integers(self):
        with pytest.raises(SpecError, match=r"seeds"):
            chaos_from_dict(_chaos_table(seeds=[0, "one"]))

    def test_defaults_fall_back_to_base_seed_and_policy(self):
        spec = chaos_from_dict(_chaos_table(seeds=[], base=_base_table(seed=7)))
        assert spec.effective_seeds() == (7,)
        assert spec.effective_recovery() == RecoveryPolicy()

    def test_overrides_compose(self):
        spec = chaos_from_dict(_chaos_table(recovery={"max_retries": 3}))
        altered = chaos_with_overrides(
            spec, {"base.users": 9, "recovery.max_retries": 6}
        )
        assert altered.base.users == 9
        assert altered.recovery.max_retries == 6
        assert spec.base.users == 6  # the original is untouched

    def test_fingerprint_tracks_the_grid(self):
        spec = chaos_from_dict(_chaos_table())
        same = chaos_from_dict(_chaos_table())
        other = chaos_from_dict(_chaos_table(faults=["duplicate"]))
        assert chaos_fingerprint(spec) == chaos_fingerprint(same)
        assert chaos_fingerprint(spec) != chaos_fingerprint(other)


# ------------------------------------------------------------------ invariants --
class TestChaosInvariants:
    def test_fault_library_is_clean_under_recovery(self):
        spec = chaos_from_dict(
            _chaos_table(
                faults=[
                    "loss",
                    "duplicate",
                    "reorder",
                    # windows sized to the base run's virtual-time span
                    # (~5 ms at constant latency) so both models really fire
                    {"kind": "latency_spike", "at": 0.001, "duration": 0.004, "extra": 0.05},
                    {"kind": "crash", "node": "p01", "at": 0.001, "duration": 0.002},
                    "torn_append",
                ]
            )
        )
        result = run_chaos(spec)
        assert len(result.records) == 12
        assert result.is_clean(), [r.label for r in result.failing_cells]
        lossy = [r for r in result.records if r.fault == "loss"]
        assert all(r.messages_lost > 0 and r.retransmissions > 0 for r in lossy)
        crashy = [r for r in result.records if r.fault == "crash"]
        assert all(r.faults_injected > 0 for r in crashy)  # the window is live
        assert all(
            r.messages_sent
            == r.messages_delivered + r.messages_dropped + r.messages_lost
            for r in result.records
        )
        assert all(len(r.fault_digest) == 64 for r in result.records)

    def test_record_round_trips_losslessly(self):
        spec = chaos_from_dict(_chaos_table(seeds=[0]))
        record = run_chaos(spec).records[0]
        assert ChaosRecord.from_dict(record.to_dict()) == record

    def test_result_payload_shape(self):
        result = run_chaos(chaos_from_dict(_chaos_table(seeds=[0])))
        payload = result.to_dict()
        assert payload["chaos"] == "test-audit"
        assert payload["clean"] is True
        assert "quarantined" not in payload
        assert len(payload["records"]) == 2

    def test_two_in_process_runs_are_identical(self):
        spec = chaos_from_dict(_chaos_table())
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert [r.to_dict() for r in first.records] == [
            r.to_dict() for r in second.records
        ]

    def test_simulation_facade(self):
        base = spec_from_dict(_base_table())
        with Simulation(base) as sim:
            result = sim.run_chaos(["loss"], recovery={"max_retries": 5}, seeds=[0, 1])
        assert result.name == "scenario-chaos"
        assert len(result.records) == 2 and result.is_clean()
        assert all(r.max_retries == 5 for r in result.records)


class TestDifferentialLock:
    def test_empty_plan_record_is_byte_identical_to_no_plan(self):
        spec = spec_from_dict(_base_table())
        mechanism = build_mechanism(spec)
        provider_ids = default_provider_ids(spec.providers)
        bids = build_workload(spec).generate(
            spec.users, spec.providers, provider_ids=provider_ids, instance=0
        )

        def run(plan):
            auctioneer = DistributedAuctioneer(
                mechanism,
                providers=provider_ids,
                config=spec.config.to_config(),
                latency_model=build_latency_model(spec, None),
                seed=spec.seed,
                measure_compute=False,
                fault_plan=plan,
            )
            report = auctioneer.run_from_bids(bids)
            record = record_from_outcome(
                spec, 0, report.outcome, mechanism, len(provider_ids)
            )
            return json.dumps(record.to_dict(), sort_keys=True)

        assert run(None) == run(FaultPlan())

    def test_unarmed_plan_counters_match_the_fault_free_run(self):
        # torn_append is store-level: the network must not see it at all.
        base = spec_from_dict(_base_table())
        with Simulation(base) as sim:
            baseline = sim.run().to_dict()
        record = run_chaos(
            chaos_from_dict(_chaos_table(faults=["torn_append"], seeds=[0]))
        ).records[0]
        assert record.faults_injected == 0 and record.retransmissions == 0
        assert record.messages_delivered == baseline["messages"]
        assert record.elapsed_seconds == baseline["elapsed_seconds"]


# ------------------------------------------------------------------- parallel --
class TestChaosParallel:
    def test_parallel_is_bit_identical_to_sequential(self):
        spec = chaos_from_dict(_chaos_table(faults=["loss", "duplicate", "reorder"]))
        sequential = run_chaos(spec)
        parallel = run_chaos(spec, workers=2)
        assert [r.to_dict() for r in sequential.records] == [
            r.to_dict() for r in parallel.records
        ]

    def test_journal_resume_executes_zero_new_cells(self, tmp_path):
        spec = chaos_from_dict(_chaos_table())
        path = str(tmp_path / "chaos.jsonl")
        first = run_chaos(spec, workers=2, store=path)
        assert first.executed_cells == 4 and first.resumed_cells == 0
        resumed = run_chaos(spec, workers=2, store=path, resume=True)
        assert resumed.executed_cells == 0 and resumed.resumed_cells == 4
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in first.records
        ]

    def test_resume_rejects_a_different_audit(self, tmp_path):
        path = str(tmp_path / "chaos.jsonl")
        run_chaos(chaos_from_dict(_chaos_table()), store=path)
        with pytest.raises(SpecError, match=r"manifest does not match"):
            run_chaos(
                chaos_from_dict(_chaos_table(faults=["duplicate"])),
                store=path,
                resume=True,
            )


# ----------------------------------------------------------------- quarantine --
_POISON = {"armed": True}


class _PoisonFault(FaultModel):
    """Raises while armed — from inside the simulated network's send path."""

    kind = "poison"

    def on_send(self, message, rng):
        if _POISON["armed"]:
            raise RuntimeError("injected poison fault")
        return None


@pytest.fixture
def poison_fault():
    _POISON["armed"] = True
    FAULTS.register("poison", lambda **kw: _PoisonFault(**kw))
    yield
    FAULTS.unregister("poison")


class TestQuarantine:
    def test_failure_mode_is_validated(self):
        with pytest.raises(SpecError, match=r"failure_mode"):
            run_chaos(chaos_from_dict(_chaos_table()), failure_mode="retry-forever")

    def test_poison_cells_quarantine_and_resume_reexecutes_them(
        self, poison_fault, tmp_path
    ):
        # The recovery lock, on the chaos path: a fault that crashes its
        # worker quarantines with a journaled error record, the rest of the
        # grid completes, and --resume re-executes exactly the poison cells.
        spec = chaos_from_dict(_chaos_table(faults=["loss", "poison", "duplicate"]))
        path = str(tmp_path / "chaos.jsonl")
        first = run_chaos(spec, workers=2, store=path, failure_mode="quarantine")
        assert len(first.records) == 4  # loss and duplicate cells survived
        assert sorted((q["point"], q["instance"]) for q in first.quarantined) == [
            (1, 0),
            (1, 1),
        ]
        assert all("poison" in q["error"] for q in first.quarantined)
        assert not first.is_clean()

        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        quarantine_lines = [l for l in lines if l.get("kind") == "quarantine"]
        assert sorted((l["point"], l["instance"]) for l in quarantine_lines) == [
            (1, 0),
            (1, 1),
        ]

        _POISON["armed"] = False  # heal the fault, then resume
        resumed = run_chaos(
            spec, workers=2, store=path, resume=True, failure_mode="quarantine"
        )
        assert resumed.executed_cells == 2  # only the quarantined cells re-ran
        assert resumed.resumed_cells == 4
        assert len(resumed.records) == 6
        assert resumed.quarantined == [] and resumed.is_clean()

        again = run_chaos(spec, workers=2, store=path, resume=True)
        assert again.executed_cells == 0 and again.resumed_cells == 6


# ----------------------------------------------------------- determinism lock --
#: Runs one chaos audit and prints its canonical record JSON — fault journal
#: digests and retransmission counters included.
_LOCK_SCRIPT = """\
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.scenarios import chaos_from_dict, run_chaos

spec = chaos_from_dict({
    "name": "lock",
    "base": {
        "mechanism": "double", "users": 6, "providers": 3,
        "config": {"k": 1}, "latency": "constant", "measure_compute": False,
    },
    "faults": [
        "loss", "duplicate", "reorder",
        {"kind": "crash", "node": "p01", "at": 0.001, "duration": 0.002},
        "torn_append",
    ],
    "recovery": {"max_retries": 4},
    "seeds": [0, 1],
})
records = [r.to_dict() for r in run_chaos(spec).records]
print(json.dumps(records, sort_keys=True))
"""


class TestDeterminismLock:
    def _run_in_subprocess(self, hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        result = subprocess.run(
            [sys.executable, "-c", _LOCK_SCRIPT, SRC],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout.strip()

    def test_chaos_records_identical_across_hash_seeds(self):
        first = self._run_in_subprocess("0")
        second = self._run_in_subprocess("4242")
        assert first == second
        records = json.loads(first)
        assert all(record["replay_ok"] for record in records)
        assert any(record["retransmissions"] > 0 for record in records)


# ------------------------------------------------------------------------ CLI --
def _spec_file(tmp_path, **overrides):
    path = tmp_path / "chaos.json"
    dump_chaos(chaos_from_dict(_chaos_table(**overrides)), path)
    return str(path)


class TestCli:
    def test_chaos_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_chaos_grid_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--spec", "a.json", "--workers", "2", "--output", "o.jsonl"]
        )
        assert args.command == "chaos"
        assert args.workers == 2 and args.output == "o.jsonl"
        assert args.resume is False and args.quarantine is False

    def test_spec_round_trip_text_output(self, tmp_path, capsys):
        assert main(["chaos", "--spec", _spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: clean" in out
        assert "heavy" in out  # the labelled fault row

    def test_json_output_and_overrides(self, tmp_path, capsys):
        code = main(
            [
                "chaos",
                "--spec",
                _spec_file(tmp_path),
                "--set",
                "seeds=[3]",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert [r["seed"] for r in payload["records"]] == [3, 3]

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_chaos_table(faults=["no-such-fault"])))
        assert main(["chaos", "--spec", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_and_resume_report(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        out = str(tmp_path / "journal.jsonl")
        assert main(["chaos", "--spec", spec, "--output", out]) == 0
        assert "executed 4 new cells" in capsys.readouterr().err
        assert main(["chaos", "--spec", spec, "--output", out, "--resume"]) == 0
        err = capsys.readouterr().err
        assert "reused 4 journaled cells, executed 0 new cells" in err

    def test_quarantine_flag_reports_and_exits_1(self, poison_fault, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        dump_chaos(
            chaos_from_dict(_chaos_table(faults=["loss", "poison"], seeds=[0])), path
        )
        out = str(tmp_path / "journal.jsonl")
        code = main(
            [
                "chaos",
                "--spec",
                str(path),
                "--workers",
                "2",
                "--output",
                out,
                "--quarantine",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "quarantined 1" in captured.err
        assert "NOT CLEAN" in captured.out
