"""Crash-tolerant executor: bounded retries, poison quarantine, resume.

The contract under test (ISSUE 9, recovery layer):

* a worker exception carries the chunk's partial results and original
  traceback across the process boundary (``ChunkExecutionError``), so
  fail-fast callers lose nothing and crash-tolerant callers can retry;
* ``failure_mode="quarantine"`` survives per-chunk exceptions *and* worker
  death (``BrokenProcessPool``) with a literal retry bound
  (``MAX_CHUNK_RETRIES``); items that keep failing are quarantined —
  journaled, skipped, reported — while the rest of the grid completes;
* a later ``--resume`` re-executes exactly the quarantined rounds.
"""

import json
import os
import pickle

import pytest

from repro.scenarios import WORKLOADS, SpecError, SweepSpec, run_sweep, spec_from_dict
from repro.scenarios.dispatch import (
    MAX_CHUNK_RETRIES,
    ChunkExecutionError,
    ChunkQuarantine,
    ProcessExecutorBackend,
)
from repro.community.workload import DoubleAuctionWorkload

_PARENT_PID = os.getpid()


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    # Keep the pool paths parallel (and warning-free) on single-core runners.
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


# --------------------------------------------------------- worker functions --
# Module-level so the fork-based pool pickles them by reference.
def _flaky_worker(items):
    """Raise at the 'poison' item, every time; return item*2 otherwise."""
    results = []
    for position, item in enumerate(items):
        if item == "poison":
            raise ChunkExecutionError(
                results, "Traceback (most recent call last):\nValueError: poison",
                items[position:],
            )
        results.append(item * 2)
    return results


def _lethal_worker(items):
    """Kill the worker process at the 'die' item; return item*2 otherwise."""
    results = []
    for position, item in enumerate(items):
        if item == "die" and os.getpid() != _PARENT_PID:
            os._exit(17)
        results.append(item * 2)
    return results


def _second_time_lucky_worker(items):
    """Fail while the marker file is absent, creating it; succeed after."""
    marker = items[0]
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ChunkExecutionError(
            [], "Traceback (most recent call last):\nRuntimeError: transient", items
        )
    return ["recovered"]


def _typed_error_worker(items):
    raise ChunkExecutionError(
        [], "Traceback (most recent call last):\nSpecError: config.k: bad",
        items, SpecError("config.k", "bad"),
    )


# ---------------------------------------------------------------- unit layer --
class TestChunkExecutionError:
    def test_pickles_losslessly(self):
        error = ChunkExecutionError(
            [(0, 0, "r")], "tb text\nValueError: boom", [(1, {}, [0])],
            ValueError("boom"),
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.partial_results == [(0, 0, "r")]
        assert clone.traceback == "tb text\nValueError: boom"
        assert clone.remaining_items == [(1, {}, [0])]
        assert isinstance(clone.cause, ValueError)

    def test_error_is_the_final_traceback_line(self):
        error = ChunkExecutionError([], "Traceback:\n  ...\nValueError: boom\n", [])
        assert error.error == "ValueError: boom"
        assert ChunkExecutionError([], "", []).error == "worker chunk failed"


class TestProcessBackendQuarantine:
    def _run(self, chunks, worker, workers=2, mode="quarantine"):
        backend = ProcessExecutorBackend()
        backend.failure_mode = mode
        results, quarantined = [], []
        for item in backend.execute(chunks, worker, workers):
            (quarantined if isinstance(item, ChunkQuarantine) else results).append(item)
        return results, quarantined

    def test_poison_item_is_quarantined_and_chunkmates_survive(self):
        results, quarantined = self._run(
            [["a", "poison", "b"], ["c"]], _flaky_worker
        )
        assert sorted(results) == ["aa", "bb", "cc"]
        assert len(quarantined) == 1
        assert quarantined[0].items == ("poison",)
        assert quarantined[0].error == "ValueError: poison"
        assert "ValueError" in quarantined[0].traceback

    def test_worker_death_is_quarantined_and_chunkmates_survive(self):
        results, quarantined = self._run(
            [["a"], ["die"], ["b"], ["c"]], _lethal_worker
        )
        assert sorted(results) == ["aa", "bb", "cc"]
        assert len(quarantined) == 1
        assert quarantined[0].items == ("die",)
        assert "BrokenProcessPool" in quarantined[0].error

    def test_worker_death_in_multi_item_chunk_is_bisected_out(self):
        results, quarantined = self._run([["a", "b", "die", "c"]], _lethal_worker)
        assert sorted(results) == ["aa", "bb", "cc"]
        assert [q.items for q in quarantined] == [("die",)]

    def test_transient_failure_is_retried_within_the_bound(self, tmp_path):
        marker = str(tmp_path / "marker")
        results, quarantined = self._run([[marker]], _second_time_lucky_worker)
        assert results == ["recovered"]
        assert quarantined == []
        assert MAX_CHUNK_RETRIES >= 2  # the retry that saved the round exists

    def test_raise_mode_reraises_the_typed_cause(self):
        backend = ProcessExecutorBackend()
        with pytest.raises(SpecError, match=r"config\.k"):
            list(backend.execute([["x"]], _typed_error_worker, 2))

    def test_raise_mode_death_propagates(self):
        from concurrent.futures.process import BrokenProcessPool

        backend = ProcessExecutorBackend()
        with pytest.raises(BrokenProcessPool):
            list(backend.execute([["die"]], _lethal_worker, 2))


# --------------------------------------------------------------- sweep layer --
_POISON = {"armed": True}


class _FragileWorkload(DoubleAuctionWorkload):
    def generate(self, num_users, num_providers, provider_ids=None, instance=0):
        if _POISON["armed"] and num_users == 6:
            raise ValueError("injected poison point")
        return super().generate(num_users, num_providers, provider_ids, instance)


class _LethalWorkload(DoubleAuctionWorkload):
    def generate(self, num_users, num_providers, provider_ids=None, instance=0):
        if num_users == 6 and os.getpid() != _PARENT_PID:
            os._exit(17)
        return super().generate(num_users, num_providers, provider_ids, instance)


@pytest.fixture
def fragile_workload():
    _POISON["armed"] = True
    WORKLOADS.register("fragile", lambda **kw: _FragileWorkload(**kw))
    yield
    WORKLOADS.unregister("fragile")


@pytest.fixture
def lethal_workload():
    WORKLOADS.register("lethal", lambda **kw: _LethalWorkload(**kw))
    yield
    WORKLOADS.unregister("lethal")


def _sweep(workload):
    return SweepSpec(
        base=spec_from_dict(
            {
                "mechanism": "double",
                "latency": "constant",
                "measure_compute": False,
                "users": 4,
                "providers": 3,
                "workload": workload,
            }
        ),
        axes=(("users", (4, 5, 6, 7)),),
    )


class TestSweepQuarantine:
    def test_failure_mode_is_validated(self):
        with pytest.raises(SpecError, match=r"failure_mode"):
            run_sweep(_sweep("double"), failure_mode="retry-forever")

    def test_quarantine_completes_the_rest_of_the_grid(self, fragile_workload):
        result = run_sweep(_sweep("fragile"), workers=2, failure_mode="quarantine")
        assert len(result.records) == 3
        assert result.quarantined == [
            {"point": 2, "instance": 0, "error": "ValueError: injected poison point"}
        ]
        assert result.to_dict()["quarantined"] == result.quarantined
        assert sorted(r.users for r in result.records) == [4, 5, 7]

    def test_clean_sweep_omits_quarantined_from_payload(self):
        result = run_sweep(_sweep("double"), workers=2, failure_mode="quarantine")
        assert result.quarantined == []
        assert "quarantined" not in result.to_dict()

    def test_worker_death_quarantines_only_the_poison_point(self, lethal_workload):
        result = run_sweep(_sweep("lethal"), workers=2, failure_mode="quarantine")
        assert len(result.records) == 3
        assert [(q["point"], q["instance"]) for q in result.quarantined] == [(2, 0)]
        assert "BrokenProcessPool" in result.quarantined[0]["error"]

    def test_raise_mode_propagates_with_worker_traceback(self, fragile_workload):
        with pytest.raises(ValueError, match=r"injected poison point") as excinfo:
            run_sweep(_sweep("fragile"), workers=2)
        # The chunk context rides along as the cause chain.
        assert isinstance(excinfo.value.__cause__, ChunkExecutionError)
        assert "injected poison point" in excinfo.value.__cause__.traceback

    def test_recovery_lock_resume_reexecutes_only_the_quarantined_point(
        self, fragile_workload, tmp_path
    ):
        # The ISSUE's recovery lock: crash -> quarantine with a journaled
        # error record -> --resume re-executes exactly the poison point.
        path = str(tmp_path / "journal.jsonl")
        sweep = _sweep("fragile")
        first = run_sweep(sweep, workers=2, store=path, failure_mode="quarantine")
        assert len(first.records) == 3 and len(first.quarantined) == 1

        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        quarantine_lines = [l for l in lines if l.get("kind") == "quarantine"]
        assert [(l["point"], l["instance"]) for l in quarantine_lines] == [(2, 0)]
        assert quarantine_lines[0]["error"] == "ValueError: injected poison point"
        assert "injected poison point" in quarantine_lines[0]["traceback"]

        _POISON["armed"] = False  # heal the poison, then resume
        resumed = run_sweep(
            sweep, workers=2, store=path, resume=True, failure_mode="quarantine"
        )
        assert resumed.executed_rounds == 1  # only the quarantined round re-ran
        assert resumed.resumed_rounds == 3
        assert len(resumed.records) == 4
        assert resumed.quarantined == []

        again = run_sweep(sweep, workers=2, store=path, resume=True)
        assert again.executed_rounds == 0 and again.resumed_rounds == 4

    def test_serial_path_still_fails_fast(self, fragile_workload):
        with pytest.raises(ValueError, match=r"injected poison point"):
            run_sweep(_sweep("fragile"), failure_mode="quarantine")
