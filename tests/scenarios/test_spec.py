"""Tests for the scenario spec tree: parsing, validation, overrides."""

import pytest

from repro.scenarios.spec import (
    BidderSpec,
    ComponentSpec,
    ConfigSpec,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    apply_overrides,
    parse_assignments,
    spec_from_dict,
    spec_to_dict,
    spec_with_overrides,
    sweep_from_dict,
    sweep_to_dict,
)


class TestComponentSpec:
    def test_bare_string_is_kind(self):
        component = ComponentSpec.from_value("double", "mechanism")
        assert component == ComponentSpec("double")
        assert component.to_value() == "double"

    def test_table_with_params(self):
        component = ComponentSpec.from_value(
            {"kind": "standard", "epsilon": 0.5}, "mechanism"
        )
        assert component.kind == "standard"
        assert component.params == {"epsilon": 0.5}
        assert component.to_value() == {"kind": "standard", "epsilon": 0.5}

    def test_missing_kind_names_path(self):
        with pytest.raises(SpecError, match=r"mechanism: expected a 'kind'"):
            ComponentSpec.from_value({"epsilon": 0.5}, "mechanism")

    def test_wrong_type_names_path(self):
        with pytest.raises(SpecError, match=r"latency: expected a string or a table"):
            ComponentSpec.from_value(3, "latency")


class TestScenarioSpecValidation:
    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.mechanism.kind == "double"
        assert spec.runner == "distributed"

    def test_constructor_coerces_convenience_forms(self):
        spec = ScenarioSpec(
            mechanism="standard",
            workload={"kind": "vr_sessions", "session_fraction": 0.2},
            config={"k": 2},
            runner="auction_run",
            bidders=({"kind": "silent", "indices": [0]},),
        )
        assert spec.mechanism == ComponentSpec("standard")
        assert spec.workload.params == {"session_fraction": 0.2}
        assert spec.config == ConfigSpec(k=2)
        assert spec.bidders[0] == BidderSpec("silent", indices=(0,))

    def test_bidder_selection_scalars_get_precise_errors(self):
        with pytest.raises(SpecError, match=r"bidders\[0\]\.users: expected a list"):
            spec_from_dict(
                {"runner": "auction_run", "bidders": [{"kind": "silent", "users": 3}]}
            )
        with pytest.raises(SpecError, match=r"bidders\[0\]\.indices: expected a list"):
            spec_from_dict(
                {"runner": "auction_run", "bidders": [{"kind": "silent", "indices": "u1"}]}
            )

    def test_bidder_params_may_not_shadow_reserved_keys(self):
        with pytest.raises(SpecError, match=r"reserved keys"):
            BidderSpec("scaling", indices=(0,), params={"users": 3})

    def test_bidder_error_paths_are_not_double_prefixed(self):
        with pytest.raises(SpecError) as info:
            spec_from_dict({"runner": "auction_run", "bidders": [{"kind": "silent"}]})
        assert str(info.value).count("bidders") == 1
        assert str(info.value).startswith("bidders[0]: ")

    def test_unknown_key_is_named(self):
        with pytest.raises(SpecError, match=r"mechansim: unknown scenario key"):
            spec_from_dict({"mechansim": "double"})

    def test_unknown_runner(self):
        with pytest.raises(SpecError, match=r"runner: unknown runner 'quantum'"):
            spec_from_dict({"runner": "quantum"})

    def test_unknown_engine(self):
        with pytest.raises(SpecError, match=r"engine: unknown engine 'warp'"):
            spec_from_dict({"engine": "warp"})

    def test_executors_bounds(self):
        with pytest.raises(SpecError, match=r"executors"):
            spec_from_dict({"providers": 4, "executors": 5})

    def test_bidders_require_auction_run(self):
        with pytest.raises(SpecError, match=r"bidders: .*auction_run"):
            spec_from_dict({"bidders": [{"kind": "silent", "indices": [0]}]})

    def test_community_latency_requires_topology(self):
        with pytest.raises(SpecError, match=r"latency: .*topology"):
            spec_from_dict({"latency": "community"})

    def test_bad_config_value_names_path(self):
        with pytest.raises(SpecError, match=r"config"):
            spec_from_dict({"config": {"k": -1}})

    def test_unknown_config_key_is_named(self):
        with pytest.raises(SpecError, match=r"config\.kk: unknown configuration key"):
            spec_from_dict({"config": {"kk": 2}})

    def test_type_errors_are_precise(self):
        with pytest.raises(SpecError, match=r"users: expected an integer, got str"):
            spec_from_dict({"users": "many"})
        with pytest.raises(SpecError, match=r"users: expected an integer, got a boolean"):
            spec_from_dict({"users": True})

    def test_bidder_entry_needs_selection(self):
        with pytest.raises(SpecError, match=r"bidders\[0\]"):
            spec_from_dict({"runner": "auction_run", "bidders": [{"kind": "silent"}]})

    def test_default_workload_follows_mechanism(self):
        assert ScenarioSpec().effective_workload().kind == "double"
        standard = spec_from_dict({"mechanism": "standard"})
        assert standard.effective_workload().kind == "standard"

    def test_default_workload_unknown_mechanism_errors(self):
        spec = spec_from_dict({"mechanism": "mystery"})
        with pytest.raises(SpecError, match=r"workload: no default workload"):
            spec.effective_workload()

    def test_default_series_labels(self):
        assert spec_from_dict({"runner": "centralized"}).default_series() == "centralised"
        assert spec_from_dict({"config": {"k": 2}}).default_series() == "distributed k=2"
        parallel = spec_from_dict(
            {"config": {"k": 1, "parallel": True, "num_groups": 4}}
        )
        assert parallel.default_series() == "p=4 (distributed, k=1)"
        assert spec_from_dict({"series": "mine"}).default_series() == "mine"


class TestRoundTrip:
    def _rich_spec(self):
        return spec_from_dict(
            {
                "name": "rich",
                "mechanism": {"kind": "standard", "epsilon": 0.5},
                "engine": "vectorized",
                "workload": {"kind": "vr_sessions", "session_fraction": 0.4},
                "users": 24,
                "providers": 6,
                "executors": 5,
                "runner": "distributed",
                "config": {"k": 2, "parallel": True, "num_groups": 2},
                "latency": {"kind": "constant", "seconds": 0.002},
                "rounds": 3,
                "seed": 11,
                "deadline": 2.0,
                "measure_compute": False,
                "series": "custom",
            }
        )

    def test_dict_round_trip_is_lossless(self):
        spec = self._rich_spec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_dict_round_trip_default_spec(self):
        spec = ScenarioSpec()
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_no_none_values_in_serialized_form(self):
        def no_none(value):
            if isinstance(value, dict):
                return all(no_none(v) for v in value.values())
            if isinstance(value, list):
                return all(no_none(v) for v in value)
            return value is not None

        assert no_none(spec_to_dict(self._rich_spec()))
        assert no_none(spec_to_dict(ScenarioSpec()))

    def test_bidders_round_trip(self):
        spec = spec_from_dict(
            {
                "runner": "auction_run",
                "bidders": [
                    {"kind": "scaling", "indices": [0, 2], "factor": 0.5},
                    {"kind": "silent", "users": ["u0001"]},
                ],
            }
        )
        again = spec_from_dict(spec_to_dict(spec))
        assert again == spec
        assert again.bidders[0].params == {"factor": 0.5}


class TestOverrides:
    def test_parse_assignments_json_and_strings(self):
        overrides = parse_assignments(
            ["users=100", "config.parallel=true", "mechanism.epsilon=0.5", "name=vr run"]
        )
        assert overrides == {
            "users": 100,
            "config.parallel": True,
            "mechanism.epsilon": 0.5,
            "name": "vr run",
        }

    def test_parse_assignments_rejects_missing_equals(self):
        with pytest.raises(SpecError, match=r"--set"):
            parse_assignments(["users"])

    def test_apply_overrides_creates_tables(self):
        data = apply_overrides({}, {"config.k": 2, "users": 9})
        assert data == {"config": {"k": 2}, "users": 9}

    def test_apply_overrides_normalises_component_shorthand(self):
        data = apply_overrides({"mechanism": "standard"}, {"mechanism.epsilon": 0.5})
        assert data["mechanism"] == {"kind": "standard", "epsilon": 0.5}

    def test_apply_overrides_refuses_scalar_traversal(self):
        with pytest.raises(SpecError, match=r"users"):
            apply_overrides({"users": 5}, {"users.deep": 1})

    def test_spec_with_overrides_revalidates(self):
        spec = ScenarioSpec()
        with pytest.raises(SpecError, match=r"runner"):
            spec_with_overrides(spec, {"runner": "bogus"})
        assert spec_with_overrides(spec, {"users": 7}).users == 7


class TestSweepSpec:
    def test_points_and_axes_are_exclusive(self):
        with pytest.raises(SpecError, match=r"points"):
            SweepSpec(points=({"users": 1},), axes=(("users", (1, 2)),))

    def test_axes_expand_as_product_first_axis_slowest(self):
        sweep = SweepSpec(axes=(("users", (10, 20)), ("config.k", (1, 2))))
        assert sweep.expand() == [
            {"users": 10, "config.k": 1},
            {"users": 10, "config.k": 2},
            {"users": 20, "config.k": 1},
            {"users": 20, "config.k": 2},
        ]

    def test_empty_sweep_is_single_base_point(self):
        assert SweepSpec().expand() == [{}]

    def test_scenarios_apply_overrides_in_order(self):
        sweep = SweepSpec(points=({"users": 5, "providers": 3}, {"users": 6, "providers": 3}))
        users = [spec.users for spec in sweep.scenarios()]
        assert users == [5, 6]

    def test_sweep_dict_round_trip(self):
        sweep = SweepSpec(
            base=ScenarioSpec(users=9, providers=3),
            name="grid",
            axes=(("users", (3, 6)), ("seed", (0, 1))),
        )
        assert sweep_from_dict(sweep_to_dict(sweep)) == sweep
        pointy = SweepSpec(base=ScenarioSpec(), points=({"users": 4, "series": "a"},))
        assert sweep_from_dict(sweep_to_dict(pointy)) == pointy

    def test_sweep_unknown_key_is_named(self):
        with pytest.raises(SpecError, match=r"grid: unknown sweep key"):
            sweep_from_dict({"grid": {}})

    def test_sweep_empty_axis_rejected(self):
        with pytest.raises(SpecError, match=r"axes\.users"):
            sweep_from_dict({"axes": {"users": []}})
