"""Seed-stability regression: scenario-layer records are pure functions of seeds.

Extends the PR-4 pattern (``tests/net/test_scheduler.py``'s PYTHONHASHSEED
regression) to the scenario layer: with ``measure_compute=false`` the
deterministic fields of :class:`RunRecord` and :class:`ResilienceRecord` —
which with virtual clocks is *every* field — must be byte-identical

* across two in-process runs (no hidden state leaks between runs), and
* across interpreter invocations with different ``PYTHONHASHSEED`` values
  (no set/dict-iteration order anywhere in the workload, protocol, audit or
  record serialization paths).

Byte-identical means the canonical JSON of the records, which is exactly what
the results journal persists and the resume path compares against.
"""

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Runs one tiny scenario and one tiny audit, prints their canonical JSON.
_SCRIPT = """\
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.scenarios import ScenarioSpec, Simulation
from repro.scenarios.resilience import ResilienceSpec, run_resilience

spec = ScenarioSpec(
    name="stability", mechanism="double", users=8, providers=4,
    config={"k": 1}, latency="constant", seed=3, measure_compute=False,
)
with Simulation(spec) as sim:
    run_payload = sim.run().to_dict()

audit = ResilienceSpec(
    name="stability-audit", base=spec, k=1,
    adversaries=("equivocate", {"kind": "tamper_output", "bonus": 5.0}),
    schedules=("fair", "round_robin"), seeds=(3, 4),
)
audit_payload = [r.to_dict() for r in run_resilience(audit).records]
print(json.dumps({"run": run_payload, "audit": audit_payload}, sort_keys=True))
"""


#: Runs one observed scenario (trace journal + metrics hub) and prints the
#: sha256 of every byte-identity surface: the on-disk journal, the canonical
#: metrics snapshot, and the Chrome-trace export.
_OBS_SCRIPT = """\
import hashlib, json, sys
sys.path.insert(0, sys.argv[1])
from repro.obs import observe, render_chrome
from repro.scenarios import ScenarioSpec, Simulation

spec = ScenarioSpec(
    name="obs-stability", mechanism="double", users=8, providers=4,
    config={"k": 1}, latency="constant", seed=3, measure_compute=False,
)
trace_path = sys.argv[2]
with observe(trace=trace_path, name="obs-stability") as observation:
    with Simulation(spec) as sim:
        sim.run()
with open(trace_path, "rb") as handle:
    journal = hashlib.sha256(handle.read()).hexdigest()
print(json.dumps({
    "journal": journal,
    "metrics": hashlib.sha256(
        observation.metrics.snapshot_json().encode("utf-8")).hexdigest(),
    "chrome": hashlib.sha256(
        render_chrome(observation.tracer.spans).encode("utf-8")).hexdigest(),
    "spans": len(observation.tracer.spans),
}, sort_keys=True))
"""


def _run_in_subprocess(hash_seed: str, script: str = _SCRIPT, *argv: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", script, SRC, *argv],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestSeedStability:
    def test_records_identical_across_in_process_runs(self):
        from repro.scenarios import ScenarioSpec, Simulation
        from repro.scenarios.resilience import ResilienceSpec, run_resilience

        spec = ScenarioSpec(
            name="stability",
            mechanism="double",
            users=8,
            providers=4,
            config={"k": 1},
            latency="constant",
            seed=3,
            measure_compute=False,
        )

        def run_once():
            with Simulation(spec) as sim:
                record = sim.run()
            audit = ResilienceSpec(
                name="stability-audit",
                base=spec,
                k=1,
                adversaries=("equivocate",),
                schedules=("fair",),
            )
            result = run_resilience(audit)
            return json.dumps(
                {
                    "run": record.to_dict(),
                    "audit": [r.to_dict() for r in result.records],
                },
                sort_keys=True,
            )

        first = run_once()
        second = run_once()
        assert first == second

    def test_records_identical_across_hash_seeds(self):
        first = _run_in_subprocess("1")
        second = _run_in_subprocess("4242")
        assert first  # the scenario actually produced records
        payload = json.loads(first)
        assert payload["audit"], "the audit ran no cells"
        assert not payload["run"]["aborted"]
        assert first == second


class TestTraceStability:
    """The observability plane is on the same bit-identity surface.

    With ``measure_compute=False`` a trace journal, a metrics snapshot and
    the Chrome export are pure functions of the spec: byte-identical across
    in-process reruns and across interpreters with different
    ``PYTHONHASHSEED`` values.  (Specs that opt into wall-clock timing via
    ``measure_compute=True`` faithfully record that nondeterminism — the
    elapsed-derived histograms then vary, by design.)
    """

    def _observed_run(self, trace_path):
        from repro.auctions.engine.pivot import clear_solve_cache
        from repro.obs import observe, render_chrome
        from repro.scenarios import ScenarioSpec, Simulation

        clear_solve_cache()  # the process-wide memo must not leak across runs
        spec = ScenarioSpec(
            name="obs-stability",
            mechanism="double",
            users=8,
            providers=4,
            config={"k": 1},
            latency="constant",
            seed=3,
            measure_compute=False,
        )
        with observe(trace=str(trace_path), name="obs-stability") as observation:
            with Simulation(spec) as sim:
                sim.run()
        with open(trace_path, "rb") as handle:
            journal = handle.read()
        return (
            journal,
            observation.metrics.snapshot_json(),
            render_chrome(observation.tracer.spans),
        )

    def test_trace_identical_across_in_process_runs(self, tmp_path):
        first = self._observed_run(tmp_path / "a.rcol")
        second = self._observed_run(tmp_path / "b.rcol")
        assert len(first[0]) > 0  # the journal actually holds spans
        assert '"instruments"' in first[1]
        assert first == second

    def test_trace_identical_across_hash_seeds(self, tmp_path):
        first = _run_in_subprocess("1", _OBS_SCRIPT, str(tmp_path / "h1.rcol"))
        second = _run_in_subprocess("4242", _OBS_SCRIPT, str(tmp_path / "h2.rcol"))
        payload = json.loads(first)
        assert payload["spans"] > 0
        assert first == second
