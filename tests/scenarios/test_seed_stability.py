"""Seed-stability regression: scenario-layer records are pure functions of seeds.

Extends the PR-4 pattern (``tests/net/test_scheduler.py``'s PYTHONHASHSEED
regression) to the scenario layer: with ``measure_compute=false`` the
deterministic fields of :class:`RunRecord` and :class:`ResilienceRecord` —
which with virtual clocks is *every* field — must be byte-identical

* across two in-process runs (no hidden state leaks between runs), and
* across interpreter invocations with different ``PYTHONHASHSEED`` values
  (no set/dict-iteration order anywhere in the workload, protocol, audit or
  record serialization paths).

Byte-identical means the canonical JSON of the records, which is exactly what
the results journal persists and the resume path compares against.
"""

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Runs one tiny scenario and one tiny audit, prints their canonical JSON.
_SCRIPT = """\
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.scenarios import ScenarioSpec, Simulation
from repro.scenarios.resilience import ResilienceSpec, run_resilience

spec = ScenarioSpec(
    name="stability", mechanism="double", users=8, providers=4,
    config={"k": 1}, latency="constant", seed=3, measure_compute=False,
)
with Simulation(spec) as sim:
    run_payload = sim.run().to_dict()

audit = ResilienceSpec(
    name="stability-audit", base=spec, k=1,
    adversaries=("equivocate", {"kind": "tamper_output", "bonus": 5.0}),
    schedules=("fair", "round_robin"), seeds=(3, 4),
)
audit_payload = [r.to_dict() for r in run_resilience(audit).records]
print(json.dumps({"run": run_payload, "audit": audit_payload}, sort_keys=True))
"""


def _run_in_subprocess(hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT, SRC],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestSeedStability:
    def test_records_identical_across_in_process_runs(self):
        from repro.scenarios import ScenarioSpec, Simulation
        from repro.scenarios.resilience import ResilienceSpec, run_resilience

        spec = ScenarioSpec(
            name="stability",
            mechanism="double",
            users=8,
            providers=4,
            config={"k": 1},
            latency="constant",
            seed=3,
            measure_compute=False,
        )

        def run_once():
            with Simulation(spec) as sim:
                record = sim.run()
            audit = ResilienceSpec(
                name="stability-audit",
                base=spec,
                k=1,
                adversaries=("equivocate",),
                schedules=("fair",),
            )
            result = run_resilience(audit)
            return json.dumps(
                {
                    "run": record.to_dict(),
                    "audit": [r.to_dict() for r in result.records],
                },
                sort_keys=True,
            )

        first = run_once()
        second = run_once()
        assert first == second

    def test_records_identical_across_hash_seeds(self):
        first = _run_in_subprocess("1")
        second = _run_in_subprocess("4242")
        assert first  # the scenario actually produced records
        payload = json.loads(first)
        assert payload["audit"], "the audit ran no cells"
        assert not payload["run"]["aborted"]
        assert first == second
