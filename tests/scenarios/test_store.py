"""Results store: journal format, manifest guarding, and resume semantics."""

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ResultsStore,
    RunRecord,
    SpecError,
    SweepSpec,
    run_sweep,
    spec_from_dict,
    sweep_fingerprint,
)


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    # Pin a big host so the worker policy never degrades the --workers paths
    # under test to the sequential path on single-core CI runners.
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _spec(data):
    base = {"mechanism": "double", "latency": "constant", "measure_compute": False}
    base.update(data)
    return spec_from_dict(base)


def _sweep(rounds=2):
    return SweepSpec(
        base=_spec({"users": 5, "providers": 3, "rounds": rounds}),
        name="store-test",
        axes=(("users", (4, 5)), ("seed", (0, 1))),
    )


class TestJournalFormat:
    def test_journal_holds_manifest_plus_one_line_per_round(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        result = run_sweep(_sweep(), store=path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "manifest"
        assert lines[0]["sweep"] == "store-test"
        assert lines[0]["fingerprint"] == sweep_fingerprint(_sweep())
        assert lines[0]["total_rounds"] == len(result.records) == 8
        records = [line for line in lines[1:] if line["kind"] == "record"]
        assert len(records) == 8
        assert {(r["point"], r["instance"]) for r in records} == {
            (p, i) for p in range(4) for i in range(2)
        }

    def test_run_record_round_trips_losslessly(self):
        sweep = _sweep()
        record = run_sweep(sweep).records[0]
        assert RunRecord.from_dict(record.to_dict()) == record
        # Through actual JSON text, as the journal stores it.
        assert RunRecord.from_dict(json.loads(json.dumps(record.to_dict()))) == record

    def test_store_as_object_and_reader(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        run_sweep(sweep, store=ResultsStore(path))
        manifest, completed = ResultsStore(path).read(
            expected_fingerprint=sweep_fingerprint(sweep)
        )
        assert manifest["sweep"] == "store-test"
        assert len(completed) == 8


class TestResume:
    def test_resume_skips_everything_already_journaled(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        first = run_sweep(sweep, workers=2, store=path)
        resumed = run_sweep(sweep, store=path, resume=True)
        assert resumed.executed_rounds == 0
        assert resumed.resumed_rounds == 8
        # Journaled records rehydrate bit-identically — elapsed included.
        assert resumed.records == first.records

    def test_resume_half_completed_journal_runs_only_missing_rounds(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        full = run_sweep(sweep, store=path)
        # Simulate an interrupted run: keep the manifest and the first three
        # record lines only.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:4]) + "\n")

        import repro.scenarios.sweep as sweep_module

        executed = []
        original = sweep_module.run_scenario

        def counting(spec, instance=0, **kwargs):
            executed.append((spec.users, spec.seed, instance))
            return original(spec, instance, **kwargs)

        monkeypatch.setattr(sweep_module, "run_scenario", counting)
        resumed = run_sweep(sweep, store=path, resume=True)
        assert len(executed) == 5  # 8 rounds total, 3 were journaled
        assert resumed.executed_rounds == 5
        assert resumed.resumed_rounds == 3
        assert resumed.records == full.records  # grid order restored exactly

    def test_resume_with_parallel_workers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        full = run_sweep(sweep, store=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(sweep, workers=3, store=path, resume=True)
        assert resumed.executed_rounds == 6
        assert resumed.records == full.records

    def test_resume_on_missing_file_runs_fresh(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        result = run_sweep(_sweep(), store=path, resume=True)
        assert result.executed_rounds == 8
        assert path.exists()

    def test_existing_journal_without_resume_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        run_sweep(_sweep(), store=path)
        with pytest.raises(SpecError, match=r"already exists"):
            run_sweep(_sweep(), store=path)

    def test_journal_of_a_different_sweep_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        run_sweep(_sweep(), store=path)
        changed = SweepSpec(
            base=_spec({"users": 9, "providers": 3}), name="store-test"
        )
        with pytest.raises(SpecError, match=r"does not match this sweep"):
            run_sweep(changed, store=path, resume=True)

    def test_failed_sweep_journals_the_completed_rounds(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sweep = SweepSpec(
            base=_spec({"users": 4, "providers": 3, "rounds": 2}),
            name="fails",
            points=({}, {"runner": "auction_run", "executors": 2}),
        )
        with pytest.raises(SpecError, match=r"executors"):
            run_sweep(sweep, store=path)
        _manifest, completed = ResultsStore(path).read()
        assert set(completed) == {(0, 0), (0, 1)}  # point 0 landed before the failure


class TestFormatMismatch:
    """An explicit --store-format contradicting the on-disk format is refused
    with an error naming both formats and the conversion escape hatch."""

    def _assert_mismatch(self, excinfo, path, on_disk, requested):
        assert excinfo.value.path == str(path)
        message = str(excinfo.value)
        assert f"holds {on_disk!r} data" in message
        assert f"requested {requested!r}" in message
        assert f"results convert {path}" in message
        assert f"--to {requested}" in message

    def test_jsonl_journal_with_columnar_format_is_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sweep = _sweep()
        run_sweep(sweep, store=path)
        with pytest.raises(SpecError) as excinfo:
            run_sweep(sweep, store=path, store_format="columnar", resume=True)
        self._assert_mismatch(excinfo, path, "jsonl", "columnar")

    def test_columnar_journal_with_jsonl_format_is_refused(self, tmp_path):
        path = tmp_path / "run.rcol"
        sweep = _sweep()
        run_sweep(sweep, store=path, store_format="columnar")
        with pytest.raises(SpecError) as excinfo:
            run_sweep(sweep, store=path, store_format="jsonl", resume=True)
        self._assert_mismatch(excinfo, path, "columnar", "jsonl")

    def test_matching_explicit_format_resumes_normally(self, tmp_path):
        path = tmp_path / "run.rcol"
        sweep = _sweep()
        run_sweep(sweep, store=path, store_format="columnar")
        resumed = run_sweep(sweep, store=path, store_format="columnar", resume=True)
        assert resumed.executed_rounds == 0

    def test_unknown_format_lists_available_backends(self, tmp_path):
        with pytest.raises(SpecError) as excinfo:
            run_sweep(_sweep(), store=tmp_path / "x.out", store_format="parquet")
        message = str(excinfo.value)
        assert "parquet" in message
        assert "columnar" in message and "jsonl" in message


class TestCorruption:
    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        run_sweep(sweep, store=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "point": 3, "ins')  # crash mid-append
        resumed = run_sweep(sweep, store=path, resume=True)
        assert resumed.executed_rounds == 0
        assert len(resumed.records) == 8

    def test_torn_tail_is_repaired_before_appending(self, tmp_path):
        # Appending after a torn line must not concatenate the next record
        # onto the partial text (which would lose it and, once anything
        # followed, make the journal permanently unreadable).
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        full = run_sweep(sweep, store=path)
        lines = path.read_text().splitlines()
        # Keep manifest + 2 records, then a torn partial of the third.
        path.write_text("\n".join(lines[:3]) + "\n" + lines[3][:17])
        resumed = run_sweep(sweep, store=path, resume=True)
        assert resumed.executed_rounds == 6  # the torn round re-ran too
        assert resumed.records == full.records
        # The journal is fully healthy afterwards: every line parses and a
        # further resume finds the complete grid.
        for line in path.read_text().splitlines():
            json.loads(line)
        again = run_sweep(sweep, store=path, resume=True)
        assert again.executed_rounds == 0
        assert again.records == full.records

    def test_missing_final_newline_is_repaired(self, tmp_path):
        # Crash after the record text but before its newline hit the disk.
        path = tmp_path / "journal.jsonl"
        sweep = _sweep()
        full = run_sweep(sweep, store=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:4]))  # 3 intact records, no final \n
        resumed = run_sweep(sweep, store=path, resume=True)
        assert resumed.executed_rounds == 5
        assert resumed.records == full.records
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        run_sweep(_sweep(), store=path)
        lines = path.read_text().splitlines()
        lines[2] = "not json at all"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SpecError, match=r"line 3 is not valid JSON"):
            ResultsStore(path).read()

    def test_file_without_manifest_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "record", "point": 0, "instance": 0}\n')
        with pytest.raises(SpecError, match=r"manifest"):
            run_sweep(_sweep(), store=path, resume=True)

    def test_unsupported_version_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "manifest", "version": 99, "fingerprint": "x"}\n')
        with pytest.raises(SpecError, match=r"version"):
            ResultsStore(path).read()


class TestCliGrid:
    def _dump_quick_sweep(self, tmp_path):
        from repro.scenarios import dump_sweep

        path = tmp_path / "sweep.json"
        dump_sweep(_sweep(rounds=1), path)
        return path

    def test_cli_workers_output_then_resume_runs_nothing(self, tmp_path, capsys):
        spec_path = self._dump_quick_sweep(tmp_path)
        journal = tmp_path / "out.jsonl"
        assert main(
            ["sweep", "--spec", str(spec_path), "--workers", "2",
             "--output", str(journal), "--json"]
        ) == 0
        first = capsys.readouterr()
        assert "executed 4 new rounds" in first.err
        assert main(
            ["sweep", "--spec", str(spec_path), "--workers", "2",
             "--output", str(journal), "--resume", "--json"]
        ) == 0
        second = capsys.readouterr()
        assert "reused 4 journaled rounds, executed 0 new rounds" in second.err
        # The resumed payload is bit-identical — it came from the journal.
        assert json.loads(second.out) == json.loads(first.out)

    def test_cli_resume_requires_output(self, tmp_path, capsys):
        spec_path = self._dump_quick_sweep(tmp_path)
        assert main(["sweep", "--spec", str(spec_path), "--resume"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_cli_fig4_workers_and_output(self, tmp_path, capsys):
        journal = tmp_path / "fig4.jsonl"
        assert main(
            ["fig4", "--users", "10", "--k", "1", "--workers", "2",
             "--output", str(journal), "--json"]
        ) == 0
        first = capsys.readouterr()
        assert main(
            ["fig4", "--users", "10", "--k", "1", "--workers", "2",
             "--output", str(journal), "--resume", "--json"]
        ) == 0
        second = capsys.readouterr()
        assert "executed 0 new rounds" in second.err
        assert json.loads(second.out) == json.loads(first.out)
