"""CLI surface of the results plane: --store-format, summarize and convert."""

import json

import pytest

from repro.cli import main
from repro.scenarios import SweepSpec, dump_sweep, sniff_format, spec_from_dict


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _sweep_file(tmp_path):
    base = spec_from_dict(
        {
            "mechanism": "double",
            "latency": "constant",
            "measure_compute": False,
            "users": 5,
            "providers": 3,
            "rounds": 1,
        }
    )
    sweep = SweepSpec(base=base, name="cli-results", axes=(("users", (4, 5)), ("seed", (0, 1))))
    path = tmp_path / "sweep.json"
    dump_sweep(sweep, path)
    return path


class TestStoreFormatFlag:
    def test_columnar_sweep_then_resume_runs_nothing(self, tmp_path, capsys):
        spec_path = _sweep_file(tmp_path)
        journal = tmp_path / "out.rcol"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(journal),
             "--store-format", "columnar", "--json"]
        ) == 0
        first = capsys.readouterr()
        assert "executed 4 new rounds" in first.err
        assert sniff_format(journal) == "columnar"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(journal),
             "--resume", "--json"]
        ) == 0
        second = capsys.readouterr()
        assert "reused 4 journaled rounds, executed 0 new rounds" in second.err
        assert json.loads(second.out) == json.loads(first.out)

    def test_store_format_requires_output(self, tmp_path, capsys):
        spec_path = _sweep_file(tmp_path)
        assert main(
            ["sweep", "--spec", str(spec_path), "--store-format", "columnar"]
        ) == 2
        err = capsys.readouterr().err
        assert "--store-format" in err and "--output" in err

    def test_format_mismatch_is_a_cli_error_pointing_at_convert(
        self, tmp_path, capsys
    ):
        spec_path = _sweep_file(tmp_path)
        journal = tmp_path / "out.jsonl"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(journal),
             "--store-format", "columnar", "--resume"]
        ) == 2
        err = capsys.readouterr().err
        assert "holds 'jsonl' data" in err
        assert "requested 'columnar'" in err
        assert "results convert" in err


class TestResultsSummarize:
    def _journal(self, tmp_path, fmt="columnar"):
        spec_path = _sweep_file(tmp_path)
        journal = tmp_path / f"out.{fmt}"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(journal),
             "--store-format", fmt]
        ) == 0
        return journal

    def test_renders_the_text_table(self, tmp_path, capsys):
        journal = self._journal(tmp_path)
        capsys.readouterr()
        assert main(["results", "summarize", str(journal)]) == 0
        out = capsys.readouterr().out
        assert str(journal) in out
        assert "cli-results" in out
        assert "total_paid" in out
        assert "p50" in out and "p99" in out
        assert "rounds_per_second" in out

    def test_json_payload_is_machine_readable(self, tmp_path, capsys):
        journal = self._journal(tmp_path)
        capsys.readouterr()
        assert main(["results", "summarize", str(journal), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "columnar"
        assert payload["sweep"] == "cli-results"
        assert payload["records"] == 4
        assert payload["columns"]["total_paid"]["count"] == 4
        assert payload["flags"]["aborted"]["true"] == 0

    def test_missing_journal_is_a_path_precise_error(self, tmp_path, capsys):
        assert main(["results", "summarize", str(tmp_path / "ghost.rcol")]) == 2
        err = capsys.readouterr().err
        assert "ghost.rcol" in err and "not found" in err


class TestResultsConvert:
    def test_convert_then_resume_the_converted_journal(self, tmp_path, capsys):
        spec_path = _sweep_file(tmp_path)
        source = tmp_path / "run.rcol"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(source),
             "--store-format", "columnar"]
        ) == 0
        capsys.readouterr()
        destination = tmp_path / "run.jsonl"
        assert main(["results", "convert", str(source), str(destination)]) == 0
        out = capsys.readouterr().out
        assert "converted 4 records" in out
        assert "(columnar) -> " in out and "(jsonl)" in out
        assert sniff_format(destination) == "jsonl"
        # The fingerprint travelled verbatim: the original sweep resumes it.
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(destination),
             "--resume"]
        ) == 0
        assert "reused 4 journaled rounds, executed 0 new rounds" in (
            capsys.readouterr().err
        )

    def test_explicit_to_format(self, tmp_path, capsys):
        spec_path = _sweep_file(tmp_path)
        source = tmp_path / "run.jsonl"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(source)]
        ) == 0
        capsys.readouterr()
        destination = tmp_path / "run.rcol"
        assert main(
            ["results", "convert", str(source), str(destination),
             "--to", "columnar"]
        ) == 0
        assert sniff_format(destination) == "columnar"

    def test_same_format_conversion_is_refused(self, tmp_path, capsys):
        spec_path = _sweep_file(tmp_path)
        source = tmp_path / "run.jsonl"
        assert main(
            ["sweep", "--spec", str(spec_path), "--output", str(source)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["results", "convert", str(source), str(tmp_path / "copy.jsonl"),
             "--to", "jsonl"]
        ) == 2
        assert "already holds 'jsonl'" in capsys.readouterr().err

    def test_missing_source_is_an_error(self, tmp_path, capsys):
        assert main(
            ["results", "convert", str(tmp_path / "ghost.jsonl"),
             str(tmp_path / "out.rcol")]
        ) == 2
        assert "not found" in capsys.readouterr().err
