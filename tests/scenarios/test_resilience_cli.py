"""CLI spec-path tests for the ``resilience`` sub-command.

The three contracts of the satellite: ``--spec`` round-trips an audit file
end-to-end (text and ``--json``), ``--set`` overrides compose with the file
and an unknown adversary kind fails with a path-precise :class:`SpecError`
on stderr, and ``--resume`` against a complete journal executes 0 new cells.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenarios import dump_resilience, resilience_from_dict


def _spec_file(tmp_path, **overrides):
    data = {
        "name": "cli-audit",
        "base": {
            "mechanism": "double",
            "users": 8,
            "providers": 4,
            "config": {"k": 1},
            "latency": "constant",
            "measure_compute": False,
        },
        "k": 1,
        "adversaries": ["equivocate"],
        "schedules": ["fair"],
        "seeds": [0],
    }
    data.update(overrides)
    path = tmp_path / "audit.json"
    dump_resilience(resilience_from_dict(data), path)
    return str(path)


class TestParser:
    def test_resilience_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resilience"])

    def test_resilience_grid_flags(self):
        args = build_parser().parse_args(
            ["resilience", "--spec", "a.json", "--workers", "2", "--output", "o.jsonl"]
        )
        assert args.command == "resilience"
        assert args.workers == 2
        assert args.output == "o.jsonl"
        assert args.resume is False


class TestSpecPath:
    def test_spec_round_trip_text_output(self, tmp_path, capsys):
        assert main(["resilience", "--spec", _spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: resilient" in out
        assert "equivocate" in out

    def test_spec_round_trip_json_output(self, tmp_path, capsys):
        assert main(["resilience", "--spec", _spec_file(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["audit"] == "cli-audit"
        assert payload["resilient"] is True
        # 4 coalitions x 1 adversary x 1 schedule x 1 seed.
        assert len(payload["records"]) == 4
        assert {r["adversary"] for r in payload["records"]} == {"equivocate"}

    def test_set_overrides_compose_with_spec(self, tmp_path, capsys):
        code = main(
            [
                "resilience",
                "--spec",
                _spec_file(tmp_path),
                "--set",
                "seeds=[0, 1]",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 8
        assert {r["seed"] for r in payload["records"]} == {0, 1}

    def test_unknown_adversary_kind_is_path_precise(self, tmp_path, capsys):
        code = main(
            [
                "resilience",
                "--spec",
                _spec_file(tmp_path),
                "--set",
                'adversaries=["equivocate", "not_a_deviation"]',
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        # The error names the exact spec path and the available kinds.
        assert "adversaries[1]" in err
        assert "not_a_deviation" in err
        assert "equivocate" in err

    def test_workers_flag_matches_sequential(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        assert main(["resilience", "--spec", spec, "--json"]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert main(["resilience", "--spec", spec, "--workers", "2", "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel == sequential


class TestJournalResume:
    def test_resume_executes_zero_new_cells(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        journal = str(tmp_path / "audit.jsonl")
        assert main(["resilience", "--spec", spec, "--output", journal, "--json"]) == 0
        first = capsys.readouterr()
        assert "executed 4 new cells" in first.err
        assert main(
            ["resilience", "--spec", spec, "--output", journal, "--resume", "--json"]
        ) == 0
        second = capsys.readouterr()
        assert "reused 4 journaled cells, executed 0 new cells" in second.err
        assert json.loads(second.out) == json.loads(first.out)

    def test_resume_requires_output(self, tmp_path, capsys):
        assert main(["resilience", "--spec", _spec_file(tmp_path), "--resume"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_changed_audit_rejects_existing_journal(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        journal = str(tmp_path / "audit.jsonl")
        assert main(["resilience", "--spec", spec, "--output", journal]) == 0
        capsys.readouterr()
        code = main(
            [
                "resilience",
                "--spec",
                spec,
                "--set",
                "seeds=[0, 1]",
                "--output",
                journal,
                "--resume",
            ]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err
