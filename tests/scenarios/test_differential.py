"""Differential locks for the scenario front door.

1. ``repro-auction sweep --spec <fig4/fig5 file> --json`` produces records
   bit-identical to the ``fig4``/``fig5`` sub-commands on every deterministic
   field.  ``elapsed_seconds`` is excluded *by design*: the figure specs run
   with ``measure_compute=true``, so elapsed time includes measured handler
   CPU wall-time and no two executions of *either* entry point are timing-
   identical — everything the protocol agrees on (messages, bytes, outcome,
   winners, payments) must match exactly.
2. Spec round-trips: build → dump → load → run yields identical ``RunRecord``s
   seed-for-seed, through both JSON and TOML, including ``elapsed_seconds``
   (with ``measure_compute=false`` the virtual clock is fully deterministic).
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.scenarios import (
    dump_spec,
    dump_sweep,
    figure4_sweep,
    figure5_sweep,
    load_spec,
    load_sweep,
    run_scenario,
    run_sweep,
    spec_from_dict,
)


def _without_timing(payload):
    """Drop the wall-clock-dependent field from a sweep-JSON payload."""
    for record in payload["records"]:
        record.pop("elapsed_seconds")
    return payload


class TestFigureCliEquivalence:
    def test_fig4_equals_sweep_spec(self, tmp_path, capsys):
        sweep = figure4_sweep(n_values=(12,), k_values=(1, 2), seed=3)
        spec_path = tmp_path / "fig4.json"
        dump_sweep(sweep, spec_path)

        assert main(["fig4", "--users", "12", "--k", "1", "2", "--seed", "3", "--json"]) == 0
        via_fig4 = json.loads(capsys.readouterr().out)
        assert main(["sweep", "--spec", str(spec_path), "--json"]) == 0
        via_sweep = json.loads(capsys.readouterr().out)

        assert _without_timing(via_fig4) == _without_timing(via_sweep)

    def test_fig5_equals_sweep_spec(self, tmp_path, capsys):
        sweep = figure5_sweep(n_values=(8,), p_values=(1, 4), epsilon=0.5, seed=3)
        spec_path = tmp_path / "fig5.toml"
        dump_sweep(sweep, spec_path)

        assert main(
            ["fig5", "--users", "8", "--parallelism", "1", "4",
             "--epsilon", "0.5", "--seed", "3", "--json"]
        ) == 0
        via_fig5 = json.loads(capsys.readouterr().out)
        assert main(["sweep", "--spec", str(spec_path), "--json"]) == 0
        via_sweep = json.loads(capsys.readouterr().out)

        assert _without_timing(via_fig5) == _without_timing(via_sweep)

    def test_shipped_spec_files_match_builtin_sweeps(self):
        import os

        specs = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "examples", "specs"
        )
        assert load_sweep(os.path.join(specs, "fig4.json")) == figure4_sweep()
        assert load_sweep(os.path.join(specs, "fig5.toml")) == figure5_sweep()

    def test_experiment_classes_delegate_to_sweep_engine(self):
        from repro.bench.harness import Figure4Experiment

        experiment = Figure4Experiment(n_values=(10,), k_values=(1,), seed=1)
        points = experiment.run()
        records = run_sweep(figure4_sweep(n_values=(10,), k_values=(1,), seed=1)).records
        assert [(p.series, p.num_users, p.messages, p.bytes_transferred, p.aborted)
                for p in points] == \
               [(r.series, r.users, r.messages, r.bytes_transferred, r.aborted)
                for r in records]


class TestDefaultEngineDifferential:
    """The default-flip lock: vectorized-by-default changes labels, not science.

    Running a built-in figure grid with no engine at all (the library default,
    vectorized) must produce records bit-identical to ``engine="reference"``
    on every protocol field — winners, payments, messages, bytes, abort flags.
    Only the resolved-engine labels (``mechanism``, ``engine``) and, for
    ``measure_compute=true`` grids, wall-clock timing may differ.
    """

    ENGINE_LABELS = ("mechanism", "engine")

    def _protocol_fields(self, result, drop_timing):
        rows = []
        for record in result.records:
            payload = record.to_dict()
            for label in self.ENGINE_LABELS:
                payload.pop(label)
            if drop_timing:
                payload.pop("elapsed_seconds")
            rows.append(payload)
        return rows

    def test_fig5_default_flip_is_bit_identical_to_reference(self):
        from repro.scenarios import spec_with_overrides

        default = figure5_sweep(n_values=(8,), p_values=(1, 2), epsilon=0.5, seed=3)
        assert default.base.engine == "vectorized"  # the flipped built-in
        reference = dataclasses.replace(
            default, base=spec_with_overrides(default.base, {"engine": "reference"})
        )
        via_default = run_sweep(default)
        via_reference = run_sweep(reference)
        # fig5 measures handler compute, so elapsed is wall-clock-dependent.
        assert self._protocol_fields(via_default, drop_timing=True) == \
            self._protocol_fields(via_reference, drop_timing=True)
        assert {r.engine for r in via_default.records} == {"vectorized"}
        assert {r.engine for r in via_reference.records} == {"reference"}

    def test_fig4_records_are_engine_invariant(self):
        from repro.scenarios import spec_with_overrides

        default = figure4_sweep(n_values=(10,), k_values=(1,), seed=3)
        reference = dataclasses.replace(
            default, base=spec_with_overrides(default.base, {"engine": "reference"})
        )
        # The double auction has no vectorized engine: the default passes the
        # mechanism through untouched, so even the labels agree.
        assert self._protocol_fields(run_sweep(default), drop_timing=True) == \
            self._protocol_fields(run_sweep(reference), drop_timing=True)

    def test_unflagged_fig5_cli_runs_vectorized(self, capsys):
        # Acceptance criterion: `repro-auction fig5` with no flags runs the
        # vectorized engine (and says so in the record).
        assert main(
            ["fig5", "--users", "8", "--parallelism", "1",
             "--epsilon", "0.5", "--seed", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {r["engine"] for r in payload["records"]} == {"vectorized"}
        assert all(
            r["mechanism"] == "standard-auction-smoothed-vcg-vectorized"
            for r in payload["records"]
        )


class TestSpecRoundTripRuns:
    @pytest.mark.parametrize("extension", ["json", "toml"])
    def test_round_trip_run_identical_records(self, tmp_path, extension):
        spec = spec_from_dict(
            {
                "name": "roundtrip",
                "mechanism": {"kind": "standard", "epsilon": 0.5},
                "workload": {"kind": "vr_sessions", "session_fraction": 0.4},
                "users": 10,
                "providers": 4,
                "config": {"k": 1, "parallel": True, "num_groups": 2},
                "latency": {"kind": "constant", "seconds": 0.001},
                "seed": 13,
                "measure_compute": False,
            }
        )
        path = tmp_path / f"spec.{extension}"
        dump_spec(spec, path)
        loaded = load_spec(path)
        assert loaded == spec
        # Identical RunRecords including elapsed time (virtual clock only).
        assert run_scenario(loaded) == run_scenario(spec)

    def test_round_trip_survives_two_generations(self, tmp_path):
        spec = spec_from_dict(
            {"mechanism": "double", "users": 8, "providers": 4,
             "latency": "constant", "measure_compute": False, "seed": 5}
        )
        first = tmp_path / "gen1.toml"
        second = tmp_path / "gen2.json"
        dump_spec(spec, first)
        dump_spec(load_spec(first), second)
        assert load_spec(second) == spec


class TestCliSpecPaths:
    def test_run_spec_json_output(self, tmp_path, capsys):
        path = tmp_path / "run.toml"
        dump_spec(
            spec_from_dict(
                {"mechanism": "double", "users": 8, "providers": 4,
                 "latency": "constant", "measure_compute": False, "seed": 5}
            ),
            path,
        )
        assert main(["run", "--spec", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["users"] == 8
        assert payload["aborted"] is False
        # The record equals a direct library run of the same file.
        direct = run_scenario(load_spec(path))
        assert payload == direct.to_dict()

    def test_run_spec_with_set_overrides(self, tmp_path, capsys):
        path = tmp_path / "run.toml"
        dump_spec(
            spec_from_dict(
                {"mechanism": "double", "users": 8, "providers": 4,
                 "latency": "constant", "measure_compute": False}
            ),
            path,
        )
        assert main(
            ["run", "--spec", str(path), "--set", "users=6", "--set", "config.k=1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["users"] == 6

    def test_malformed_spec_reports_path_and_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('mechanism = "nope"\nusers = 6\nproviders = 3\n')
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown mechanism kind 'nope'" in err
        assert "available:" in err

    def test_missing_spec_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "ghost.json")]) == 2
        assert "spec file not found" in capsys.readouterr().err

    def test_sweep_rejects_nothing_silently(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"base": {"runner": "quantum"}}')
        assert main(["sweep", "--spec", str(path)]) == 2
        assert "unknown runner" in capsys.readouterr().err

    def test_scenario_file_given_to_sweep_runs_single_point(self, tmp_path, capsys):
        path = tmp_path / "one.json"
        dump_spec(
            spec_from_dict(
                {"mechanism": "double", "users": 6, "providers": 3,
                 "latency": "constant", "measure_compute": False}
            ),
            path,
        )
        assert main(["sweep", "--spec", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 1
