"""Tests for the Simulation facade, the scenario runner and the registries."""

import dataclasses

import pytest

from repro.scenarios import (
    LATENCIES,
    WORKLOADS,
    Simulation,
    SpecError,
    run_scenario,
    run_sweep,
    spec_from_dict,
)
from repro.scenarios.io import dump_spec
from repro.scenarios.spec import SweepSpec


def _strip_elapsed(record):
    return dataclasses.replace(record, elapsed_seconds=0.0)


def _deterministic(data):
    """A spec dict with measure_compute off: records are fully deterministic."""
    base = {"measure_compute": False, "latency": "constant"}
    base.update(data)
    return spec_from_dict(base)


class TestRunners:
    def test_distributed_run_record(self):
        spec = _deterministic({"mechanism": "double", "users": 10, "providers": 4, "seed": 2})
        record = run_scenario(spec)
        assert record.runner == "distributed"
        assert record.mechanism == "double-auction-waterfill"
        assert record.messages > 0
        assert not record.aborted
        assert record.winners > 0
        assert record.elapsed_seconds > 0  # constant latency still advances clocks

    def test_centralized_run_record(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 10, "providers": 4, "runner": "centralized"}
        )
        record = run_scenario(spec)
        assert record.runner == "centralized"
        assert record.messages == 0
        assert record.series == "centralised"

    def test_auction_run_with_adversarial_bidders(self):
        spec = _deterministic(
            {
                "mechanism": "double",
                "users": 8,
                "providers": 4,
                "runner": "auction_run",
                "config": {"k": 1},
                "bidders": [
                    {"kind": "silent", "indices": [0]},
                    {"kind": "inconsistent", "indices": [1]},
                ],
                "seed": 5,
            }
        )
        record = run_scenario(spec)
        assert not record.aborted
        honest = dataclasses.replace(spec, bidders=())
        honest_record = run_scenario(honest)
        # The silent bidder is neutralised; honest outcome differs from adversarial.
        assert record.messages != honest_record.messages or record.winners <= honest_record.winners

    def test_executors_subset_protocol(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 10, "providers": 8, "executors": 3}
        )
        record = run_scenario(spec)
        assert record.executors == 3
        full = run_scenario(dataclasses.replace(spec, executors=None))
        assert full.executors == 8
        assert full.messages > record.messages

    def test_executors_ignored_and_unreported_for_centralized(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 8, "providers": 8, "executors": 3,
             "runner": "centralized"}
        )
        record = run_scenario(spec)
        # The trusted auctioneer always sees all asks; the record must say so.
        assert record.executors == 8

    def test_executors_rejected_for_auction_run(self):
        spec = _deterministic(
            {"users": 6, "providers": 4, "executors": 3, "runner": "auction_run"}
        )
        with pytest.raises(SpecError, match=r"executors"):
            run_scenario(spec)

    def test_topology_scenario_uses_gateways(self):
        spec = _deterministic(
            {
                "mechanism": "double",
                "users": 10,
                "providers": 5,
                "topology": "community",
                "latency": "community",
                "config": {"k": 1},
            }
        )
        record = run_scenario(spec)
        assert record.providers == 5
        assert not record.aborted

    def test_vr_workload_runs_standard_auction(self):
        spec = _deterministic(
            {
                "mechanism": {"kind": "standard", "epsilon": 0.5},
                "workload": {"kind": "vr_sessions", "session_fraction": 0.5},
                "users": 12,
                "providers": 4,
                "seed": 9,
            }
        )
        record = run_scenario(spec)
        assert not record.aborted
        assert 0 < record.winners < 12  # scarce capacity: some but not all users win

    def test_unknown_kind_error_lists_available(self):
        spec = _deterministic({"mechanism": "mystery", "workload": "double"})
        with pytest.raises(SpecError, match=r"mechanism: unknown mechanism kind 'mystery'"):
            run_scenario(spec)

    def test_bad_factory_params_name_path(self):
        spec = _deterministic({"mechanism": {"kind": "standard", "epsilon": -1.0}})
        with pytest.raises(SpecError, match=r"mechanism: invalid parameters"):
            run_scenario(spec)

    def test_overlapping_bidder_entries_rejected(self):
        spec = _deterministic(
            {
                "users": 4,
                "providers": 3,
                "runner": "auction_run",
                "bidders": [
                    {"kind": "silent", "indices": [0]},
                    {"kind": "scaling", "users": ["u0000"], "factor": 2.0},
                ],
            }
        )
        with pytest.raises(SpecError, match=r"more than one bidder entry"):
            run_scenario(spec)

    def test_bidder_index_out_of_range(self):
        spec = _deterministic(
            {
                "users": 4,
                "providers": 3,
                "runner": "auction_run",
                "bidders": [{"kind": "silent", "indices": [10]}],
            }
        )
        with pytest.raises(SpecError, match=r"bidders\[0\]\.indices"):
            run_scenario(spec)


class TestDeterminism:
    def test_same_spec_same_record(self):
        spec = _deterministic(
            {"mechanism": {"kind": "standard", "epsilon": 0.5}, "users": 8, "providers": 4}
        )
        assert run_scenario(spec) == run_scenario(spec)

    def test_centralized_honours_measure_compute_off(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 8, "providers": 4, "runner": "centralized"}
        )
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first == second  # including elapsed_seconds
        assert first.elapsed_seconds == 0.0

    def test_facade_equals_free_function(self):
        spec = _deterministic({"mechanism": "double", "users": 9, "providers": 4, "seed": 1})
        with Simulation(spec) as sim:
            assert sim.run() == run_scenario(spec)

    def test_engines_bit_identical_through_specs(self):
        base = {
            "mechanism": {"kind": "standard", "epsilon": 0.5},
            "users": 10,
            "providers": 4,
            "seed": 6,
        }
        reference = run_scenario(_deterministic({**base, "engine": "reference"}))
        vectorized = run_scenario(_deterministic({**base, "engine": "vectorized"}))
        assert (reference.winners, reference.total_paid, reference.total_received) == (
            vectorized.winners,
            vectorized.total_paid,
            vectorized.total_received,
        )

    def test_batch_equals_repeated_runs(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 8, "providers": 4, "rounds": 3, "seed": 2}
        )
        with Simulation(spec) as sim:
            batch = sim.run_batch()
        singles = [run_scenario(spec, instance) for instance in range(3)]
        assert batch.records == singles
        assert batch.total_rounds == 3
        assert batch.aborted_rounds == 0


class TestSweeps:
    def test_facade_sweep_axes(self):
        spec = _deterministic({"mechanism": "double", "users": 6, "providers": 4})
        result = Simulation(spec).sweep(axes={"users": [4, 6], "seed": [0, 1]})
        assert [record.users for record in result.records] == [4, 4, 6, 6]
        assert [record.seed for record in result.records] == [0, 1, 0, 1]

    def test_sweep_rounds_expand_per_point(self):
        spec = _deterministic(
            {"mechanism": "double", "users": 5, "providers": 3, "rounds": 2}
        )
        result = run_sweep(SweepSpec(base=spec, points=({"users": 4}, {"users": 5})))
        assert [(r.users, r.instance) for r in result.records] == [
            (4, 0), (4, 1), (5, 0), (5, 1),
        ]

    def test_sweep_json_export_shape(self):
        import json

        spec = _deterministic({"mechanism": "double", "users": 4, "providers": 3})
        result = Simulation(spec).sweep(points=[{"series": "only"}], name="tiny")
        data = json.loads(result.to_json())
        assert data["sweep"] == "tiny"
        assert len(data["records"]) == 1
        assert data["records"][0]["series"] == "only"
        assert data["base"]["users"] == 4

    def test_sweep_is_deterministic(self):
        spec = _deterministic({"mechanism": "double", "users": 5, "providers": 3})
        sweep = SweepSpec(base=spec, axes=(("users", (4, 5)),))
        assert run_sweep(sweep).records == run_sweep(sweep).records


class TestRegistryExtension:
    def test_register_create_unregister(self):
        from repro.net.latency import ConstantLatencyModel

        LATENCIES.register("crawl", lambda: ConstantLatencyModel(1.0))
        try:
            spec = _deterministic(
                {"mechanism": "double", "users": 4, "providers": 3, "latency": "crawl"}
            )
            record = run_scenario(spec)
            assert record.elapsed_seconds > 1.0
        finally:
            LATENCIES.unregister("crawl")
        with pytest.raises(SpecError, match=r"unknown latency model kind 'crawl'"):
            run_scenario(
                _deterministic(
                    {"mechanism": "double", "users": 4, "providers": 3, "latency": "crawl"}
                )
            )

    def test_shadowing_builtin_kind_raises(self):
        with pytest.raises(ValueError, match=r"already registered"):
            WORKLOADS.register("double", lambda **kw: None)

    def test_custom_workload_reachable_from_spec_file(self, tmp_path):
        from repro.community.workload import DoubleAuctionWorkload

        WORKLOADS.register("halved", lambda seed=0: DoubleAuctionWorkload(
            capacity_low=0.25, capacity_high=0.75, seed=seed
        ))
        try:
            spec = _deterministic(
                {"mechanism": "double", "workload": "halved", "users": 6, "providers": 3}
            )
            path = tmp_path / "custom.toml"
            dump_spec(spec, path)
            with Simulation.from_file(path) as sim:
                assert sim.run() == run_scenario(spec)
        finally:
            WORKLOADS.unregister("halved")
