"""Resilience-audit subsystem: specs, records, registry, store and executor."""

import dataclasses
import json

import pytest

from repro.scenarios import (
    ADVERSARIES,
    SCHEDULERS,
    AdversarySpec,
    ResilienceRecord,
    ResilienceSpec,
    ScenarioSpec,
    SpecError,
    dump_resilience,
    load_resilience,
    resilience_fingerprint,
    resilience_from_dict,
    resilience_to_dict,
    resilience_with_overrides,
    run_resilience,
)
from repro.scenarios.resilience import DEFAULT_ADVERSARIES
from repro.scenarios.store import ResultsStore


def _spec(**overrides):
    data = {
        "name": "audit",
        "base": {
            "mechanism": "double",
            "users": 8,
            "providers": 4,
            "config": {"k": 1},
            "latency": "constant",
            "measure_compute": False,
        },
        "k": 1,
        "adversaries": ["equivocate", {"kind": "tamper_output", "bonus": 5.0}],
        "schedules": ["fair"],
        "seeds": [0],
    }
    data.update(overrides)
    return resilience_from_dict(data)


class TestRegistries:
    def test_builtin_adversaries_registered(self):
        for kind in ("equivocate", "drop_messages", "crash", "tamper_output", "forge_bids"):
            assert kind in ADVERSARIES

    def test_builtin_schedules_registered(self):
        for kind in ("fair", "round_robin", "random", "adversarial"):
            assert kind in SCHEDULERS

    def test_unknown_adversary_kind_is_path_precise(self):
        from repro.scenarios.spec import ComponentSpec

        with pytest.raises(SpecError) as excinfo:
            ADVERSARIES.create(ComponentSpec("nope"), "adversaries[0]")
        assert excinfo.value.path == "adversaries[0]"
        assert "equivocate" in str(excinfo.value)  # lists what IS available

    def test_bad_adversary_parameter_is_path_precise(self):
        from repro.scenarios.spec import ComponentSpec

        with pytest.raises(SpecError) as excinfo:
            ADVERSARIES.create(ComponentSpec("crash", {"bogus": 1}), "adversaries[2]")
        assert excinfo.value.path == "adversaries[2]"


class TestSpecParsing:
    def test_round_trip_is_lossless(self):
        spec = _spec()
        assert resilience_from_dict(resilience_to_dict(spec)) == spec

    def test_file_round_trip_json_and_toml(self, tmp_path):
        spec = _spec(coalitions=[[0], ["p01", "p02"]])
        for name in ("audit.json", "audit.toml"):
            path = tmp_path / name
            dump_resilience(spec, path)
            assert load_resilience(path) == spec

    def test_unknown_key_is_path_precise(self):
        with pytest.raises(SpecError) as excinfo:
            _spec(adversariez=["equivocate"])
        assert "adversariez" in str(excinfo.value)

    def test_unknown_base_key_names_base_path(self):
        with pytest.raises(SpecError) as excinfo:
            resilience_from_dict({"base": {"userz": 5}})
        assert excinfo.value.path.startswith("base.")

    def test_adversary_entry_errors_carry_index(self):
        with pytest.raises(SpecError) as excinfo:
            _spec(adversaries=["equivocate", {"bonus": 5.0}])
        assert excinfo.value.path == "adversaries[1]"

    def test_non_distributed_base_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            _spec(base={"mechanism": "double", "runner": "centralized"})
        assert excinfo.value.path == "base.runner"

    def test_coalition_selector_validation(self):
        with pytest.raises(SpecError) as excinfo:
            _spec(coalitions=[[0, 0]])
        assert excinfo.value.path == "coalitions[0]"
        with pytest.raises(SpecError) as excinfo:
            _spec(coalitions=[[-1]])
        assert excinfo.value.path == "coalitions[0][0]"

    def test_k_must_leave_an_honest_executor(self):
        with pytest.raises(SpecError) as excinfo:
            _spec(k=4)
        assert excinfo.value.path == "k"

    def test_empty_grid_is_rejected_not_vacuously_resilient(self):
        # A base config with k=0 and no explicit audit k would expand to zero
        # coalitions — and a 0-cell audit would exit 0 as a "resilient" CI
        # gate without checking anything.
        with pytest.raises(SpecError) as excinfo:
            _spec(
                k=None,
                base={"mechanism": "double", "users": 8, "providers": 4,
                      "config": {"k": 0}, "measure_compute": False},
            )
        assert excinfo.value.path == "k"
        assert "empty" in excinfo.value.message

    def test_unknown_adversary_fails_before_any_simulation(self, tmp_path):
        spec = _spec(adversaries=["equivocate", "not_registered"])
        journal = tmp_path / "audit.jsonl"
        with pytest.raises(SpecError) as excinfo:
            run_resilience(spec, store=journal)
        assert excinfo.value.path == "adversaries[1]"
        assert not journal.exists()  # failed up front, before the journal opened

    def test_default_adversary_library(self):
        spec = _spec()
        spec = dataclasses.replace(spec, adversaries=())
        kinds = [adversary.kind for adversary in spec.effective_adversaries()]
        assert kinds == [kind for kind, _ in DEFAULT_ADVERSARIES]

    def test_generated_coalitions_sizes_first_and_capped(self):
        spec = _spec(k=2, base={"mechanism": "double", "users": 8, "providers": 5,
                                "config": {"k": 2}, "measure_compute": False})
        selectors = spec.coalition_selectors()
        assert len(selectors) == 5 + 10  # sizes 1 then 2 over 5 executors
        assert selectors[0] == (0,) and selectors[5] == (0, 1)
        capped = dataclasses.replace(spec, max_coalitions=7)
        assert len(capped.coalition_selectors()) == 7

    def test_overrides_dig_into_base_and_audit_fields(self):
        spec = _spec()
        updated = resilience_with_overrides(spec, {"base.users": 30, "k": 2, "seeds": [1, 2]})
        assert updated.base.users == 30
        assert updated.k == 2
        assert updated.seeds == (1, 2)
        assert updated.base.providers == spec.base.providers

    def test_fingerprint_tracks_spec_identity(self):
        spec = _spec()
        assert resilience_fingerprint(spec) == resilience_fingerprint(_spec())
        assert resilience_fingerprint(spec) != resilience_fingerprint(_spec(k=None))


class TestAdversarySpec:
    def test_display_label(self):
        assert AdversarySpec("crash").display_label == "crash"
        assert AdversarySpec("crash", {"max_sends": 2}).display_label == "crash(max_sends=2)"
        assert AdversarySpec("crash", {}, "boom").display_label == "boom"

    def test_reserved_keys_rejected(self):
        with pytest.raises(SpecError):
            AdversarySpec("crash", {"label": "x"})


class TestRecord:
    def _record(self):
        return ResilienceRecord(
            name="audit",
            mechanism="double-auction-waterfill",
            schedule="fair",
            adversary="equivocate",
            label="equivocate",
            coalition=("p01", "p00"),
            users=8,
            providers=4,
            executors=4,
            k=1,
            audit_k=2,
            instance=0,
            seed=7,
            honest_aborted=False,
            deviating_aborted=True,
            altered_result=False,
            profitable=False,
            max_gain=-0.125,
            member_gains={"p01": -0.125, "p00": -0.25},
            honest_messages=100,
            deviating_messages=90,
            honest_elapsed=0.5,
            deviating_elapsed=0.4,
        )

    def test_round_trip_is_lossless(self):
        record = self._record()
        assert ResilienceRecord.from_dict(record.to_dict()) == record
        rehydrated = ResilienceRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rehydrated == record

    def test_members_and_coalition_are_canonically_ordered(self):
        record = self._record()
        assert list(record.member_gains) == ["p00", "p01"]
        assert record.coalition == ("p00", "p01")
        assert record.coalition_size == 2

    def test_verdict_property(self):
        record = self._record()
        assert record.resilient
        assert not dataclasses.replace(record, profitable=True).resilient
        assert not dataclasses.replace(record, altered_result=True).resilient


class TestStoreIntegration:
    def test_journal_resume_serves_all_cells(self, tmp_path):
        spec = _spec()
        path = tmp_path / "audit.jsonl"
        first = run_resilience(spec, store=path)
        assert first.executed_cells == len(first.records)
        resumed = run_resilience(spec, store=path, resume=True)
        assert resumed.executed_cells == 0
        assert resumed.resumed_cells == len(first.records)
        assert resumed.records == first.records

    def test_journal_rejects_a_different_audit(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        run_resilience(_spec(), store=path)
        with pytest.raises(SpecError):
            run_resilience(_spec(k=None), store=path, resume=True)

    def test_store_rehydrates_resilience_records(self, tmp_path):
        from repro.scenarios.resilience import ResilienceRecord as RecordType

        spec = _spec()
        path = tmp_path / "audit.jsonl"
        result = run_resilience(spec, store=path)
        store = ResultsStore(path, record_type=RecordType)
        _manifest, completed = store.read(
            expected_fingerprint=resilience_fingerprint(spec)
        )
        assert len(completed) == len(result.records)
        assert all(isinstance(record, RecordType) for record in completed.values())


class TestSimulationFacade:
    def test_audit_resilience_defaults(self):
        spec = ScenarioSpec(
            mechanism="double", users=8, providers=4, config={"k": 1},
            latency="constant", measure_compute=False,
        )
        from repro.scenarios import Simulation

        with Simulation(spec) as sim:
            result = sim.audit_resilience(adversaries=("equivocate",))
        # k defaults to the config's k=1: one cell per executor.
        assert len(result.records) == 4
        assert result.name == "scenario-resilience"
        assert {r.adversary for r in result.records} == {"equivocate"}
