"""Differential suite: the columnar backend is record-equivalent to jsonl.

The results-plane contract is that a journal's *content* is independent of
its file format: every record a backend rehydrates must be byte-identical to
the jsonl backend's on canonical JSON — across sweep and resilience
workloads, sequential and parallel execution, and fingerprint-guarded resume
(including resume *across* formats through ``convert_journal``).  Plus the
columnar failure modes: torn final chunk repaired, fingerprint mismatch,
PYTHONHASHSEED-independent bytes, and the streaming-summary guarantee that
aggregation never materialises a record.
"""

import builtins
import json
import os
import subprocess
import sys

import pytest

from repro.scenarios import (
    ResultsStore,
    RunRecord,
    SpecError,
    SweepSpec,
    convert_journal,
    run_sweep,
    sniff_format,
    spec_from_dict,
)
from repro.scenarios.resilience import (
    ResilienceRecord,
    ResilienceSpec,
    resilience_fingerprint,
    run_resilience,
)

FORMATS = ("jsonl", "columnar")


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _spec(data):
    base = {"mechanism": "double", "latency": "constant", "measure_compute": False}
    base.update(data)
    return spec_from_dict(base)


def _sweep(rounds=2):
    return SweepSpec(
        base=_spec({"users": 5, "providers": 3, "rounds": rounds}),
        name="backend-diff",
        axes=(("users", (4, 5)), ("seed", (0, 1))),
    )


def _audit():
    return ResilienceSpec(
        name="backend-diff-audit",
        base=_spec({"users": 8, "providers": 4, "config": {"k": 1}, "seed": 3}),
        k=1,
        adversaries=("equivocate", {"kind": "tamper_output", "bonus": 5.0}),
        schedules=("fair",),
        seeds=(3, 4),
    )


def _canonical(record):
    return json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))


class TestRecordEquivalence:
    def test_sweep_records_byte_equal_across_backends(self, tmp_path):
        sweep = _sweep()
        stores = {}
        for fmt in FORMATS:
            path = tmp_path / f"sweep.{fmt}"
            run_sweep(sweep, store=path, store_format=fmt)
            assert sniff_format(path) == fmt
            _manifest, completed = ResultsStore(path).read()
            stores[fmt] = completed
        assert stores["jsonl"].keys() == stores["columnar"].keys()
        for key, record in stores["jsonl"].items():
            assert _canonical(record) == _canonical(stores["columnar"][key])
        # Typed equality too — same frozen dataclass values, not just JSON.
        assert stores["jsonl"] == stores["columnar"]

    def test_parallel_columnar_matches_sequential_jsonl(self, tmp_path):
        sweep = _sweep()
        sequential = run_sweep(sweep, store=tmp_path / "seq.jsonl")
        parallel = run_sweep(
            sweep, workers=3, store=tmp_path / "par.rcol", store_format="columnar"
        )
        assert [_canonical(r) for r in parallel.records] == [
            _canonical(r) for r in sequential.records
        ]
        # And what landed on disk rehydrates to the same records, in order.
        _manifest, completed = ResultsStore(tmp_path / "par.rcol").read()
        assert sorted(completed) == sorted(
            (p, i) for p in range(4) for i in range(2)
        )

    def test_resilience_records_byte_equal_across_backends(self, tmp_path):
        audit = _audit()
        completed = {}
        for fmt in FORMATS:
            path = tmp_path / f"audit.{fmt}"
            run_resilience(audit, store=path, store_format=fmt)
            store = ResultsStore(path, record_type=ResilienceRecord)
            _manifest, cells = store.read(
                expected_fingerprint=resilience_fingerprint(audit)
            )
            completed[fmt] = cells
        assert completed["jsonl"].keys() == completed["columnar"].keys()
        for key, record in completed["jsonl"].items():
            assert isinstance(record, ResilienceRecord)
            assert _canonical(record) == _canonical(completed["columnar"][key])

    def test_resilience_resume_on_columnar_runs_nothing(self, tmp_path):
        audit = _audit()
        path = tmp_path / "audit.rcol"
        first = run_resilience(audit, store=path, store_format="columnar")
        again = run_resilience(audit, store=path, resume=True)
        assert again.executed_cells == 0
        assert again.resumed_cells == len(first.records)
        assert again.records == first.records


class TestConvert:
    def test_round_trip_preserves_manifest_and_record_bytes(self, tmp_path):
        sweep = _sweep()
        source = tmp_path / "run.jsonl"
        run_sweep(sweep, store=source)
        forth = convert_journal(source, tmp_path / "run.rcol")
        back = convert_journal(tmp_path / "run.rcol", tmp_path / "back.jsonl")
        assert (forth["from"], forth["to"]) == ("jsonl", "columnar")
        assert (back["from"], back["to"]) == ("columnar", "jsonl")
        assert forth["records"] == back["records"] == 8
        first_lines = source.read_text().splitlines()
        round_trip = (tmp_path / "back.jsonl").read_text().splitlines()
        # The manifest is copied verbatim; record *content* is byte-stable
        # through the typed columns (jsonl key order within a line may shift).
        assert json.loads(round_trip[0]) == json.loads(first_lines[0])
        originals = {
            (e["point"], e["instance"]): e["record"]
            for e in map(json.loads, first_lines[1:])
        }
        for line in round_trip[1:]:
            entry = json.loads(line)
            key = (entry["point"], entry["instance"])
            assert json.dumps(entry["record"], sort_keys=True) == json.dumps(
                originals[key], sort_keys=True
            )

    def test_resume_continues_a_partial_journal_across_formats(self, tmp_path):
        sweep = _sweep()
        full = run_sweep(sweep, store=tmp_path / "full.jsonl")
        partial = tmp_path / "partial.jsonl"
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        partial.write_text("\n".join(lines[:4]) + "\n")  # manifest + 3 rounds
        converted = tmp_path / "partial.rcol"
        assert convert_journal(partial, converted)["records"] == 3
        resumed = run_sweep(sweep, store=converted, resume=True)
        assert resumed.resumed_rounds == 3
        assert resumed.executed_rounds == 5
        assert resumed.records == full.records

    def test_same_format_destination_is_refused(self, tmp_path):
        run_sweep(_sweep(), store=tmp_path / "run.jsonl")
        with pytest.raises(SpecError, match=r"already holds 'jsonl'"):
            convert_journal(
                tmp_path / "run.jsonl", tmp_path / "copy.jsonl", to="jsonl"
            )

    def test_existing_destination_is_refused(self, tmp_path):
        run_sweep(_sweep(), store=tmp_path / "run.jsonl")
        (tmp_path / "taken.rcol").write_text("something else\n")
        with pytest.raises(SpecError, match=r"already exists"):
            convert_journal(tmp_path / "run.jsonl", tmp_path / "taken.rcol")

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(SpecError, match=r"not found"):
            convert_journal(tmp_path / "ghost.jsonl", tmp_path / "out.rcol")

    def test_unknown_target_format_lists_available(self, tmp_path):
        run_sweep(_sweep(), store=tmp_path / "run.jsonl")
        with pytest.raises(SpecError) as excinfo:
            convert_journal(tmp_path / "run.jsonl", tmp_path / "o.x", to="parquet")
        assert excinfo.value.path == "--to"
        assert "columnar" in str(excinfo.value) and "jsonl" in str(excinfo.value)


class TestColumnarFailureModes:
    def test_torn_final_chunk_is_ignored_on_read(self, tmp_path):
        path = tmp_path / "run.rcol"
        sweep = _sweep()
        run_sweep(sweep, store=path, store_format="columnar")
        healthy = path.read_bytes()
        # Crash mid-seal: marker + a header that never finished writing.
        path.write_bytes(healthy + b"CHNK\x40\x00\x00\x00{\"rows\": 512, ")
        _manifest, completed = ResultsStore(path).read()
        assert len(completed) == 8

    def test_torn_payload_is_ignored_on_read(self, tmp_path):
        path = tmp_path / "run.rcol"
        sweep = _sweep()
        run_sweep(sweep, store=path, store_format="columnar")
        healthy = path.read_bytes()
        # A complete header whose payload was cut off by the crash.
        header = json.dumps(
            {"rows": 99, "schema": [["x", "int"]], "strings": [], "payload_bytes": 9999}
        ).encode()
        torn = b"CHNK" + len(header).to_bytes(4, "little") + header + b"\x00" * 10
        path.write_bytes(healthy + torn)
        _manifest, completed = ResultsStore(path).read()
        assert len(completed) == 8

    def test_resume_repairs_the_torn_tail_and_appends_after_it(self, tmp_path):
        path = tmp_path / "run.rcol"
        sweep = _sweep()
        full = run_sweep(sweep, store=path, store_format="columnar")
        healthy = path.read_bytes()
        path.write_bytes(healthy + b"CHNK\x07garbage")
        resumed = run_sweep(sweep, store=path, resume=True)
        assert resumed.executed_rounds == 0
        assert resumed.records == full.records
        assert path.read_bytes() == healthy  # truncated back to the sealed extent
        # The journal stays healthy through a further resume cycle.
        again = run_sweep(sweep, store=path, resume=True)
        assert again.records == full.records

    def test_fingerprint_guard_holds_on_columnar_and_converted_journals(
        self, tmp_path
    ):
        sweep = _sweep()
        run_sweep(sweep, store=tmp_path / "run.rcol", store_format="columnar")
        changed = SweepSpec(base=_spec({"users": 9, "providers": 3}), name="backend-diff")
        with pytest.raises(SpecError, match=r"does not match this sweep"):
            run_sweep(changed, store=tmp_path / "run.rcol", resume=True)
        # The guard survives conversion: the fingerprint travels verbatim.
        convert_journal(tmp_path / "run.rcol", tmp_path / "run.jsonl")
        with pytest.raises(SpecError, match=r"does not match this sweep"):
            run_sweep(changed, store=tmp_path / "run.jsonl", resume=True)

    def test_type_unstable_records_are_refused_with_the_field_name(self, tmp_path):
        path = tmp_path / "run.rcol"
        store = ResultsStore(path, format="columnar")
        store.begin(_sweep(), total_rounds=2)
        record = run_sweep(_sweep()).records[0]
        store.append(0, 0, record)
        broken = dict(record.to_dict())
        broken["users"] = "five"  # int column fed a str
        store.backend.append_raw(0, 1, broken)
        # Appends only buffer; the type check runs when the chunk is sealed.
        with pytest.raises(SpecError, match=r"'users' is not type-stable"):
            store.flush()

    def test_not_a_columnar_journal_is_a_clear_error(self, tmp_path):
        path = tmp_path / "run.rcol"
        path.write_bytes(b"RPACOL1\nnot a manifest block")
        with pytest.raises(SpecError, match=r"truncated manifest block"):
            ResultsStore(path).read()


class TestStreamingSummary:
    def test_summaries_agree_across_backends(self, tmp_path):
        sweep = _sweep()
        summaries = {}
        for fmt in FORMATS:
            path = tmp_path / f"run.{fmt}"
            run_sweep(sweep, store=path, store_format=fmt)
            summaries[fmt] = ResultsStore(path).summary()
        for payload in summaries.values():
            payload.pop("path")
            payload.pop("backend")
        jsonl, columnar = summaries["jsonl"], summaries["columnar"]
        assert jsonl["records"] == columnar["records"] == 8
        assert jsonl["flags"] == columnar["flags"]
        assert jsonl["columns"].keys() == columnar["columns"].keys()
        for name, stats in jsonl["columns"].items():
            other = columnar["columns"][name]
            # Histogram-derived stats are bit-identical (same update kernel,
            # batch-invariant); means may differ in the last ulp only.
            for field in ("count", "min", "max", "p50", "p90", "p99"):
                assert stats[field] == other[field], (name, field)
            assert stats["mean"] == pytest.approx(other["mean"], rel=1e-12)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_summary_never_rehydrates_a_record(self, tmp_path, monkeypatch, fmt):
        path = tmp_path / f"run.{fmt}"
        run_sweep(_sweep(), store=path, store_format=fmt)

        def boom(cls, payload):  # pragma: no cover - the point is it never runs
            raise AssertionError("summary() must stream, not rehydrate records")

        monkeypatch.setattr(RunRecord, "from_dict", classmethod(boom))
        summary = ResultsStore(path).summary()
        assert summary["records"] == 8
        assert summary["columns"]["total_paid"]["count"] == 8

    def test_empty_journal_summary_is_pinned_across_backends(self, tmp_path):
        # A journal holding only its manifest (begun, nothing appended — e.g.
        # a run interrupted before its first round) summarises to the same
        # empty snapshot on every backend: zero records, empty column/flag/
        # throughput tables, never a crash or a null-division.
        sweep = _sweep()
        summaries = {}
        for fmt in FORMATS:
            path = tmp_path / f"empty.{fmt}"
            with ResultsStore(path, format=fmt) as store:
                store.begin(sweep, total_rounds=8)
            summaries[fmt] = ResultsStore(path).summary()
        for fmt, payload in summaries.items():
            assert payload.pop("backend") == fmt
            assert payload.pop("path").endswith(f"empty.{fmt}")
            assert payload["records"] == 0
            assert payload["columns"] == {}
            assert payload["flags"] == {}
            assert payload["throughput"] == {}
            assert payload["total_rounds"] == 8
        assert summaries["jsonl"] == summaries["columnar"]

    def test_empty_accumulator_snapshot_is_pinned(self):
        # The empty-distribution contract shared by store summaries and the
        # obs plane's histograms: count=0, every statistic None.
        from repro.scenarios.aggregate import MetricAccumulator

        assert MetricAccumulator().to_dict() == {
            "count": 0,
            "mean": None,
            "min": None,
            "max": None,
            "p50": None,
            "p90": None,
            "p99": None,
        }

    def test_summary_carries_throughput_from_elapsed_totals(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_sweep(_sweep(), store=path)
        throughput = ResultsStore(path).summary()["throughput"]
        assert throughput["rounds_per_second"] > 0
        assert throughput["messages_per_second"] > 0


class TestHashSeedStability:
    """Columnar bytes are a pure function of the record stream.

    The string dictionary grows in first-seen order and every header/payload
    is canonically encoded, so two interpreters with different hash seeds
    must produce *byte-identical* files — the store-layer extension of the
    ``test_seed_stability`` contract.
    """

    _SCRIPT = """\
import hashlib, sys
sys.path.insert(0, sys.argv[1])
from repro.scenarios import SweepSpec, run_sweep, spec_from_dict

spec = spec_from_dict({
    "mechanism": "double", "latency": "constant", "measure_compute": False,
    "users": 5, "providers": 3, "rounds": 2,
})
sweep = SweepSpec(base=spec, name="hash-stability", axes=(("seed", (0, 1)),))
run_sweep(sweep, store=sys.argv[2], store_format="columnar")
with open(sys.argv[2], "rb") as handle:
    print(hashlib.sha256(handle.read()).hexdigest())
"""

    def _digest(self, tmp_path, hash_seed):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        out = tmp_path / f"hashseed-{hash_seed}.rcol"
        result = subprocess.run(
            [sys.executable, "-c", self._SCRIPT, src, str(out)],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONHASHSEED=hash_seed),
            check=True,
        )
        return result.stdout.strip()

    def test_columnar_bytes_identical_across_hash_seeds(self, tmp_path):
        digests = {self._digest(tmp_path, seed) for seed in ("0", "4242")}
        assert len(digests) == 1


class TestAppendIO:
    """Satellite: resume reads the journal once; appending never reads."""

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_appends_do_constant_io_and_resume_reads_once(
        self, tmp_path, monkeypatch, fmt
    ):
        path = tmp_path / f"run.{fmt}"
        sweep = _sweep()
        records = run_sweep(sweep).records

        read_opens = []
        real_open = builtins.open

        def counting_open(file, mode="r", *args, **kwargs):
            handle = real_open(file, mode, *args, **kwargs)
            try:
                same = os.fspath(file) == os.fspath(path)
            except TypeError:
                same = False
            if same and "r" in mode and "+" not in mode:
                read_opens.append(mode)
            return handle

        monkeypatch.setattr(builtins, "open", counting_open)

        with ResultsStore(path, format=fmt) as store:
            store.begin(sweep, total_rounds=16)
            for index, record in enumerate(records[:4]):
                store.append(index, 0, record)
        assert read_opens == []  # a fresh journal is never read

        with ResultsStore(path) as store:
            store.backend  # resolve the backend: an 8-byte format sniff
            read_opens.clear()
            completed = store.begin(sweep, total_rounds=16, resume=True)
            assert len(completed) == 4
            assert read_opens == ["rb"]  # the single load pass — no re-read
            for index, record in enumerate(records[4:]):
                store.append(4 + index, 0, record)
            assert read_opens == ["rb"]  # appends never read

        monkeypatch.setattr(builtins, "open", real_open)
        _manifest, completed = ResultsStore(path).read()
        assert len(completed) == 8
