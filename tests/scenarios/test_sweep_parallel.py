"""Parallel sweep executor: differential locks, amortisation and lifecycle.

The contract under test (DESIGN.md, "Parallel sweeps and the results store"):

* ``run_sweep(workers=N)`` is bit-identical to sequential ``run_sweep`` on
  every deterministic :class:`RunRecord` field, in the same grid order —
  with ``measure_compute=false`` that means *full* record equality,
  ``elapsed_seconds`` included (the virtual clock is deterministic);
* chunking preserves the per-configuration state amortisation (all rounds of
  a grid point share one worker and one component cache);
* component caches — including the latency-model cache and the canonical
  parameter keys — never change results, only skip rebuilds;
* engine resources are released on every path, including worker chunks whose
  grid point raises.
"""

import dataclasses
import pickle

import pytest

from repro.scenarios import (
    ComponentCache,
    ScenarioSpec,
    Simulation,
    SpecError,
    SweepSpec,
    WORKLOADS,
    run_sweep,
    spec_from_dict,
)
from repro.scenarios.dispatch import ChunkExecutionError
from repro.scenarios.parallel import amortisation_key, chunk_tasks, execute_chunk
from repro.scenarios.spec import ComponentSpec, spec_to_dict
from repro.scenarios.sweep import _component_key


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    # The worker policy degrades explicit counts to the CPUs this process may
    # use; pin a big host so the pool paths under test stay parallel (and
    # warning-free) on single-core CI runners.
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _spec(data):
    base = {"mechanism": "double", "latency": "constant", "measure_compute": False}
    base.update(data)
    return spec_from_dict(base)


def _strip_elapsed(record):
    return dataclasses.replace(record, elapsed_seconds=0.0)


class TestParallelDifferential:
    def test_parallel_bit_identical_to_sequential(self):
        # measure_compute=false: the virtual clock is deterministic, so the
        # lock is FULL record equality — elapsed_seconds included.
        sweep = SweepSpec(
            base=_spec({"users": 6, "providers": 3, "rounds": 2}),
            axes=(("users", (5, 6)), ("seed", (0, 1))),
        )
        sequential = run_sweep(sweep)
        parallel = run_sweep(sweep, workers=4)
        assert parallel.records == sequential.records
        assert len(parallel.records) == 8
        assert parallel.executed_rounds == 8

    def test_parallel_matches_on_deterministic_fields_with_measured_compute(self):
        # measure_compute=true: wall-clock CPU time is charged to the virtual
        # clocks, so elapsed differs run to run; everything else must match.
        sweep = SweepSpec(
            base=spec_from_dict(
                {"mechanism": "double", "users": 8, "providers": 4, "latency": "wan"}
            ),
            axes=(("users", (6, 8)),),
        )
        sequential = run_sweep(sweep)
        parallel = run_sweep(sweep, workers=2)
        assert [_strip_elapsed(r) for r in parallel.records] == [
            _strip_elapsed(r) for r in sequential.records
        ]

    def test_parallel_vectorized_engine(self):
        sweep = SweepSpec(
            base=_spec(
                {
                    "mechanism": {"kind": "standard", "epsilon": 0.5},
                    "engine": "vectorized",
                    "users": 8,
                    "providers": 3,
                    "config": {"k": 1, "parallel": True},
                }
            ),
            axes=(("users", (6, 8)),),
        )
        assert run_sweep(sweep, workers=2).records == run_sweep(sweep).records

    def test_parallel_mixed_runners_and_topologies(self):
        sweep = SweepSpec(
            base=_spec({"users": 8, "providers": 4, "rounds": 2}),
            points=(
                {"runner": "centralized", "series": "central"},
                {"config.k": 1, "series": "dist"},
                {
                    "topology": "community",
                    "latency": "community",
                    "providers": 4,
                    "series": "topo",
                },
            ),
        )
        assert run_sweep(sweep, workers=3).records == run_sweep(sweep).records

    def test_workers_one_equals_sequential(self):
        sweep = SweepSpec(base=_spec({"users": 5, "providers": 3}), axes=(("seed", (0, 1)),))
        assert run_sweep(sweep, workers=1).records == run_sweep(sweep).records

    def test_invalid_worker_count_rejected(self):
        sweep = SweepSpec(base=_spec({"users": 4, "providers": 3}))
        with pytest.raises(SpecError, match=r"workers"):
            run_sweep(sweep, workers=0)

    def test_worker_error_propagates(self):
        # 'auction_run' rejects executor subsetting only at run time, so the
        # failure happens inside the worker and must cross the process
        # boundary as the original path-precise SpecError.
        sweep = SweepSpec(
            base=_spec({"users": 4, "providers": 3}),
            points=({}, {"runner": "auction_run", "executors": 2}),
        )
        with pytest.raises(SpecError, match=r"executors"):
            run_sweep(sweep, workers=2)

    def test_spec_error_pickles_losslessly(self):
        error = SpecError("config.k", "needs a bigger quorum")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.path == "config.k"
        assert clone.message == "needs a bigger quorum"
        assert str(clone) == str(error)


class TestChunking:
    def test_rounds_of_one_point_stay_in_one_chunk(self):
        specs = [_spec({"users": 4 + i, "providers": 3, "rounds": 3}) for i in range(4)]
        tasks = [(i, spec, [0, 1, 2]) for i, spec in enumerate(specs)]
        chunks = chunk_tasks(tasks, workers=8)
        seen = [index for chunk in chunks for index, _payload, _instances in chunk]
        assert sorted(seen) == [0, 1, 2, 3]  # each grid point appears exactly once
        for chunk in chunks:
            for _index, _payload, instances in chunk:
                assert instances == [0, 1, 2]

    def test_single_configuration_grid_still_parallelises(self):
        # Figure-4 shape: one mechanism/workload config for the whole grid
        # would be one cache-key chunk — it must split so workers have work.
        spec = _spec({"users": 6, "providers": 3})
        tasks = [(i, spec, [0]) for i in range(6)]
        assert len(chunk_tasks(tasks, workers=3)) >= 3

    def test_distinct_configurations_group_by_amortisation_key(self):
        a = _spec({"users": 6, "providers": 3, "seed": 0})
        b = _spec({"users": 6, "providers": 3, "seed": 1})
        assert amortisation_key(a) != amortisation_key(b)
        assert amortisation_key(a) == amortisation_key(_spec({"users": 6, "providers": 3, "seed": 0}))

    def test_fully_journaled_points_produce_no_chunks(self):
        tasks = [(0, _spec({"users": 4, "providers": 3}), [])]
        assert chunk_tasks(tasks, workers=4) == []


class TestLatencyOverrideConflict:
    def test_latency_axis_with_override_raises(self):
        from repro.net.latency import ConstantLatencyModel

        sweep = SweepSpec(
            base=_spec({"users": 4, "providers": 3}),
            axes=(("latency.seconds", (0.001, 0.002)),),
        )
        with pytest.raises(SpecError, match=r"axes\.latency\.seconds"):
            run_sweep(sweep, latency_model=ConstantLatencyModel(0.005))

    def test_latency_point_with_override_raises(self):
        from repro.net.latency import ConstantLatencyModel

        sweep = SweepSpec(
            base=_spec({"users": 4, "providers": 3}),
            points=({}, {"latency": "zero"}),
        )
        with pytest.raises(SpecError, match=r"points\[1\]\.latency"):
            run_sweep(sweep, latency_model=ConstantLatencyModel(0.005))

    def test_override_without_latency_variation_is_honoured(self):
        from repro.net.latency import ConstantLatencyModel

        sweep = SweepSpec(base=_spec({"users": 4, "providers": 3}), axes=(("seed", (0, 1)),))
        slow = run_sweep(sweep, latency_model=ConstantLatencyModel(0.5))
        fast = run_sweep(sweep, latency_model=ConstantLatencyModel(0.0001))
        assert all(s.elapsed_seconds > f.elapsed_seconds
                   for s, f in zip(slow.records, fast.records))


class TestLatencyCache:
    def test_latency_model_built_once_for_all_rounds(self, monkeypatch):
        import repro.scenarios.sweep as sweep_module

        calls = []
        original = sweep_module.build_latency_model

        def counting(spec, topology=None):
            calls.append(spec.latency.kind)
            return original(spec, topology)

        monkeypatch.setattr(sweep_module, "build_latency_model", counting)
        sweep = SweepSpec(
            base=_spec({"users": 5, "providers": 3, "rounds": 3}),
            points=({}, {"users": 6}),
        )
        result = run_sweep(sweep)
        assert len(result.records) == 6
        # One build serves every round of every point with this latency config.
        assert calls == ["constant"]

    def test_same_model_object_serves_all_rounds_of_a_point(self):
        spec = _spec({"users": 5, "providers": 3, "rounds": 3})
        cache = ComponentCache()
        first = cache.latency(spec)
        assert cache.latency(spec) is first
        assert cache.latency(_spec({"users": 6, "providers": 3})) is first  # same config

    def test_community_latency_keyed_by_topology(self):
        base = {
            "users": 8,
            "providers": 4,
            "topology": "community",
            "latency": "community",
        }
        cache = ComponentCache()
        spec_a = _spec(base)
        spec_b = _spec({**base, "seed": 1})  # different topology generation
        model_a = cache.latency(spec_a, cache.topology(spec_a))
        model_b = cache.latency(spec_b, cache.topology(spec_b))
        assert model_a is not model_b
        assert cache.latency(spec_a, cache.topology(spec_a)) is model_a


class TestCanonicalKeys:
    def test_nested_param_order_is_canonicalised(self):
        a = ComponentSpec("custom", {"opts": {"a": 1, "b": [1, 2]}, "z": 3})
        b = ComponentSpec("custom", {"z": 3, "opts": {"b": [1, 2], "a": 1}})
        assert _component_key(a) == _component_key(b)

    def test_different_values_still_miss(self):
        a = ComponentSpec("custom", {"opts": {"a": 1}})
        b = ComponentSpec("custom", {"opts": {"a": 2}})
        assert _component_key(a) != _component_key(b)

    def test_numeric_types_are_not_conflated(self):
        assert _component_key(ComponentSpec("k", {"flag": True})) != _component_key(
            ComponentSpec("k", {"flag": 1})
        )
        assert _component_key(ComponentSpec("k", {"x": 1})) != _component_key(
            ComponentSpec("k", {"x": 1.0})
        )

    def test_mapping_key_types_are_not_conflated(self):
        # Programmatic specs may use non-string nested keys: {2: x} and
        # {"2": x} would reach the factory as different params, so they must
        # not alias to one cached component.
        assert _component_key(ComponentSpec("k", {"w": {2: 0.5}})) != _component_key(
            ComponentSpec("k", {"w": {"2": 0.5}})
        )
        assert _component_key(ComponentSpec("k", {"w": {2: 0.5, "a": 1}})) == _component_key(
            ComponentSpec("k", {"w": {"a": 1, 2: 0.5}})
        )

    def test_nested_param_order_hits_the_component_cache(self):
        from repro.community.workload import DoubleAuctionWorkload

        created = []

        def factory(seed=0, profile=None):
            created.append(profile)
            return DoubleAuctionWorkload(seed=seed)

        WORKLOADS.register("profiled", factory)
        try:
            cache = ComponentCache()
            spec_a = _spec(
                {"users": 4, "providers": 3,
                 "workload": {"kind": "profiled", "profile": {"a": 1, "b": [2]}}}
            )
            spec_b = _spec(
                {"users": 4, "providers": 3,
                 "workload": {"kind": "profiled", "profile": {"b": [2], "a": 1}}}
            )
            # Insertion order of nested params must not silently rebuild the
            # component (and, for mechanisms, drop the solve memo with it).
            assert cache.workload(spec_a) is cache.workload(spec_b)
            assert len(created) == 1
        finally:
            WORKLOADS.unregister("profiled")


_VECTORIZED = {
    "mechanism": {"kind": "standard", "epsilon": 0.5},
    "engine": "vectorized",
    "users": 8,
    "providers": 3,
}


class TestResourceLifecycle:
    def test_simulation_close_shuts_pivot_pool(self):
        sim = Simulation(_spec(_VECTORIZED))
        record = sim.run()
        assert not record.aborted
        mechanism = sim.mechanism
        assert mechanism._executor is not None  # the run created the pivot pool
        sim.close()
        assert mechanism._executor is None
        sim.close()  # idempotent

    def test_context_manager_exit_shuts_pivot_pool(self):
        with Simulation(_spec(_VECTORIZED)) as sim:
            sim.run()
            mechanism = sim.mechanism
            assert mechanism._executor is not None
        assert mechanism._executor is None

    def test_component_cache_close_shuts_vectorized_pool(self):
        cache = ComponentCache()
        mechanism = cache.mechanism(_spec(_VECTORIZED))
        assert mechanism.pivot_executor is not None
        assert mechanism._executor is not None
        cache.close()
        assert mechanism._executor is None
        cache.close()  # idempotent

    def test_chunk_executor_closes_cache_when_point_raises(self, monkeypatch):
        closed = []
        original_close = ComponentCache.close

        def spying_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(ComponentCache, "close", spying_close)
        good = spec_to_dict(_spec(_VECTORIZED))
        bad = spec_to_dict(
            _spec({"users": 4, "providers": 3, "runner": "auction_run", "executors": 2})
        )
        with pytest.raises(ChunkExecutionError) as excinfo:
            execute_chunk([(0, good, [0]), (1, bad, [0])])
        # The failure wrapper preserves the original diagnostics and the
        # rounds completed before the failure (the parent journals those).
        assert "executors" in excinfo.value.traceback
        assert [(i, inst) for i, inst, _ in excinfo.value.partial_results] == [(0, 0)]
        assert [(i, inst) for i, _p, inst in excinfo.value.remaining_items] == [(1, [0])]
        # The worker body's finally closed its cache despite the mid-chunk error.
        assert len(closed) == 1

    def test_sequential_sweep_closes_mechanisms_on_error(self, monkeypatch):
        closed = []
        original_close = ComponentCache.close

        def spying_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(ComponentCache, "close", spying_close)
        sweep = SweepSpec(
            base=_spec({"users": 4, "providers": 3}),
            points=({}, {"runner": "auction_run", "executors": 2}),
        )
        with pytest.raises(SpecError, match=r"executors"):
            run_sweep(sweep)
        assert len(closed) == 1
