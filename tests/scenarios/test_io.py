"""Tests for spec file IO: JSON/TOML round-trips and precise error messages."""

import pytest

from repro.scenarios.io import (
    dump_spec,
    dump_sweep,
    dumps_toml,
    load_any,
    load_spec,
    load_sweep,
)
from repro.scenarios.spec import ScenarioSpec, SpecError, SweepSpec, spec_from_dict


def _rich_spec():
    return spec_from_dict(
        {
            "name": "rich",
            "mechanism": {"kind": "standard", "epsilon": 0.5},
            "engine": "reference",
            "workload": {"kind": "vr_sessions", "session_fraction": 0.25},
            "users": 18,
            "providers": 5,
            "runner": "auction_run",
            "config": {"k": 1},
            "latency": {"kind": "uniform", "low": 0.001, "high": 0.002},
            "bidders": [{"kind": "scaling", "indices": [0], "factor": 2.0}],
            "seed": 4,
            "measure_compute": False,
        }
    )


class TestFileRoundTrips:
    @pytest.mark.parametrize("extension", ["json", "toml"])
    def test_spec_round_trip(self, tmp_path, extension):
        spec = _rich_spec()
        path = tmp_path / f"spec.{extension}"
        dump_spec(spec, path)
        assert load_spec(path) == spec

    @pytest.mark.parametrize("extension", ["json", "toml"])
    def test_sweep_round_trip(self, tmp_path, extension):
        sweep = SweepSpec(
            base=_rich_spec(),
            name="grid",
            points=({"users": 6, "series": "small"}, {"users": 12, "config.k": 2}),
        )
        path = tmp_path / f"sweep.{extension}"
        dump_sweep(sweep, path)
        assert load_sweep(path) == sweep

    @pytest.mark.parametrize("extension", ["json", "toml"])
    def test_load_any_distinguishes_shapes(self, tmp_path, extension):
        spec_path = tmp_path / f"spec.{extension}"
        sweep_path = tmp_path / f"sweep.{extension}"
        dump_spec(_rich_spec(), spec_path)
        dump_sweep(SweepSpec(base=ScenarioSpec(), axes=(("users", (2, 3)),)), sweep_path)
        assert isinstance(load_any(spec_path), ScenarioSpec)
        assert isinstance(load_any(sweep_path), SweepSpec)


class TestErrors:
    def test_missing_file_names_path(self, tmp_path):
        with pytest.raises(SpecError, match=r"nowhere\.toml: spec file not found"):
            load_spec(tmp_path / "nowhere.toml")

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("users: 3\n")
        with pytest.raises(SpecError, match=r"\.json or \.toml"):
            load_spec(path)

    def test_invalid_toml_syntax(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("users = [1, \n")
        with pytest.raises(SpecError, match=r"broken\.toml: invalid TOML"):
            load_spec(path)

    def test_invalid_json_syntax(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{\"users\": ")
        with pytest.raises(SpecError, match=r"broken\.json: invalid JSON"):
            load_spec(path)

    def test_semantic_error_carries_file_and_path(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('runner = "quantum"\n')
        with pytest.raises(SpecError, match=r"bad\.toml: runner: unknown runner"):
            load_spec(path)

    def test_unreadable_path_becomes_spec_error(self, tmp_path):
        directory = tmp_path / "dir.toml"
        directory.mkdir()
        with pytest.raises(SpecError, match=r"dir\.toml: cannot read spec file"):
            load_spec(directory)

    def test_non_table_top_level(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(SpecError, match=r"expected a table at the top level"):
            load_spec(path)


class TestTomlEmitter:
    def test_quotes_dotted_keys(self):
        text = dumps_toml({"points": [{"config.k": 2}]})
        assert '"config.k" = 2' in text

    def test_preserves_int_float_distinction(self):
        import tomllib

        data = tomllib.loads(dumps_toml({"seed": 1, "deadline": 1.0}))
        assert isinstance(data["seed"], int)
        assert isinstance(data["deadline"], float)

    def test_rejects_non_finite_floats(self):
        with pytest.raises(SpecError):
            dumps_toml({"x": float("nan")})

    def test_rejects_unserializable_values(self):
        with pytest.raises(SpecError):
            dumps_toml({"x": object()})
