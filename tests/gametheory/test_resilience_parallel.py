"""Differential proof: the resilience-audit subsystem matches `check_k_resilience`.

Two locks, in the style of ``tests/net/test_event_queue_differential.py``:

* **library vs hand-wired** — for every (mechanism, schedule, seed) the
  declarative audit's records carry exactly the member gains and verdict flags
  that a hand-wired :func:`repro.gametheory.resilience.check_k_resilience`
  sweep computes over the same coalitions and deviations (exact float
  equality, not approx — the audit must not change a single bit of the
  science it promotes);
* **parallel vs sequential** — ``run_resilience(workers=2)`` returns records
  bit-identical to the sequential path, in the same grid order, with
  ``measure_compute=false`` meaning *full* record equality (the virtual clock
  is deterministic).  Chunking (including baseline-group splits) never changes
  a verdict.

Coverage: 2 mechanisms x 2 schedulers x 3 seeds, all in one audit grid per
mechanism so the honest-baseline memoisation is exercised across groups.
"""

import functools

import pytest

from repro.adversary.coalition import Coalition
from repro.adversary.provider_behaviors import (
    EquivocatingProviderNode,
    OutputTamperingProviderNode,
)
from repro.community.workload import default_provider_ids
from repro.core.framework import DistributedAuctioneer
from repro.gametheory.resilience import check_k_resilience
from repro.scenarios import ScenarioSpec
from repro.scenarios.registry import SCHEDULERS
from repro.scenarios.resilience import ResilienceSpec, run_resilience
from repro.scenarios.runner import build_latency_model, build_mechanism, build_workload
from repro.scenarios.spec import ComponentSpec, spec_with_overrides

MECHANISM_KINDS = ("double", "standard")
SCHEDULE_KINDS = ("fair", "round_robin")
SEEDS = (0, 1, 2)
NUM_USERS = 8
NUM_PROVIDERS = 4

#: The deviation library of the differential: (registry form, hand-wired factory).
ADVERSARY_PAIRS = (
    ("equivocate", EquivocatingProviderNode),
    (
        {"kind": "tamper_output", "bonus": 5.0},
        functools.partial(OutputTamperingProviderNode, bonus=5.0),
    ),
)


@pytest.fixture(autouse=True)
def _many_cpus(monkeypatch):
    # Pin a big host so the worker policy never degrades these pool tests to
    # the sequential path on single-core CI runners.
    monkeypatch.setattr("repro.scenarios.dispatch.available_cpus", lambda: 64)


def _base_spec(mechanism: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"differential-{mechanism}",
        mechanism=mechanism,
        users=NUM_USERS,
        providers=NUM_PROVIDERS,
        config={"k": 1},
        latency="constant",
        seed=SEEDS[0],
        measure_compute=False,
    )


def _audit_spec(mechanism: str) -> ResilienceSpec:
    return ResilienceSpec(
        name=f"differential-{mechanism}",
        base=_base_spec(mechanism),
        k=1,
        adversaries=tuple(registry_form for registry_form, _ in ADVERSARY_PAIRS),
        schedules=SCHEDULE_KINDS,
        seeds=SEEDS,
    )


def _reference_report(mechanism: str, schedule: str, seed: int):
    """Hand-wired check_k_resilience over the same grid slice, ids and order."""
    scenario = spec_with_overrides(_base_spec(mechanism), {"seed": seed})
    workload = build_workload(scenario)
    provider_ids = default_provider_ids(NUM_PROVIDERS)
    bids = workload.generate(NUM_USERS, NUM_PROVIDERS, provider_ids=provider_ids, instance=0)
    auctioneer = DistributedAuctioneer(
        build_mechanism(scenario),
        providers=provider_ids,
        config=scenario.config.to_config(),
        latency_model=build_latency_model(scenario),
        scheduler=SCHEDULERS.create(ComponentSpec(schedule), "schedules"),
        seed=seed,
        measure_compute=False,
    )
    coalitions = [
        (f"{provider}:{label}", Coalition.of([provider], factory))
        for provider in provider_ids
        for label, factory in (
            ("equivocate", EquivocatingProviderNode),
            ("tamper_output", functools.partial(OutputTamperingProviderNode, bonus=5.0)),
        )
    ]
    return check_k_resilience(auctioneer, bids, coalitions)


@pytest.mark.parametrize("mechanism", MECHANISM_KINDS)
class TestAuditMatchesCheckKResilience:
    def test_gains_and_verdicts_bit_identical(self, mechanism):
        result = run_resilience(_audit_spec(mechanism))
        # Index audit records by (schedule, seed, coalition, adversary).
        by_cell = {
            (r.schedule, r.seed, r.coalition, r.adversary): r for r in result.records
        }
        assert len(by_cell) == len(result.records)  # grid cells are unique
        checked = 0
        for schedule in SCHEDULE_KINDS:
            for seed in SEEDS:
                reference = _reference_report(mechanism, schedule, seed)
                for outcome in reference.outcomes:
                    provider, adversary = outcome.label.split(":")
                    record = by_cell[(schedule, seed, (provider,), adversary)]
                    # Exact equality: the audit computes the same floats.
                    assert record.member_gains == outcome.member_gains
                    assert record.profitable == outcome.profitable
                    assert record.altered_result == outcome.altered_result
                    assert record.honest_aborted == outcome.honest_outcome.aborted
                    assert record.deviating_aborted == outcome.deviating_outcome.aborted
                    checked += 1
        # 2 schedules x 3 seeds x 4 coalitions x 2 deviations per mechanism.
        assert checked == len(SCHEDULE_KINDS) * len(SEEDS) * NUM_PROVIDERS * len(
            ADVERSARY_PAIRS
        )

    def test_parallel_bit_identical_to_sequential(self, mechanism):
        spec = _audit_spec(mechanism)
        sequential = run_resilience(spec)
        parallel = run_resilience(spec, workers=2)
        # measure_compute=false: full record equality, elapsed fields included.
        assert parallel.records == sequential.records
        assert parallel.executed_cells == sequential.executed_cells
        assert [r.to_dict() for r in parallel.records] == [
            r.to_dict() for r in sequential.records
        ]


class TestChunkingInvariance:
    def test_worker_counts_agree(self):
        """More workers than chunks / groups split across chunks: same records."""
        spec = _audit_spec("double")
        baseline = run_resilience(spec)
        for workers in (2, 3, 5):
            assert run_resilience(spec, workers=workers).records == baseline.records

    def test_chunks_cover_cells_exactly_once(self):
        from repro.scenarios.resilience_parallel import chunk_cells

        spec = _audit_spec("double")
        seeds = spec.effective_seeds()
        cells = [
            (point, instance)
            for point in range(len(spec.cells()))
            for instance in range(len(seeds))
        ]
        chunks = chunk_cells(spec, list(cells), workers=3)
        flattened = [cell for chunk in chunks for cell in chunk]
        assert sorted(flattened) == sorted(cells)
        assert len(flattened) == len(set(flattened))
