"""Tests for the game-theoretic analysis harness (truthfulness, utilities, resilience)."""

import functools

import pytest

from repro.adversary.coalition import Coalition
from repro.adversary.provider_behaviors import (
    EquivocatingProviderNode,
    OutputTamperingProviderNode,
)
from repro.auctions.base import Allocation, AuctionResult, BidVector, Payments, ProviderAsk, UserBid
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.greedy import GreedyStandardAuction
from repro.auctions.vcg import ExactVCGAuction
from repro.common import ABORT
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer
from repro.core.outcome import Outcome
from repro.gametheory.resilience import check_k_resilience
from repro.gametheory.truthfulness import check_truthfulness
from repro.gametheory.utility import outcome_provider_utility, outcome_user_utility


class TestOutcomeUtilities:
    def _bids(self):
        return BidVector(
            (UserBid("u0", 2.0, 1.0),),
            (ProviderAsk("p0", 0.5, 2.0),),
        )

    def _result(self):
        return AuctionResult(
            Allocation.from_dict({("u0", "p0"): 1.0}),
            Payments.from_dicts({"u0": 1.0}, {"p0": 1.0}),
        )

    def test_abort_gives_zero_utility(self):
        bids = self._bids()
        assert outcome_user_utility(bids, ABORT, "u0") == 0.0
        assert outcome_provider_utility(bids, ABORT, "p0") == 0.0
        assert outcome_user_utility(bids, None, "u0") == 0.0

    def test_valid_outcome_utilities(self):
        bids = self._bids()
        outcome = Outcome.from_provider_outputs({"p0": self._result()})
        assert outcome_user_utility(bids, outcome, "u0") == pytest.approx(1.0)
        assert outcome_provider_utility(bids, outcome, "p0") == pytest.approx(0.5)

    def test_plain_auction_result_accepted(self):
        bids = self._bids()
        assert outcome_user_utility(bids, self._result(), "u0") == pytest.approx(1.0)


class TestTruthfulness:
    def test_exact_vcg_is_truthful(self):
        for seed in range(4):
            bids = StandardAuctionWorkload(seed=seed).generate(6, 2)
            report = check_truthfulness(ExactVCGAuction(), bids, seed=seed)
            assert report.is_truthful(), report.violations

    def test_greedy_pay_your_bid_is_not_truthful(self):
        violations_found = 0
        for seed in range(6):
            bids = StandardAuctionWorkload(seed=seed).generate(6, 2)
            report = check_truthfulness(GreedyStandardAuction(), bids, seed=seed)
            violations_found += len(report.violations)
        assert violations_found > 0

    def test_double_auction_user_truthfulness(self):
        for seed in range(6):
            bids = DoubleAuctionWorkload(seed=seed).generate(8, 3)
            report = check_truthfulness(DoubleAuction(), bids, seed=seed)
            assert report.is_truthful(tolerance=1e-6), report.violations

    def test_report_counts_checks(self):
        bids = StandardAuctionWorkload(seed=0).generate(4, 2)
        report = check_truthfulness(ExactVCGAuction(), bids, factors=(0.5, 2.0))
        assert report.checked == 4 * 2


class TestResilience:
    def _setup(self):
        providers = [f"p{i}" for i in range(4)]
        bids = DoubleAuctionWorkload(seed=1).generate(8, len(providers), provider_ids=providers)
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=providers, config=FrameworkConfig(k=1)
        )
        return auctioneer, bids

    def test_deviation_sweep_finds_no_profitable_deviation(self):
        auctioneer, bids = self._setup()
        coalitions = [
            ("equivocate", Coalition.of(["p0"], EquivocatingProviderNode)),
            (
                "tamper-output",
                Coalition.of(["p1"], functools.partial(OutputTamperingProviderNode, bonus=5.0)),
            ),
        ]
        report = check_k_resilience(auctioneer, bids, coalitions)
        assert report.is_resilient(), (
            [o.label for o in report.profitable_deviations],
            [o.label for o in report.influence_violations],
        )

    def test_report_structure(self):
        auctioneer, bids = self._setup()
        coalitions = [("equivocate", Coalition.of(["p0"], EquivocatingProviderNode))]
        report = check_k_resilience(auctioneer, bids, coalitions)
        assert len(report.outcomes) == 1
        outcome = report.outcomes[0]
        assert outcome.label == "equivocate"
        assert set(outcome.member_gains) == {"p0"}
        # The deviation forced ⊥, so the deviator's gain is non-positive.
        assert outcome.member_gains["p0"] <= 1e-9
