"""Tests for commit/reveal leader election."""

from collections import Counter

from tests.conftest import run_block_network

from repro.consensus.leader_election import LeaderElectionBlock
from repro.net.scheduler import RandomScheduler


class TestLeaderElection:
    def test_all_providers_elect_the_same_leader(self):
        providers = ["p0", "p1", "p2", "p3", "p4"]
        outputs = run_block_network(providers, lambda nid: LeaderElectionBlock("le"))
        assert len(set(outputs.values())) == 1
        assert outputs["p0"] in providers

    def test_leader_is_roughly_uniform_over_seeds(self):
        providers = ["p0", "p1", "p2"]
        counts = Counter()
        for seed in range(30):
            outputs = run_block_network(
                providers, lambda nid: LeaderElectionBlock("le"), seed=seed
            )
            counts[outputs["p0"]] += 1
        # Every provider should be elected at least once over 30 random seeds.
        assert set(counts) == set(providers)

    def test_agreement_under_random_schedule(self):
        providers = ["p0", "p1", "p2", "p3"]
        for seed in range(5):
            outputs = run_block_network(
                providers,
                lambda nid: LeaderElectionBlock("le"),
                scheduler=RandomScheduler(),
                seed=seed,
            )
            assert len(set(outputs.values())) == 1
