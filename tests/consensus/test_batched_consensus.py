"""Tests for the batched (multi-instance) consensus block."""

import pytest

from tests.conftest import run_block_network

from repro.common import ABORT
from repro.consensus.multi_consensus import BatchedConsensusBlock
from repro.consensus.rational_consensus import RationalConsensusBlock
from repro.net.scheduler import RandomScheduler


class TestBatchedAgreement:
    def test_identical_batches_agree(self):
        inputs = {"x": 1, "y": "two", "z": None}
        outputs = run_block_network(
            ["p0", "p1", "p2"], lambda nid: BatchedConsensusBlock("b", dict(inputs))
        )
        assert all(v == inputs for v in outputs.values())

    def test_per_label_majority(self):
        def factory(nid):
            my = {"x": 1 if nid != "p2" else 0, "y": "a" if nid == "p0" else "b"}
            return BatchedConsensusBlock("b", my, labels=["x", "y"])

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        assert all(v == {"x": 1, "y": "b"} for v in outputs.values())

    def test_all_providers_get_identical_output(self):
        def factory(nid):
            return BatchedConsensusBlock("b", {"l1": nid, "l2": 5}, labels=["l1", "l2"])

        outputs = run_block_network(["p0", "p1", "p2", "p3"], factory, scheduler=RandomScheduler())
        values = list(outputs.values())
        assert all(v == values[0] for v in values)
        assert values[0]["l2"] == 5

    def test_missing_label_aborts_locally_and_denies_progress(self):
        def factory(nid):
            labels = ["x", "y"]
            my = {"x": 1, "y": 2} if nid != "p0" else {"x": 1}
            return BatchedConsensusBlock("b", my, labels=labels)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        # p0's own batch is invalid: it aborts immediately and stays silent, so the
        # correct providers never decide a value (which the framework maps to ⊥).
        assert outputs["p0"] == ABORT
        assert outputs["p1"] in (None, ABORT)
        assert outputs["p2"] in (None, ABORT)

    def test_malformed_remote_batch_is_detected(self):
        def factory(nid):
            labels = ["x", "y"]
            if nid == "p0":
                # The deviant declares only label "x" as its universe but still
                # participates, so its malformed batch reaches the correct providers.
                return BatchedConsensusBlock("b", {"x": 1}, labels=["x"])
            return BatchedConsensusBlock("b", {"x": 1, "y": 2}, labels=labels)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        assert outputs["p1"] == ABORT
        assert outputs["p2"] == ABORT

    def test_validator_rejects_invalid_remote_values(self):
        def factory(nid):
            my = {"x": -1 if nid == "p1" else 1}
            # Only the correct providers validate; the deviant broadcasts its
            # invalid value and is caught.
            validator = None if nid == "p1" else (lambda v: v > 0)
            return BatchedConsensusBlock("b", my, labels=["x"], validator=validator)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        assert outputs["p0"] == ABORT
        assert outputs["p2"] == ABORT


class TestConsistencyWithPerInstanceConsensus:
    def test_batched_matches_per_label_decisions(self):
        """The batched mode must decide exactly what per-label instances decide."""
        per_provider_inputs = {
            "p0": {"a": 1, "b": "x", "c": 10},
            "p1": {"a": 2, "b": "x", "c": 10},
            "p2": {"a": 2, "b": "y", "c": 10},
        }
        providers = list(per_provider_inputs)

        batched = run_block_network(
            providers,
            lambda nid: BatchedConsensusBlock(
                "b", dict(per_provider_inputs[nid]), labels=["a", "b", "c"]
            ),
        )

        per_label = {}
        for label in ["a", "b", "c"]:
            outputs = run_block_network(
                providers,
                lambda nid, label=label: RationalConsensusBlock(
                    label, per_provider_inputs[nid][label]
                ),
            )
            per_label[label] = outputs["p0"]
            assert len(set(outputs.values())) == 1

        assert batched["p0"] == per_label
        assert batched["p1"] == per_label
        assert batched["p2"] == per_label
