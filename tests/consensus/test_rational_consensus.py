"""Tests for the rational consensus building block."""

import pytest

from tests.conftest import run_block_network

from repro.common import ABORT
from repro.consensus.rational_consensus import (
    BinaryConsensusBlock,
    RationalConsensusBlock,
    majority_decision,
)
from repro.net.scheduler import AdversarialScheduler, RandomScheduler


class TestMajorityDecision:
    def test_majority_wins(self):
        values = {"a": 1, "b": 1, "c": 0}
        assert majority_decision(values) == 1

    def test_tie_broken_by_lowest_provider_id(self):
        values = {"b": 1, "a": 0}
        assert majority_decision(values) == 0

    def test_single_value(self):
        assert majority_decision({"x": "v"}) == "v"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_decision({})

    def test_unhashable_values_supported(self):
        values = {"a": [1, 2], "b": [1, 2], "c": [3]}
        assert majority_decision(values) == [1, 2]


class TestAgreement:
    def test_same_inputs_agree_on_that_value(self):
        outputs = run_block_network(
            ["p0", "p1", "p2"], lambda nid: BinaryConsensusBlock("c", 1)
        )
        assert all(v == 1 for v in outputs.values())

    def test_divergent_inputs_agree_on_some_input(self):
        inputs = {"p0": 0, "p1": 1, "p2": 1}
        outputs = run_block_network(
            list(inputs), lambda nid: BinaryConsensusBlock("c", inputs[nid])
        )
        decided = set(outputs.values())
        assert len(decided) == 1
        assert decided.pop() in {0, 1}

    def test_decision_is_majority_input(self):
        inputs = {"p0": 0, "p1": 1, "p2": 1, "p3": 1, "p4": 0}
        outputs = run_block_network(
            list(inputs), lambda nid: BinaryConsensusBlock("c", inputs[nid])
        )
        assert all(v == 1 for v in outputs.values())

    def test_arbitrary_value_domain(self):
        inputs = {"p0": "alpha", "p1": "alpha", "p2": "beta"}
        outputs = run_block_network(
            list(inputs), lambda nid: RationalConsensusBlock("c", inputs[nid])
        )
        assert all(v == "alpha" for v in outputs.values())

    def test_agreement_under_random_schedule(self):
        for seed in range(5):
            inputs = {"p0": 0, "p1": 1, "p2": 0, "p3": 1}
            outputs = run_block_network(
                list(inputs),
                lambda nid: BinaryConsensusBlock("c", inputs[nid]),
                scheduler=RandomScheduler(),
                seed=seed,
            )
            assert len(set(outputs.values())) == 1

    def test_agreement_under_adversarial_schedule(self):
        inputs = {"p0": 0, "p1": 1, "p2": 1}
        outputs = run_block_network(
            list(inputs),
            lambda nid: BinaryConsensusBlock("c", inputs[nid]),
            scheduler=AdversarialScheduler(targets=frozenset({"p0"})),
        )
        assert len(set(outputs.values())) == 1
        assert ABORT not in outputs.values()


class TestValidationAndAborts:
    def test_invalid_own_input_aborts_locally(self):
        outputs = run_block_network(
            ["p0", "p1"], lambda nid: BinaryConsensusBlock("c", 7 if nid == "p0" else 1)
        )
        assert outputs["p0"] == ABORT

    def test_invalid_own_input_stalls_correct_providers(self):
        """A provider that aborts locally and stays silent denies progress, not safety.

        The correct providers never decide a value (the framework maps this to ⊥);
        they must not decide anything else.
        """
        outputs = run_block_network(
            ["p0", "p1", "p2"],
            lambda nid: RationalConsensusBlock(
                "c", "bad" if nid == "p0" else "ok", validator=lambda v: v == "ok"
            ),
        )
        assert outputs["p0"] == ABORT
        assert outputs["p1"] in (None, ABORT)
        assert outputs["p2"] in (None, ABORT)

    def test_invalid_remote_input_is_detected(self):
        """A deviant that actually broadcasts an invalid value is caught by the others."""
        outputs = run_block_network(
            ["p0", "p1", "p2"],
            lambda nid: RationalConsensusBlock(
                "c",
                "bad" if nid == "p0" else "ok",
                # The deviant skips validation of its own input; correct providers
                # validate what they receive and output ⊥.
                validator=None if nid == "p0" else (lambda v: v == "ok"),
            ),
        )
        assert outputs["p1"] == ABORT
        assert outputs["p2"] == ABORT
