"""Tests for the hash commitment scheme."""

import random

import pytest

from repro.consensus.commitment import Commitment, CommitmentError, CommitmentScheme


@pytest.fixture
def rng():
    return random.Random(42)


class TestCommitmentScheme:
    def test_commit_and_verify(self, rng):
        commitment, nonce = CommitmentScheme.commit(0.123, rng)
        assert commitment.verify(0.123, nonce)

    def test_wrong_value_fails(self, rng):
        commitment, nonce = CommitmentScheme.commit(0.123, rng)
        assert not commitment.verify(0.124, nonce)

    def test_wrong_nonce_fails(self, rng):
        commitment, nonce = CommitmentScheme.commit(0.5, rng)
        assert not commitment.verify(0.5, b"0" * len(nonce))

    def test_open_raises_on_mismatch(self, rng):
        commitment, nonce = CommitmentScheme.commit("value", rng)
        with pytest.raises(CommitmentError):
            CommitmentScheme.open(commitment, "other", nonce)
        assert CommitmentScheme.open(commitment, "value", nonce) == "value"

    def test_commitments_are_hiding_via_nonce(self, rng):
        first, _ = CommitmentScheme.commit(1, rng)
        second, _ = CommitmentScheme.commit(1, rng)
        # Same value, different nonce: digests differ, so observers learn nothing.
        assert first.digest != second.digest

    def test_structured_values_supported(self, rng):
        value = {"a": [1, 2], "b": (3.0, "x")}
        commitment, nonce = CommitmentScheme.commit(value, rng)
        assert commitment.verify({"b": (3.0, "x"), "a": [1, 2]}, nonce)

    def test_commitment_is_plain_data(self, rng):
        commitment, _ = CommitmentScheme.commit(7, rng)
        assert isinstance(commitment.digest, str)
        assert Commitment(commitment.digest) == commitment
