"""Tests for the bid ⇄ bit-stream encoding."""

import pytest

from repro.consensus.bit_encoding import (
    BID_BIT_LENGTH,
    bid_to_bits,
    bits_to_bid,
    bits_to_value,
    value_to_bits,
)


class TestFixedWidthBidEncoding:
    def test_round_trip_exact(self):
        for unit_value, demand in [(0.75, 0.5), (1.25, 1.0), (0.0, 1e-9), (123.456, 7.89)]:
            bits = bid_to_bits(unit_value, demand)
            assert len(bits) == BID_BIT_LENGTH
            assert bits_to_bid(bits) == (unit_value, demand)

    def test_bits_are_binary(self):
        assert set(bid_to_bits(1.0, 0.3)) <= {0, 1}

    def test_different_bids_give_different_streams(self):
        assert bid_to_bits(1.0, 0.5) != bid_to_bits(1.0, 0.6)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bid([0, 1, 0])


class TestGenericEncoding:
    def test_round_trip_at_byte_level(self):
        value = {"x": [1, 2, 3], "y": "abc"}
        bits = value_to_bits(value)
        assert bits_to_value(bits) == bits_to_value(value_to_bits(value))

    def test_length_multiple_of_eight(self):
        assert len(value_to_bits("hello")) % 8 == 0

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_value([0, 1, 2, 0, 0, 0, 0, 0])

    def test_non_multiple_of_eight_rejected(self):
        with pytest.raises(ValueError):
            bits_to_value([0, 1, 0])
