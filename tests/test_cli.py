"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.mechanism == "double"
        assert args.users == 50

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.users == [100, 200, 400, 600, 800, 1000]
        assert args.k == [1, 2, 3]

    def test_fig5_arguments(self):
        args = build_parser().parse_args(["fig5", "--users", "10", "20", "--parallelism", "4"])
        assert args.users == [10, 20]
        assert args.parallelism == [4]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_double(self, capsys):
        assert main(["run", "--mechanism", "double", "--users", "12", "--providers", "4"]) == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "agreed (x, p)" in out

    def test_run_standard_parallel(self, capsys):
        code = main(
            [
                "run",
                "--mechanism",
                "standard",
                "--users",
                "6",
                "--providers",
                "4",
                "--parallel",
                "--epsilon",
                "0.5",
            ]
        )
        assert code == 0
        assert "winning users" in capsys.readouterr().out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--users", "10", "--k", "1", "--series"]) == 0
        out = capsys.readouterr().out
        assert "centralised" in out
        assert "distributed k=1" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--users", "6", "--parallelism", "1", "4", "--epsilon", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "p=4" in out
