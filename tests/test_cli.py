"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenarios import dump_spec, dump_sweep, spec_from_dict
from repro.scenarios.spec import SweepSpec


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.mechanism == "double"
        assert args.users == 50

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.users == [100, 200, 400, 600, 800, 1000]
        assert args.k == [1, 2, 3]

    def test_fig5_arguments(self):
        args = build_parser().parse_args(["fig5", "--users", "10", "20", "--parallelism", "4"])
        assert args.users == [10, 20]
        assert args.parallelism == [4]

    def test_lint_subcommand_present(self):
        # The full lint CLI contract lives in tests/analysis/test_lint_cli.py;
        # this only pins that the subcommand stays wired into the front door.
        args = build_parser().parse_args(["lint", "--select", "RPA001"])
        assert args.command == "lint"
        assert args.select == ["RPA001"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_double(self, capsys):
        assert main(["run", "--mechanism", "double", "--users", "12", "--providers", "4"]) == 0
        out = capsys.readouterr().out
        assert "outcome" in out
        assert "agreed (x, p)" in out

    def test_run_standard_parallel(self, capsys):
        code = main(
            [
                "run",
                "--mechanism",
                "standard",
                "--users",
                "6",
                "--providers",
                "4",
                "--parallel",
                "--epsilon",
                "0.5",
            ]
        )
        assert code == 0
        assert "winning users" in capsys.readouterr().out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--users", "10", "--k", "1", "--series"]) == 0
        out = capsys.readouterr().out
        assert "centralised" in out
        assert "distributed k=1" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--users", "6", "--parallelism", "1", "4", "--epsilon", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "p=4" in out

    def test_batch_small(self, capsys):
        assert main(
            ["batch", "--mechanism", "double", "--users", "8", "--providers", "4",
             "--rounds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "rounds          : 2 (0 aborted)" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "--users", "8", "--providers", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mechanism"] == "double-auction-waterfill"
        assert payload["users"] == 8
        assert payload["aborted"] is False


class TestSpecDrivenCommands:
    def _spec(self):
        return spec_from_dict(
            {
                "name": "cli-spec",
                "mechanism": "double",
                "users": 8,
                "providers": 4,
                "latency": "constant",
                "measure_compute": False,
                "seed": 5,
            }
        )

    def test_run_with_spec_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        dump_spec(self._spec(), path)
        assert main(["run", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "agreed (x, p)" in out
        assert "users/providers : 8/4" in out

    def test_flags_override_spec_only_when_explicit(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        dump_spec(self._spec(), path)
        # Parser defaults (users=50) must not stomp the spec's users=8 ...
        assert main(["run", "--spec", str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["users"] == 8
        # ... but an explicit non-default flag wins over the spec.
        assert main(["run", "--spec", str(path), "--users", "6", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["users"] == 6

    def test_set_overrides_beat_flags(self, tmp_path, capsys):
        path = tmp_path / "scenario.toml"
        dump_spec(self._spec(), path)
        assert main(
            ["run", "--spec", str(path), "--users", "6", "--set", "users=4", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["users"] == 4

    def test_batch_with_spec_file_json(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        dump_spec(self._spec(), path)
        assert main(["batch", "--spec", str(path), "--set", "rounds=3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 3
        assert len(payload["records"]) == 3

    def test_sweep_command_runs_grid(self, tmp_path, capsys):
        sweep = SweepSpec(base=self._spec(), name="grid", axes=(("users", (4, 6)),))
        path = tmp_path / "sweep.toml"
        dump_sweep(sweep, path)
        assert main(["sweep", "--spec", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"] == "grid"
        assert [record["users"] for record in payload["records"]] == [4, 6]

    def test_sweep_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_run_given_sweep_file_errors(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        dump_sweep(SweepSpec(base=self._spec()), path)
        assert main(["run", "--spec", str(path)]) == 2
        assert "use 'repro-auction sweep'" in capsys.readouterr().err

    def test_malformed_spec_error_message(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"users": "many"}')
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "users: expected an integer" in err


class TestObservabilityCommands:
    def _run_observed(self, tmp_path, capsys):
        trace = tmp_path / "run.rcol"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["run", "--users", "6", "--providers", "3",
             "--trace", str(trace), "--metrics", str(metrics), "--json"]
        )
        assert code == 0
        return trace, metrics, capsys.readouterr()

    def test_run_trace_and_metrics_flags(self, tmp_path, capsys):
        trace, metrics, captured = self._run_observed(tmp_path, capsys)
        # stdout stays the machine-readable record; artifacts go to stderr.
        assert json.loads(captured.out)["users"] == 6
        assert f"trace {trace}:" in captured.err
        assert "spans" in captured.err
        assert f"metrics: " in captured.err and str(metrics) in captured.err
        snapshot = json.loads(metrics.read_text())
        assert snapshot["kind"] == "metrics-snapshot"
        assert snapshot["instruments"]["rounds"]["value"] == 1

    def test_trace_subcommand_exports_chrome_and_text(self, tmp_path, capsys):
        trace, _metrics, _ = self._run_observed(tmp_path, capsys)
        assert main(["trace", str(trace)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"], "chrome export holds no events"
        assert main(["trace", str(trace), "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace: ")
        assert "round" in out

    def test_trace_missing_journal_is_a_spec_error(self, capsys):
        assert main(["trace", "does-not-exist.rcol"]) == 2
        assert "trace journal not found" in capsys.readouterr().err

    def test_metrics_subcommand_renders_table_and_json(self, tmp_path, capsys):
        _trace, metrics, _ = self._run_observed(tmp_path, capsys)
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "instruments" in out
        assert "net.messages_sent" in out
        assert main(["metrics", str(metrics), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["kind"] == "metrics-snapshot"

    def test_metrics_garbage_file_is_a_spec_error(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("not json")
        assert main(["metrics", str(path)]) == 2
        assert "not a metrics snapshot" in capsys.readouterr().err


class TestBrokenPipe:
    def test_broken_pipe_from_any_command_exits_zero(self, monkeypatch):
        # The guard lives at the entrypoint, so a reader hanging up mid-write
        # is a clean exit for every sub-command — not a traceback.  dup2 is
        # stubbed out here because detaching stdout onto /dev/null for real
        # would take pytest's capture file descriptors with it; the genuine
        # article is exercised end to end by test_piped_to_head_survives.
        import repro.cli as cli

        redirected = []
        monkeypatch.setattr(cli.os, "dup2", lambda *fds: redirected.append(fds))

        def burst(args):
            raise BrokenPipeError

        monkeypatch.setitem(cli._COMMANDS, "run", burst)
        assert main(["run", "--users", "4"]) == 0
        assert len(redirected) == 2  # stdout and stderr both detached

    def test_piped_to_head_survives(self, tmp_path):
        # End to end through a real pipe: the reader closes after one line,
        # the writer must exit 0 with nothing on stderr.
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        script = (
            "import sys; sys.path.insert(0, %r); "
            "from repro.cli import main; "
            "sys.exit(main(['batch', '--users', '6', '--providers', '3', "
            "'--rounds', '2', '--json']))" % src
        )
        result = subprocess.run(
            f"{sys.executable} -c \"{script}\" | head -c 32",
            shell=True,
            capture_output=True,
            text=True,
            executable="/bin/bash",
        )
        assert result.returncode == 0
        assert "Traceback" not in result.stderr
        assert "BrokenPipeError" not in result.stderr
