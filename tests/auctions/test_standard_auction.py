"""Tests for the (1-eps)-style standard auction with VCG payments (§5.2.2)."""

import random

import pytest

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.vcg import ExactVCGAuction
from repro.auctions.welfare import social_welfare, user_utility
from repro.community.workload import StandardAuctionWorkload


@pytest.fixture
def mechanism():
    return StandardAuction(epsilon=0.3)


def random_instance(seed, num_users=10, num_providers=3):
    return StandardAuctionWorkload(seed=seed).generate(num_users, num_providers)


class TestConfiguration:
    def test_restart_count_scales_with_epsilon(self):
        assert StandardAuction(epsilon=0.5).restarts <= StandardAuction(epsilon=0.1).restarts
        assert StandardAuction(epsilon=0.05, max_restarts=100).restarts == 100

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StandardAuction(epsilon=0.0)
        with pytest.raises(ValueError):
            StandardAuction(perturbation=1.5)


class TestAllocation:
    def test_all_or_nothing_single_provider(self, mechanism):
        for seed in range(8):
            bids = random_instance(seed)
            result = mechanism.run(bids, random.Random(seed))
            result.allocation.check_feasible(bids, single_provider=True)

    def test_empty_instances(self, mechanism):
        assert mechanism.run(BidVector((), ())).allocation.is_empty()
        only_users = BidVector((UserBid("u", 1.0, 0.5),), ())
        assert mechanism.run(only_users).allocation.is_empty()

    def test_user_larger_than_all_capacity_loses(self, mechanism):
        bids = BidVector(
            (UserBid("big", 10.0, 5.0), UserBid("small", 1.0, 0.5)),
            (ProviderAsk("p0", 0.0, 1.0),),
        )
        result = mechanism.run(bids)
        assert "big" not in result.allocation.winners()
        assert "small" in result.allocation.winners()

    def test_determinism_given_seed(self, mechanism):
        bids = random_instance(4)
        first = mechanism.run(bids, random.Random(7))
        second = mechanism.run(bids, random.Random(7))
        assert first == second

    def test_welfare_close_to_exact_optimum(self):
        """The approximate allocator reaches a large fraction of the exact optimum."""
        approx = StandardAuction(epsilon=0.1)
        exact = ExactVCGAuction()
        ratios = []
        for seed in range(6):
            bids = random_instance(seed, num_users=8, num_providers=3)
            approx_result = approx.run(bids, random.Random(seed))
            exact_result = exact.run(bids)
            exact_welfare = social_welfare(bids, exact_result.allocation, include_provider_costs=False)
            approx_welfare = social_welfare(bids, approx_result.allocation, include_provider_costs=False)
            if exact_welfare > 0:
                ratios.append(approx_welfare / exact_welfare)
        assert ratios, "expected at least one instance with positive optimum"
        assert min(ratios) >= 0.8
        assert sum(ratios) / len(ratios) >= 0.9


class TestPayments:
    def test_losers_pay_nothing(self, mechanism):
        for seed in range(5):
            bids = random_instance(seed)
            result = mechanism.run(bids, random.Random(seed))
            winners = set(result.allocation.winners())
            for user in bids.users:
                if user.user_id not in winners:
                    assert result.payments.user_payment(user.user_id) == pytest.approx(0.0)

    def test_payments_never_exceed_declared_value(self, mechanism):
        for seed in range(8):
            bids = random_instance(seed)
            result = mechanism.run(bids, random.Random(seed))
            for user_id in result.allocation.winners():
                assert user_utility(bids, result, user_id) >= -1e-6

    def test_payments_are_nonnegative(self, mechanism):
        for seed in range(8):
            bids = random_instance(seed)
            result = mechanism.run(bids, random.Random(seed))
            for _, payment in result.payments.user_payments:
                assert payment >= -1e-12

    def test_provider_revenue_matches_user_payments(self, mechanism):
        for seed in range(5):
            bids = random_instance(seed)
            result = mechanism.run(bids, random.Random(seed))
            assert result.payments.total_paid == pytest.approx(result.payments.total_received)

    def test_scarcity_creates_positive_payments(self):
        """With contention, at least some winner pays a positive VCG price."""
        mechanism = StandardAuction(epsilon=0.1)
        bids = BidVector(
            (
                UserBid("u0", 1.0, 1.0),
                UserBid("u1", 0.9, 1.0),
                UserBid("u2", 0.8, 1.0),
            ),
            (ProviderAsk("p0", 0.0, 1.0),),  # room for exactly one user
        )
        result = mechanism.run(bids, random.Random(0))
        assert result.allocation.winners() == ["u0"]
        assert result.payments.user_payment("u0") == pytest.approx(0.9, abs=1e-6)


class TestDecomposableInterface:
    def test_solve_allocation_and_payments_match_run(self, mechanism):
        bids = random_instance(2)
        rng = random.Random(11)
        full = mechanism.run(bids, rng)
        # Re-derive the same seed the run() call used.
        seed = random.Random(11).getrandbits(63)
        allocation, welfare = mechanism.solve_allocation(bids, seed)
        payments = mechanism.payments_for_users(bids, bids.user_ids, allocation, welfare, seed)
        assembled = mechanism.assemble(bids, allocation, payments)
        assert assembled == full

    def test_payment_fragments_are_independent(self, mechanism):
        """Computing payments per user-chunk gives the same result as all at once."""
        bids = random_instance(5)
        seed = 12345
        allocation, welfare = mechanism.solve_allocation(bids, seed)
        all_at_once = mechanism.payments_for_users(bids, bids.user_ids, allocation, welfare, seed)
        merged = {}
        for user_id in bids.user_ids:
            merged.update(
                mechanism.payments_for_users(bids, [user_id], allocation, welfare, seed)
            )
        assert merged == all_at_once
