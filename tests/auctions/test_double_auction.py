"""Tests for the truthful budget-balanced double auction (§5.2.1)."""

import random

import pytest

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.welfare import budget_surplus, provider_utility, user_utility
from repro.community.workload import DoubleAuctionWorkload


@pytest.fixture
def mechanism():
    return DoubleAuction()


def random_instance(seed, num_users=12, num_providers=4):
    return DoubleAuctionWorkload(seed=seed).generate(num_users, num_providers)


class TestBasicBehaviour:
    def test_empty_inputs_yield_empty_result(self, mechanism):
        assert mechanism.run(BidVector((), ())).allocation.is_empty()
        assert mechanism.run(
            BidVector((UserBid("u", 1.0, 0.5),), ())
        ).allocation.is_empty()
        assert mechanism.run(
            BidVector((), (ProviderAsk("p", 0.1, 1.0),))
        ).allocation.is_empty()

    def test_no_trade_when_costs_exceed_values(self, mechanism):
        bids = BidVector(
            (UserBid("u0", 0.5, 1.0), UserBid("u1", 0.4, 1.0)),
            (ProviderAsk("p0", 0.9, 5.0),),
        )
        assert mechanism.run(bids).allocation.is_empty()

    def test_simple_trade_excludes_marginal_participants(self, mechanism):
        bids = BidVector(
            (
                UserBid("u_hi", 1.0, 1.0),
                UserBid("u_mid", 0.8, 1.0),
                UserBid("u_lo", 0.6, 1.0),
            ),
            (
                ProviderAsk("p_cheap", 0.1, 2.0),
                ProviderAsk("p_dear", 0.5, 2.0),
            ),
        )
        result = mechanism.run(bids)
        winners = result.allocation.winners()
        # The lowest-value trading user is excluded by the trade reduction.
        assert "u_hi" in winners
        assert "u_lo" not in winners

    def test_water_filling_fills_cheapest_provider_first(self, mechanism):
        bids = BidVector(
            (
                UserBid("u0", 1.2, 0.6),
                UserBid("u1", 1.1, 0.6),
                UserBid("u2", 1.0, 0.6),
            ),
            (
                ProviderAsk("cheap", 0.1, 0.5),
                ProviderAsk("mid", 0.2, 5.0),
                ProviderAsk("dear", 0.3, 5.0),
            ),
        )
        result = mechanism.run(bids)
        if not result.allocation.is_empty():
            # The cheapest provider is saturated before the next one is touched.
            used = result.allocation.provider_total("cheap")
            assert used == pytest.approx(0.5) or result.allocation.provider_total("mid") == 0

    def test_feasibility_on_random_instances(self, mechanism):
        for seed in range(10):
            bids = random_instance(seed)
            result = mechanism.run(bids)
            result.allocation.check_feasible(bids)

    def test_deterministic(self, mechanism):
        bids = random_instance(3)
        assert mechanism.run(bids, random.Random(0)) == mechanism.run(bids, random.Random(99))


class TestEconomicProperties:
    def test_budget_balance_on_random_instances(self, mechanism):
        for seed in range(20):
            result = mechanism.run(random_instance(seed))
            assert budget_surplus(result.payments) >= -1e-9

    def test_individual_rationality_users(self, mechanism):
        for seed in range(20):
            bids = random_instance(seed)
            result = mechanism.run(bids)
            for user_id in result.allocation.winners():
                assert user_utility(bids, result, user_id) >= -1e-9

    def test_individual_rationality_providers(self, mechanism):
        for seed in range(20):
            bids = random_instance(seed)
            result = mechanism.run(bids)
            for provider_id in result.allocation.providers_used():
                assert provider_utility(bids, result, provider_id) >= -1e-9

    def test_winners_pay_uniform_unit_price(self, mechanism):
        for seed in range(5):
            bids = random_instance(seed)
            result = mechanism.run(bids)
            prices = [
                result.payments.user_payment(uid) / result.allocation.user_total(uid)
                for uid in result.allocation.winners()
            ]
            if prices:
                assert max(prices) - min(prices) < 1e-9

    def test_buyer_price_at_least_seller_price(self, mechanism):
        for seed in range(20):
            bids = random_instance(seed)
            result = mechanism.run(bids)
            winners = result.allocation.winners()
            sellers = result.allocation.providers_used()
            if not winners or not sellers:
                continue
            buyer_price = result.payments.user_payment(winners[0]) / result.allocation.user_total(
                winners[0]
            )
            seller_price = result.payments.provider_revenue(
                sellers[0]
            ) / result.allocation.provider_total(sellers[0])
            assert buyer_price >= seller_price - 1e-9
