"""Tests for the auction data model (BidVector, Allocation, Payments)."""

import pytest

from repro.auctions.base import (
    Allocation,
    AuctionResult,
    BidVector,
    FeasibilityError,
    Payments,
    ProviderAsk,
    UserBid,
)


class TestUserBidAndAsk:
    def test_total_value(self):
        assert UserBid("u", 2.0, 3.0).total_value == pytest.approx(6.0)

    def test_functional_updates(self):
        bid = UserBid("u", 1.0, 2.0)
        assert bid.with_unit_value(5.0) == UserBid("u", 5.0, 2.0)
        assert bid.with_demand(7.0) == UserBid("u", 1.0, 7.0)
        ask = ProviderAsk("p", 0.5, 4.0)
        assert ask.with_unit_cost(0.7) == ProviderAsk("p", 0.7, 4.0)
        assert ask.with_capacity(9.0) == ProviderAsk("p", 0.5, 9.0)


class TestBidVector:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            BidVector((UserBid("u", 1, 1), UserBid("u", 2, 1)), ())
        with pytest.raises(ValueError):
            BidVector((), (ProviderAsk("p", 1, 1), ProviderAsk("p", 2, 1)))

    def test_lookups(self, small_standard_bids):
        assert small_standard_bids.user("u2").unit_value == pytest.approx(1.2)
        assert small_standard_bids.provider("p1").capacity == pytest.approx(0.8)
        with pytest.raises(KeyError):
            small_standard_bids.user("nope")
        with pytest.raises(KeyError):
            small_standard_bids.provider("nope")

    def test_aggregates(self, small_standard_bids):
        assert small_standard_bids.total_demand == pytest.approx(0.6 + 0.4 + 0.5 + 0.7 + 0.3)
        assert small_standard_bids.total_capacity == pytest.approx(2.3)

    def test_replace_user(self, small_standard_bids):
        updated = small_standard_bids.replace_user(UserBid("u0", 9.0, 0.6))
        assert updated.user("u0").unit_value == pytest.approx(9.0)
        assert small_standard_bids.user("u0").unit_value == pytest.approx(1.0)
        with pytest.raises(KeyError):
            small_standard_bids.replace_user(UserBid("ghost", 1.0, 1.0))

    def test_without_user(self, small_standard_bids):
        reduced = small_standard_bids.without_user("u3")
        assert "u3" not in reduced.user_ids
        assert len(reduced.users) == len(small_standard_bids.users) - 1


class TestAllocation:
    def test_from_dict_drops_zero_entries(self):
        allocation = Allocation.from_dict({("u", "p"): 0.0, ("v", "p"): 0.5})
        assert allocation.amount("u", "p") == 0.0
        assert allocation.amount("v", "p") == pytest.approx(0.5)
        assert allocation.winners() == ["v"]

    def test_totals(self):
        allocation = Allocation.from_dict({("u", "p0"): 0.4, ("u", "p1"): 0.2, ("v", "p0"): 0.1})
        assert allocation.user_total("u") == pytest.approx(0.6)
        assert allocation.provider_total("p0") == pytest.approx(0.5)
        assert allocation.total_allocated == pytest.approx(0.7)
        assert allocation.providers_used() == ["p0", "p1"]

    def test_equality_is_structural(self):
        a = Allocation.from_dict({("u", "p"): 0.5})
        b = Allocation.from_dict({("u", "p"): 0.5})
        assert a == b and hash(a) == hash(b)

    def test_feasibility_capacity_violation(self, small_standard_bids):
        allocation = Allocation.from_dict({("u0", "p2"): 0.6})  # p2 capacity 0.5
        with pytest.raises(FeasibilityError):
            allocation.check_feasible(small_standard_bids)

    def test_feasibility_demand_violation(self, small_standard_bids):
        allocation = Allocation.from_dict({("u4", "p0"): 0.9})  # u4 demand 0.3
        with pytest.raises(FeasibilityError):
            allocation.check_feasible(small_standard_bids)

    def test_feasibility_unknown_ids(self, small_standard_bids):
        with pytest.raises(FeasibilityError):
            Allocation.from_dict({("ghost", "p0"): 0.1}).check_feasible(small_standard_bids)
        with pytest.raises(FeasibilityError):
            Allocation.from_dict({("u0", "ghost"): 0.1}).check_feasible(small_standard_bids)

    def test_single_provider_constraint(self, small_standard_bids):
        split = Allocation.from_dict({("u0", "p0"): 0.3, ("u0", "p1"): 0.3})
        with pytest.raises(FeasibilityError):
            split.check_feasible(small_standard_bids, single_provider=True)
        partial = Allocation.from_dict({("u0", "p0"): 0.3})
        with pytest.raises(FeasibilityError):
            partial.check_feasible(small_standard_bids, single_provider=True)
        full = Allocation.from_dict({("u0", "p0"): 0.6})
        full.check_feasible(small_standard_bids, single_provider=True)


class TestPayments:
    def test_lookups_and_totals(self):
        payments = Payments.from_dicts({"u0": 1.5, "u1": 0.5}, {"p0": 1.0})
        assert payments.user_payment("u0") == pytest.approx(1.5)
        assert payments.user_payment("ghost") == 0.0
        assert payments.provider_revenue("p0") == pytest.approx(1.0)
        assert payments.total_paid == pytest.approx(2.0)
        assert payments.total_received == pytest.approx(1.0)

    def test_budget_balance(self):
        assert Payments.from_dicts({"u": 2.0}, {"p": 1.5}).is_budget_balanced()
        assert not Payments.from_dicts({"u": 1.0}, {"p": 1.5}).is_budget_balanced()

    def test_empty_result(self):
        result = AuctionResult.empty()
        assert result.allocation.is_empty()
        assert result.payments.total_paid == 0.0
