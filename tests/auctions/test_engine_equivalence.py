"""Differential tests: the vectorized engine must equal the reference bit for bit.

This suite is the gate for flipping any default from "reference" to "vectorized":
for a grid of seeds × scenario sizes the two engines must return *identical*
assignments, welfare and clamped payments — not approximately equal, identical.
The distributed framework depends on this: provider groups independently recompute
pieces of the mechanism and the data-transfer block aborts on any disagreement, so
a single differing ulp would turn into spurious ⊥ outcomes in mixed deployments.
"""

import random

import pytest

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.engine import (
    DEFAULT_ENGINE,
    VectorizedStandardAuction,
    clear_solve_cache,
    engine_name,
    make_standard_auction,
    resolve_engine,
)
from repro.auctions.engine.pivot import PivotExecutor, shared_solve_cache
from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer

SEEDS = (0, 1, 2, 3, 4)
SIZES = ((5, 2), (12, 4), (30, 8), (60, 8))


def _pair(epsilon=0.25, local_search_rounds=1):
    reference = StandardAuction(epsilon=epsilon, local_search_rounds=local_search_rounds)
    vectorized = VectorizedStandardAuction(
        epsilon=epsilon, local_search_rounds=local_search_rounds, pivot_mode="serial"
    )
    return reference, vectorized


@pytest.fixture(autouse=True)
def _cold_cache():
    clear_solve_cache()
    yield
    clear_solve_cache()


class TestSolveAllocationEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s[0]}m{s[1]}")
    def test_identical_allocation_and_welfare(self, seed, size):
        num_users, num_providers = size
        bids = StandardAuctionWorkload(seed=seed).generate(num_users, num_providers)
        reference, vectorized = _pair()
        alloc_seed = 777_000 + seed
        ref_allocation, ref_welfare = reference.solve_allocation(bids, alloc_seed)
        vec_allocation, vec_welfare = vectorized.solve_allocation(bids, alloc_seed)
        assert vec_allocation == ref_allocation
        assert vec_welfare == ref_welfare  # bit-identical, no tolerance

    @pytest.mark.parametrize("epsilon,rounds", [(0.5, 0), (0.5, 3), (0.15, 1)])
    def test_identical_across_parameterisations(self, epsilon, rounds):
        bids = StandardAuctionWorkload(seed=9).generate(25, 6)
        reference, vectorized = _pair(epsilon=epsilon, local_search_rounds=rounds)
        assert vectorized.solve_allocation(bids, 5) == reference.solve_allocation(bids, 5)

    def test_degenerate_instances(self):
        reference, vectorized = _pair()
        empty = BidVector((), (ProviderAsk("p0", 0.0, 1.0),))
        no_capacity = BidVector((UserBid("u0", 1.0, 0.5),), (ProviderAsk("p0", 0.0, 0.0),))
        invalid_only = BidVector(
            (UserBid("u0", 0.0, 0.5), UserBid("u1", 1.0, 0.0)),
            (ProviderAsk("p0", 0.0, 1.0),),
        )
        for bids in (empty, no_capacity, invalid_only):
            assert vectorized.solve_allocation(bids, 3) == reference.solve_allocation(bids, 3)


class TestFullRunEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("size", SIZES[:3], ids=lambda s: f"n{s[0]}m{s[1]}")
    def test_identical_auction_results(self, seed, size):
        """Assignments, welfare *and clamped payments* are seed-for-seed identical."""
        num_users, num_providers = size
        bids = StandardAuctionWorkload(seed=seed).generate(num_users, num_providers)
        reference, vectorized = _pair()
        ref_result = reference.run(bids, random.Random(seed))
        clear_solve_cache()
        vec_result = vectorized.run(bids, random.Random(seed))
        assert vec_result == ref_result

    def test_identical_with_warm_cache(self):
        """Cache hits return the same values as cold computations."""
        bids = StandardAuctionWorkload(seed=4).generate(20, 5)
        reference, vectorized = _pair()
        ref_result = reference.run(bids, random.Random(11))
        first = vectorized.run(bids, random.Random(11))
        second = vectorized.run(bids, random.Random(11))  # fully memoised now
        assert first == ref_result
        assert second == ref_result
        assert shared_solve_cache().hits > 0

    def test_payments_for_users_subset_identical(self):
        bids = StandardAuctionWorkload(seed=6).generate(18, 5)
        reference, vectorized = _pair()
        seed = 4242
        allocation, welfare = reference.solve_allocation(bids, seed)
        subset = bids.user_ids[::2]
        ref_payments = reference.payments_for_users(bids, subset, allocation, welfare, seed)
        vec_payments = vectorized.payments_for_users(bids, subset, allocation, welfare, seed)
        assert vec_payments == ref_payments


class TestPivotExecutorModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_pool_modes_match_reference(self, mode):
        bids = StandardAuctionWorkload(seed=2).generate(15, 4)
        reference = StandardAuction(epsilon=0.5)
        vectorized = VectorizedStandardAuction(
            epsilon=0.5, pivot_mode=mode, pivot_workers=2
        )
        try:
            assert vectorized.run(bids, random.Random(3)) == reference.run(
                bids, random.Random(3)
            )
        finally:
            vectorized.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PivotExecutor(mode="fleet")

    def test_auto_mode_resolves(self):
        assert PivotExecutor(mode="auto").mode in ("serial", "thread")


class TestEngineSwitch:
    def test_make_standard_auction(self):
        assert isinstance(make_standard_auction("reference"), StandardAuction)
        assert isinstance(make_standard_auction("vectorized"), VectorizedStandardAuction)
        with pytest.raises(ValueError):
            make_standard_auction("quantum")

    def test_resolve_engine_round_trip_preserves_parameters(self):
        source = StandardAuction(epsilon=0.1, perturbation=0.07, local_search_rounds=2)
        vectorized = resolve_engine(source, "vectorized")
        assert isinstance(vectorized, VectorizedStandardAuction)
        assert vectorized.restarts == source.restarts
        assert vectorized.perturbation == source.perturbation
        assert vectorized.local_search_rounds == source.local_search_rounds
        back = resolve_engine(vectorized, "reference")
        assert type(back) is StandardAuction
        assert back.restarts == source.restarts

    def test_resolve_engine_is_identity_when_already_matching(self):
        mech = VectorizedStandardAuction()
        assert resolve_engine(mech, "vectorized") is mech
        ref = StandardAuction()
        assert resolve_engine(ref, "reference") is ref

    def test_non_standard_mechanisms_pass_through(self):
        from repro.auctions.double_auction import DoubleAuction

        double = DoubleAuction()
        assert resolve_engine(double, "vectorized") is double


class TestDefaultEngineFlip:
    """The default-flip locks: vectorized is the library default everywhere.

    This suite proves both sides of the flip — the default *is* vectorized,
    and nothing a user customised gets silently swapped out by it.
    """

    def test_library_default_is_vectorized(self):
        assert DEFAULT_ENGINE == "vectorized"

    def test_build_mechanism_resolves_spec_default_to_vectorized(self):
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.runner import build_mechanism

        spec = ScenarioSpec(mechanism="standard", users=6)
        assert spec.engine is None  # the spec default stays unset...
        mechanism = build_mechanism(spec)
        # ...and resolves to the vectorized engine at build time.
        assert isinstance(mechanism, VectorizedStandardAuction)
        assert engine_name(mechanism) == "vectorized"

    def test_spec_reference_escape_hatch_still_works(self):
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.runner import build_mechanism

        spec = ScenarioSpec(mechanism="standard", users=6, engine="reference")
        mechanism = build_mechanism(spec)
        assert type(mechanism) is StandardAuction
        assert engine_name(mechanism) == "reference"

    def test_auction_run_default_is_vectorized(self):
        from repro.runtime.auction_run import AuctionRun

        bids = StandardAuctionWorkload(seed=0).generate(6, 3)
        run = AuctionRun(bids, StandardAuction())
        assert isinstance(run.algorithm, VectorizedStandardAuction)

    def test_batch_runner_default_is_vectorized(self):
        from repro.community.workload import StandardAuctionWorkload
        from repro.runtime.batch import BatchAuctionRunner

        runner = BatchAuctionRunner(StandardAuction(), StandardAuctionWorkload(seed=0))
        assert isinstance(runner.algorithm, VectorizedStandardAuction)

    def test_standard_subclasses_are_never_swapped(self):
        # A user-registered subclass carries overridden behavior the stock
        # vectorized engine does not have; the default must run it as given.
        class TweakedAuction(StandardAuction):
            pass

        tweaked = TweakedAuction()
        assert resolve_engine(tweaked, DEFAULT_ENGINE) is tweaked
        assert resolve_engine(tweaked, "reference") is tweaked

    def test_greedy_and_exact_mechanisms_pass_through_the_default(self):
        from repro.auctions.greedy import GreedyStandardAuction
        from repro.auctions.vcg import ExactVCGAuction

        for mechanism in (GreedyStandardAuction(), ExactVCGAuction()):
            assert resolve_engine(mechanism, DEFAULT_ENGINE) is mechanism

    def test_engine_name_reports_reference_for_unmarked_algorithms(self):
        from repro.auctions.double_auction import DoubleAuction

        assert engine_name(StandardAuction()) == "reference"
        assert engine_name(VectorizedStandardAuction()) == "vectorized"
        assert engine_name(DoubleAuction()) == "reference"

    def test_default_flip_records_resolved_engine(self):
        from repro.scenarios import ScenarioSpec, Simulation

        with Simulation(ScenarioSpec(mechanism="standard", users=6)) as sim:
            record = sim.run()
        assert record.engine == "vectorized"
        with Simulation(
            ScenarioSpec(mechanism="standard", users=6, engine="reference")
        ) as sim:
            record = sim.run()
        assert record.engine == "reference"


class TestDistributedEquivalence:
    def test_distributed_round_identical_across_engines(self):
        """The whole simulated protocol (parallel allocator) agrees across engines."""
        bids = StandardAuctionWorkload(seed=5).generate(12, 4)
        providers = [f"p{j:02d}" for j in range(4)]
        results = {}
        for engine in ("reference", "vectorized"):
            clear_solve_cache()
            auctioneer = DistributedAuctioneer(
                resolve_engine(StandardAuction(epsilon=0.5), engine),
                providers=providers,
                config=FrameworkConfig(k=1, parallel=True, num_groups=2),
                seed=17,
            )
            report = auctioneer.run_from_bids(bids)
            assert not report.aborted
            results[engine] = report.outcome.result
        assert results["vectorized"] == results["reference"]
