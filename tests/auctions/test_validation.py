"""Tests for bid validation and neutral substitution."""

import math

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.validation import (
    coerce_user_bid,
    is_valid_provider_ask,
    is_valid_user_bid,
    neutral_provider_ask,
    neutral_user_bid,
    sanitize_bid_vector,
)


class TestUserBidValidation:
    def test_valid_bid(self):
        assert is_valid_user_bid(UserBid("u", 1.0, 0.5))

    def test_wrong_type_invalid(self):
        assert not is_valid_user_bid("not a bid")
        assert not is_valid_user_bid(None)
        assert not is_valid_user_bid(ProviderAsk("p", 1.0, 1.0))

    def test_nonfinite_values_invalid(self):
        assert not is_valid_user_bid(UserBid("u", math.inf, 0.5))
        assert not is_valid_user_bid(UserBid("u", math.nan, 0.5))
        assert not is_valid_user_bid(UserBid("u", 1.0, math.inf))

    def test_negative_or_zero_demand_invalid(self):
        assert not is_valid_user_bid(UserBid("u", 1.0, 0.0))
        assert not is_valid_user_bid(UserBid("u", 1.0, -1.0))
        assert not is_valid_user_bid(UserBid("u", -0.5, 1.0))

    def test_out_of_range_invalid(self):
        assert not is_valid_user_bid(UserBid("u", 1e12, 0.5))
        assert not is_valid_user_bid(UserBid("u", 1.0, 1e12))


class TestProviderAskValidation:
    def test_valid_ask(self):
        assert is_valid_provider_ask(ProviderAsk("p", 0.5, 10.0))
        assert is_valid_provider_ask(ProviderAsk("p", 0.0, 0.0))

    def test_invalid_asks(self):
        assert not is_valid_provider_ask(None)
        assert not is_valid_provider_ask(ProviderAsk("p", -0.1, 1.0))
        assert not is_valid_provider_ask(ProviderAsk("p", math.nan, 1.0))
        assert not is_valid_provider_ask(ProviderAsk("p", 0.1, -1.0))


class TestNeutralSubstitution:
    def test_neutral_bid_never_wins(self):
        bid = neutral_user_bid("u")
        assert bid.unit_value == 0.0
        assert bid.demand > 0

    def test_neutral_ask_cannot_trade(self):
        assert neutral_provider_ask("p").capacity == 0.0

    def test_coerce_keeps_valid_matching_bid(self):
        bid = UserBid("u", 1.0, 0.5)
        assert coerce_user_bid("u", bid) is bid

    def test_coerce_rejects_identity_spoofing(self):
        bid = UserBid("other", 1.0, 0.5)
        assert coerce_user_bid("u", bid) == neutral_user_bid("u")

    def test_coerce_rejects_garbage(self):
        assert coerce_user_bid("u", "garbage") == neutral_user_bid("u")
        assert coerce_user_bid("u", None) == neutral_user_bid("u")

    def test_sanitize_bid_vector(self):
        bids = BidVector(
            (UserBid("u0", 1.0, 0.5), UserBid("u1", math.inf, 0.5)),
            (ProviderAsk("p0", 0.1, 1.0), ProviderAsk("p1", -1.0, 1.0)),
        )
        clean = sanitize_bid_vector(bids)
        assert clean.user("u0") == bids.user("u0")
        assert clean.user("u1") == neutral_user_bid("u1")
        assert clean.provider("p0") == bids.provider("p0")
        assert clean.provider("p1") == neutral_provider_ask("p1")
