"""Tests for welfare accounting and the Clarke-pivot payment helpers."""

import pytest

from repro.auctions.base import Allocation, AuctionResult, BidVector, Payments, ProviderAsk, UserBid
from repro.auctions.payments import clarke_pivot_payment, clarke_pivot_payments, others_welfare
from repro.auctions.welfare import (
    budget_surplus,
    provider_utilities,
    provider_utility,
    social_welfare,
    user_utilities,
    user_utility,
)


@pytest.fixture
def bids():
    return BidVector(
        (UserBid("u0", 2.0, 1.0), UserBid("u1", 1.0, 1.0)),
        (ProviderAsk("p0", 0.5, 2.0),),
    )


@pytest.fixture
def result(bids):
    allocation = Allocation.from_dict({("u0", "p0"): 1.0, ("u1", "p0"): 1.0})
    payments = Payments.from_dicts({"u0": 1.0, "u1": 0.5}, {"p0": 1.2})
    return AuctionResult(allocation, payments)


class TestWelfare:
    def test_social_welfare_with_costs(self, bids, result):
        # value 2*1 + 1*1 = 3, cost 0.5*2 = 1
        assert social_welfare(bids, result.allocation) == pytest.approx(2.0)

    def test_social_welfare_without_costs(self, bids, result):
        assert social_welfare(bids, result.allocation, include_provider_costs=False) == pytest.approx(3.0)

    def test_empty_allocation_has_zero_welfare(self, bids):
        assert social_welfare(bids, Allocation.empty()) == 0.0


class TestUtilities:
    def test_user_utility(self, bids, result):
        assert user_utility(bids, result, "u0") == pytest.approx(2.0 - 1.0)
        assert user_utility(bids, result, "u1") == pytest.approx(1.0 - 0.5)

    def test_provider_utility(self, bids, result):
        assert provider_utility(bids, result, "p0") == pytest.approx(1.2 - 0.5 * 2.0)

    def test_bulk_utilities(self, bids, result):
        assert set(user_utilities(bids, result)) == {"u0", "u1"}
        assert set(provider_utilities(bids, result)) == {"p0"}

    def test_budget_surplus(self, result):
        assert budget_surplus(result.payments) == pytest.approx(1.5 - 1.2)


class TestClarkePivot:
    def test_others_welfare_excludes_the_user(self, bids, result):
        assert others_welfare(bids, result.allocation, "u0") == pytest.approx(1.0)
        assert others_welfare(bids, result.allocation, "u1") == pytest.approx(2.0)

    def test_payment_is_externality(self, bids, result):
        # If without u0 the others could get welfare 1.8, and with u0 they get 1.0,
        # u0's payment is the 0.8 externality.
        assert clarke_pivot_payment(bids, result.allocation, "u0", 1.8) == pytest.approx(0.8)

    def test_payment_clamped_at_zero(self, bids, result):
        assert clarke_pivot_payment(bids, result.allocation, "u0", 0.5) == 0.0

    def test_losers_pay_zero(self, bids):
        allocation = Allocation.from_dict({("u0", "p0"): 1.0})
        payments = clarke_pivot_payments(
            bids, allocation, ["u0", "u1"], welfare_without=lambda uid: 1.0
        )
        assert payments["u1"] == 0.0
        assert payments["u0"] == pytest.approx(1.0)  # 1.0 - others(=0)
