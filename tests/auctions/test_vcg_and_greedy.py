"""Tests for the exact VCG baseline and the greedy (non-truthful) baseline."""

import random

import pytest

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.greedy import GreedyStandardAuction
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.vcg import ExactVCGAuction
from repro.auctions.welfare import social_welfare
from repro.community.workload import StandardAuctionWorkload


def random_instance(seed, num_users=7, num_providers=3):
    return StandardAuctionWorkload(seed=seed).generate(num_users, num_providers)


class TestExactVCG:
    def test_finds_obvious_optimum(self):
        bids = BidVector(
            (
                UserBid("u0", 1.0, 1.0),
                UserBid("u1", 2.0, 1.0),
                UserBid("u2", 3.0, 1.0),
            ),
            (ProviderAsk("p0", 0.0, 2.0),),
        )
        result = ExactVCGAuction().run(bids)
        assert set(result.allocation.winners()) == {"u1", "u2"}

    def test_beats_or_matches_greedy_and_approximate(self):
        exact = ExactVCGAuction()
        greedy = GreedyStandardAuction()
        approx = StandardAuction(epsilon=0.3)
        for seed in range(6):
            bids = random_instance(seed)
            w_exact = social_welfare(bids, exact.run(bids).allocation, include_provider_costs=False)
            w_greedy = social_welfare(bids, greedy.run(bids).allocation, include_provider_costs=False)
            w_approx = social_welfare(
                bids, approx.run(bids, random.Random(seed)).allocation, include_provider_costs=False
            )
            assert w_exact >= w_greedy - 1e-9
            assert w_exact >= w_approx - 1e-9

    def test_vcg_payment_is_the_externality(self):
        # One provider with room for one unit-demand user; the winner's payment is
        # exactly the second-highest value.
        bids = BidVector(
            (
                UserBid("u0", 5.0, 1.0),
                UserBid("u1", 3.0, 1.0),
                UserBid("u2", 1.0, 1.0),
            ),
            (ProviderAsk("p0", 0.0, 1.0),),
        )
        result = ExactVCGAuction().run(bids)
        assert result.allocation.winners() == ["u0"]
        assert result.payments.user_payment("u0") == pytest.approx(3.0)

    def test_refuses_oversized_instances(self):
        bids = random_instance(0, num_users=20)
        with pytest.raises(ValueError):
            ExactVCGAuction(max_users=10).run(bids)

    def test_feasibility(self):
        for seed in range(5):
            bids = random_instance(seed)
            result = ExactVCGAuction().run(bids)
            result.allocation.check_feasible(bids, single_provider=True)


class TestGreedyBaseline:
    def test_feasible_and_fast(self):
        for seed in range(5):
            bids = random_instance(seed, num_users=30)
            result = GreedyStandardAuction().run(bids)
            result.allocation.check_feasible(bids, single_provider=True)

    def test_pay_your_bid(self):
        bids = BidVector(
            (UserBid("u0", 2.0, 0.5),),
            (ProviderAsk("p0", 0.0, 1.0),),
        )
        result = GreedyStandardAuction().run(bids)
        assert result.payments.user_payment("u0") == pytest.approx(1.0)  # 2.0 * 0.5

    def test_not_truthful_by_construction(self):
        """Pay-your-bid means shading the bid strictly helps a sure winner."""
        bids = BidVector(
            (UserBid("u0", 2.0, 0.5),),
            (ProviderAsk("p0", 0.0, 1.0),),
        )
        greedy = GreedyStandardAuction()
        honest = greedy.run(bids)
        shaded = greedy.run(bids.replace_user(UserBid("u0", 1.0, 0.5)))
        honest_utility = 2.0 * 0.5 - honest.payments.user_payment("u0")
        shaded_utility = 2.0 * 0.5 - shaded.payments.user_payment("u0")
        assert shaded_utility > honest_utility
