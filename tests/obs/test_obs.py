"""The observability plane: tracer semantics, the METRICS hub, export, hooks.

The contract under test (DESIGN.md, "The observability plane"):

* spans nest positionally (open/close push/pop; emit records a leaf under the
  innermost open span), roots carry ``parent == -1``, and ``new_track=True``
  allocates a fresh timeline lane that children inherit;
* the trace journal rides the results-store plane — jsonl and columnar
  round-trip the same spans, guarded by the trace fingerprint;
* :class:`MetricsHub` creates instruments through the :data:`METRICS`
  registry, refuses kind collisions with a name-precise error, and snapshots
  in sorted-name order with the store plane's pinned empty-histogram shape;
* the Chrome export maps tracks to ``pid``/categories to named ``tid`` rows,
  scales sim seconds to microseconds, and is canonical JSON;
* ``observe()`` installs the ambient observation, restores the previous one
  on exit (even on error), and closes the journal either way;
* the scenario/network hooks emit spans and metrics only when an observation
  is installed — and emit *deterministic* ones when it is.
"""

import json

import pytest

from repro.obs import (
    METRICS,
    MetricsHub,
    Observation,
    SpanRecord,
    Tracer,
    chrome_trace,
    current_observation,
    load_trace,
    observe,
    render_chrome,
    render_metrics,
    render_text,
)
from repro.obs.trace import trace_fingerprint
from repro.scenarios import ScenarioSpec, Simulation, SpecError


def _spec(**overrides):
    data = dict(
        name="obs-spec",
        mechanism="double",
        users=6,
        providers=3,
        config={"k": 1},
        latency="constant",
        seed=3,
        measure_compute=False,
    )
    data.update(overrides)
    return ScenarioSpec(**data)


class TestTracer:
    def test_nesting_is_positional(self):
        tracer = Tracer()
        outer = tracer.open("outer", "test", ts=0.0)
        tracer.emit("leaf", "test", ts=0.5, dur=0.25, tag="x")
        inner = tracer.open("inner", "test", ts=1.0)
        tracer.close(end_ts=2.0)
        tracer.close(dur=3.0, ok=True)

        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].parent == -1
        assert by_name["outer"].dur == 3.0
        assert by_name["outer"].detail == {"ok": True}
        assert by_name["leaf"].parent == outer
        assert by_name["leaf"].detail == {"tag": "x"}
        assert by_name["inner"].parent == outer
        assert by_name["inner"].span_id == inner
        assert by_name["inner"].dur == 1.0  # end_ts - open ts

    def test_tracks_partition_timelines(self):
        tracer = Tracer()
        tracer.open("round-a", "scenario", ts=0.0, new_track=True)
        tracer.emit("deliver", "net", ts=0.1)
        tracer.close()
        tracer.open("round-b", "scenario", ts=0.0, new_track=True)
        tracer.emit("deliver", "net", ts=0.1)
        tracer.close()
        tracks = [span.track for span in sorted(tracer.spans, key=lambda s: s.span_id)]
        assert tracks == [1, 1, 2, 2]  # children inherit the round's lane
        assert tracer.current_track == 0  # back to the root lane

    def test_instant_is_a_zero_duration_span(self):
        tracer = Tracer()
        record = tracer.instant("fault.drop", "fault", ts=2.5, target="n1")
        assert record.dur == 0.0
        assert record.detail == {"target": "n1"}

    def test_finish_closes_open_spans(self):
        tracer = Tracer()
        tracer.open("outer", "test", ts=0.0)
        tracer.open("inner", "test", ts=1.0)
        tracer.finish()
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        assert all(span.dur == 0.0 for span in tracer.spans)

    def test_seq_is_a_monotone_logical_clock(self):
        tracer = Tracer()
        assert [tracer.seq() for _ in range(3)] == [0.0, 1.0, 2.0]

    def test_span_record_round_trips_type_stable(self):
        record = SpanRecord(3, -1, 0, "solve", "engine", 1.0, 2.0, {"users": 5})
        data = record.to_dict()
        assert isinstance(data["parent"], int) and data["parent"] == -1
        assert isinstance(data["ts"], float) and isinstance(data["dur"], float)
        assert SpanRecord.from_dict(data) == record

    @pytest.mark.parametrize("fmt,suffix", [("jsonl", "jsonl"), (None, "rcol")])
    def test_journal_round_trips_on_both_backends(self, tmp_path, fmt, suffix):
        path = str(tmp_path / f"trace.{suffix}")
        tracer = Tracer()
        tracer.begin_journal(path, format=fmt, name="round-trip")
        tracer.open("round", "scenario", ts=0.0, new_track=True)
        tracer.emit("deliver", "net", ts=0.25, dur=0.05, sender="a", recipient="b")
        tracer.close(dur=1.5, ok=True)
        tracer.finish()

        manifest, spans = load_trace(path)
        assert manifest["fingerprint"] == trace_fingerprint("round-trip")
        assert manifest["sweep"] == "round-trip"
        # load_trace returns span-id order; the in-memory list is close order.
        assert spans == sorted(tracer.spans, key=lambda span: span.span_id)


class TestMetrics:
    def test_counter_gauge_histogram_kinds(self):
        hub = MetricsHub()
        hub.counter("c").inc()
        hub.counter("c").inc(2)
        hub.gauge("g").set(0.5)
        for value in (1.0, 2.0, 4.0):
            hub.histogram("h").observe(value)

        snapshot = hub.snapshot()["instruments"]
        assert snapshot["c"] == {"kind": "counter", "value": 3}
        assert snapshot["g"] == {"kind": "gauge", "value": 0.5}
        assert snapshot["h"]["kind"] == "histogram"
        assert snapshot["h"]["count"] == 3
        assert snapshot["h"]["min"] == 1.0
        assert snapshot["h"]["max"] == 4.0
        assert hub.summary_line() == "metrics: 1 counters, 1 gauges, 1 histograms"

    def test_gauge_is_none_before_first_set(self):
        assert MetricsHub().gauge("g").to_dict() == {"kind": "gauge", "value": None}

    def test_empty_histogram_is_the_store_planes_empty_snapshot(self):
        # The pinned empty shape: count=0, every statistic None — identical to
        # MetricAccumulator's own empty to_dict (plus the kind tag).
        from repro.scenarios.aggregate import MetricAccumulator

        snapshot = MetricsHub().histogram("h").to_dict()
        expected = MetricAccumulator().to_dict()
        expected["kind"] = "histogram"
        assert snapshot == expected
        assert snapshot["count"] == 0
        assert all(
            snapshot[field] is None
            for field in ("mean", "min", "max", "p50", "p90", "p99")
        )

    def test_kind_collision_is_a_name_precise_error(self):
        hub = MetricsHub()
        hub.counter("latency")
        with pytest.raises(SpecError, match=r"metrics\[latency\]"):
            hub.histogram("latency")

    def test_unknown_kind_lists_available(self):
        from repro.scenarios.spec import ComponentSpec

        with pytest.raises(SpecError, match="counter"):
            METRICS.create(ComponentSpec("speedometer"), "metrics[x]")

    def test_snapshot_json_is_canonical_and_name_sorted(self):
        hub = MetricsHub()
        hub.counter("zz").inc()
        hub.counter("aa").inc()
        text = hub.snapshot_json()
        assert text.index('"aa"') < text.index('"zz"')
        assert json.loads(text) == hub.snapshot()
        import hashlib

        assert hub.fingerprint() == hashlib.sha256(text.encode("utf-8")).hexdigest()

    def test_render_metrics_lists_every_instrument(self):
        hub = MetricsHub()
        hub.counter("net.messages_sent").inc(7)
        hub.histogram("round.elapsed").observe(0.5)
        text = render_metrics(hub.snapshot())
        assert "2 instruments" in text
        assert "net.messages_sent" in text and "value=7" in text
        assert "round.elapsed" in text and "count=1" in text

    def test_render_metrics_empty(self):
        assert render_metrics(MetricsHub().snapshot()) == "metrics snapshot: 0 instruments"


class TestChromeExport:
    def _spans(self):
        tracer = Tracer()
        tracer.open("round", "scenario", ts=0.0, new_track=True)
        tracer.emit("deliver", "net", ts=0.5, dur=0.0125, tag="bid")
        tracer.instant("fault.drop_message", "fault", ts=1.0)
        tracer.close(dur=2.0)
        return tracer.spans

    def test_event_shapes(self):
        document = chrome_trace(self._spans())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # One thread_name row per (track, category).
        assert {e["args"]["name"] for e in metadata} == {"scenario", "net", "fault"}
        assert len(complete) == 2  # deliver + round
        assert all(e["dur"] > 0 for e in complete)
        assert all(e["s"] == "t" for e in instants)

    def test_sim_seconds_scale_to_microseconds(self):
        events = chrome_trace(self._spans())["traceEvents"]
        deliver = next(e for e in events if e["name"] == "deliver")
        assert deliver["ts"] == pytest.approx(0.5e6)
        assert deliver["dur"] == pytest.approx(12_500.0)
        assert deliver["args"]["tag"] == "bid"

    def test_track_becomes_pid(self):
        events = chrome_trace(self._spans())["traceEvents"]
        assert {e["pid"] for e in events if e["ph"] != "M"} == {1}

    def test_render_chrome_is_canonical_json(self):
        text = render_chrome(self._spans())
        assert json.loads(text) == chrome_trace(self._spans())
        assert ": " not in text  # compact separators

    def test_render_text_indents_by_nesting(self):
        text = render_text(self._spans())
        lines = text.splitlines()
        assert lines[0] == "trace: 3 spans"
        assert "[track 1]   deliver (net)" in text  # child indented under round
        assert "tag=bid" in text


class TestObserve:
    def test_installs_and_restores(self):
        assert current_observation() is None
        with observe() as observation:
            assert current_observation() is observation
            assert isinstance(observation.metrics, MetricsHub)
            assert observation.tracer.active
        assert current_observation() is None

    def test_metrics_can_be_disabled(self):
        with observe(metrics=False) as observation:
            assert observation.metrics is None
            assert observation.tracer is not None

    def test_journal_closed_even_on_error(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with pytest.raises(RuntimeError):
            with observe(trace=path):
                current_observation().tracer.open("doomed", "test", ts=0.0)
                raise RuntimeError("boom")
        assert current_observation() is None
        manifest, spans = load_trace(path)  # valid journal, open span closed
        assert [span.name for span in spans] == ["doomed"]

    def test_nested_observations_restore_the_outer_one(self):
        with observe() as outer:
            with observe() as inner:
                assert current_observation() is inner
            assert current_observation() is outer


class TestScenarioHooks:
    def _run(self):
        with Simulation(_spec()) as sim:
            return sim.run()

    def test_no_observation_means_no_spans(self):
        self._run()  # must not blow up or leak state
        assert current_observation() is None

    def test_run_emits_round_span_and_network_metrics(self):
        with observe() as observation:
            record = self._run()
        names = {span.name for span in observation.tracer.spans}
        assert "round" in names
        assert "deliver" in names
        round_span = next(s for s in observation.tracer.spans if s.name == "round")
        assert round_span.parent == -1
        assert round_span.track == 1  # rounds get their own lane
        assert round_span.dur == record.elapsed_seconds
        assert round_span.detail["ok"] is True

        instruments = observation.metrics.snapshot()["instruments"]
        assert instruments["rounds"]["value"] == 1
        assert instruments["net.messages_sent"]["value"] == record.messages
        assert instruments["net.messages_delivered"]["value"] > 0
        assert instruments["net.delivery_latency"]["count"] > 0

    def test_standard_mechanism_emits_engine_spans(self):
        # The vectorized engine (the standard mechanism's default) records one
        # "solve" span per top-level solve and a "pivot_resolve" batch span —
        # on the calling thread only, so the trace is pool-independent.
        spec = _spec(mechanism={"kind": "standard", "epsilon": 0.5}, users=5)
        with observe() as observation:
            with Simulation(spec) as sim:
                sim.run()
        names = [span.name for span in observation.tracer.spans]
        assert "solve" in names
        assert "pivot_resolve" in names
        solve = next(s for s in observation.tracer.spans if s.name == "solve")
        assert solve.cat == "engine"
        assert solve.detail["users"] == 5
        pivot = next(s for s in observation.tracer.spans if s.name == "pivot_resolve")
        assert pivot.detail["resolves"] + pivot.detail["memo_hits"] == pivot.detail["users"]

        instruments = observation.metrics.snapshot()["instruments"]
        hits = instruments["engine.solve_memo_hits"]["value"]
        misses = instruments["engine.solve_memo_misses"]["value"]
        assert hits + misses > 0

    def test_two_rounds_get_two_tracks(self):
        with observe() as observation:
            self._run()
            self._run()
        tracks = sorted(
            span.track for span in observation.tracer.spans if span.name == "round"
        )
        assert tracks == [1, 2]

    def test_hooked_run_is_deterministic(self):
        def run_once():
            from repro.auctions.engine.pivot import clear_solve_cache

            clear_solve_cache()
            with observe() as observation:
                self._run()
            return (
                [span.to_dict() for span in observation.tracer.spans],
                observation.metrics.snapshot_json(),
            )

        assert run_once() == run_once()

    def test_sweep_emits_grid_point_spans(self, tmp_path):
        from repro.scenarios import SweepSpec, run_sweep

        sweep = SweepSpec(base=_spec(), name="obs-grid", axes=(("users", (4, 6)),))
        with observe() as observation:
            run_sweep(sweep)
        grid = [s for s in observation.tracer.spans if s.name == "grid_point"]
        assert [span.detail["point"] for span in grid] == [0, 1]
        assert all(span.cat == "executor" for span in grid)
        instruments = observation.metrics.snapshot()["instruments"]
        assert instruments["sweep.points"]["value"] == 2
        assert instruments["sweep.rounds_executed"]["value"] == 2
