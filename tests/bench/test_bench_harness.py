"""Tests for the benchmark harness and reporting (small-scale sanity runs)."""

import pathlib

import pytest

from repro.bench.harness import (
    ExperimentPoint,
    Figure4Experiment,
    Figure5Experiment,
    default_latency_model,
    run_resilience_benchmark,
)
from repro.bench.reporting import format_points, format_series, points_to_series


class TestBenchMarkers:
    def test_every_benchmark_file_carries_the_bench_marker(self):
        # The conftest auto-marker keeps `-m "not bench"` correct when the
        # whole tree is collected; the explicit pytestmark in each file keeps
        # it correct when a benchmark file is run from another rootdir, where
        # benchmarks/conftest.py may not be loaded.  Both must stay.
        bench_dir = (
            pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
        )
        files = sorted(bench_dir.glob("test_*.py"))
        assert files, bench_dir
        unmarked = [
            f.name
            for f in files
            if "pytestmark = pytest.mark.bench" not in f.read_text()
        ]
        assert unmarked == []


class TestResilienceBenchmarkPolicy:
    """The artifact can never report pool overhead as the default config."""

    SMALL = dict(num_users=10, num_providers=3, k=1, seeds=(0,))

    def _pin(self, monkeypatch, count):
        monkeypatch.setattr("repro.common.available_cpus", lambda: count)
        monkeypatch.setattr(
            "repro.scenarios.dispatch.available_cpus", lambda: count
        )

    def test_auto_on_one_core_records_unit_speedup_without_a_pool(self, monkeypatch):
        self._pin(monkeypatch, 1)
        payload = run_resilience_benchmark(workers="auto", **self.SMALL)
        assert payload["workers_requested"] == "auto"
        assert payload["workers_resolved"] == 1
        assert payload["backend"] == "serial"
        assert payload["speedup"] == 1.0
        assert payload["wall_seconds_parallel"] is None
        assert payload["verdicts_identical"] is True
        assert "sequential path" in payload["note"]

    def test_auto_on_multi_core_times_the_resolved_pool(self, monkeypatch):
        self._pin(monkeypatch, 2)
        payload = run_resilience_benchmark(workers="auto", **self.SMALL)
        assert payload["workers_resolved"] == 2
        assert payload["backend"] == "process"
        assert payload["wall_seconds_parallel"] > 0
        assert payload["verdicts_identical"] is True
        assert "workers='auto' -> 2" in payload["summary"]

    def test_oversubscribed_request_is_capped_in_the_artifact(self, monkeypatch, capsys):
        self._pin(monkeypatch, 2)
        payload = run_resilience_benchmark(workers=6, **self.SMALL)
        assert payload["workers_requested"] == 6
        assert payload["workers_resolved"] == 2
        assert "requested 6 workers" in capsys.readouterr().err


class TestFigure4Experiment:
    def test_executor_counts_match_paper(self):
        experiment = Figure4Experiment()
        assert len(experiment.executors_for_k(1)) == 3
        assert len(experiment.executors_for_k(2)) == 5
        assert len(experiment.executors_for_k(3)) == 7
        with pytest.raises(ValueError):
            experiment.executors_for_k(4)

    def test_single_points_complete_without_abort(self):
        experiment = Figure4Experiment(n_values=(20,), k_values=(1,))
        central = experiment.run_centralized_point(20)
        distributed = experiment.run_distributed_point(20, k=1)
        assert central.elapsed_seconds >= 0.0
        assert not distributed.aborted
        assert distributed.messages > 0

    def test_distributed_is_slower_than_centralised(self):
        experiment = Figure4Experiment(n_values=(50,), k_values=(1,))
        central = experiment.run_centralized_point(50)
        distributed = experiment.run_distributed_point(50, k=1)
        assert distributed.elapsed_seconds > central.elapsed_seconds

    def test_overhead_grows_with_k(self):
        experiment = Figure4Experiment()
        k1 = experiment.run_distributed_point(60, k=1)
        k3 = experiment.run_distributed_point(60, k=3)
        assert k3.messages > k1.messages

    def test_sweep_produces_all_series(self):
        experiment = Figure4Experiment(n_values=(10, 20), k_values=(1,))
        points = experiment.run()
        series = points_to_series(points)
        assert set(series) == {"centralised", "distributed k=1"}
        assert all(len(v) == 2 for v in series.values())


class TestFigure5Experiment:
    def test_parallelism_to_k_mapping(self):
        experiment = Figure5Experiment()
        assert experiment.k_for_parallelism(1) == 7
        assert experiment.k_for_parallelism(2) == 3
        assert experiment.k_for_parallelism(4) == 1
        with pytest.raises(ValueError):
            experiment.k_for_parallelism(0)

    def test_points_complete_without_abort(self):
        experiment = Figure5Experiment(n_values=(10,), epsilon=0.5)
        central = experiment.run_centralized_point(10)
        parallel = experiment.run_distributed_point(10, p=4)
        assert central.elapsed_seconds >= 0
        assert not parallel.aborted

    def test_parallelism_pays_off_when_compute_dominates(self):
        experiment = Figure5Experiment(epsilon=0.2)
        n = 48
        central = experiment.run_centralized_point(n)
        p4 = experiment.run_distributed_point(n, p=4)
        assert p4.elapsed_seconds < central.elapsed_seconds

    def test_p1_is_the_centralised_series(self):
        experiment = Figure5Experiment(n_values=(8,), epsilon=0.5)
        point = experiment.run_distributed_point(8, p=1)
        assert point.series == "p=1 (centralised)"


class TestReporting:
    def _points(self):
        return [
            ExperimentPoint("fig4", "centralised", 100, 0.01, 0, 0),
            ExperimentPoint("fig4", "centralised", 200, 0.02, 0, 0),
            ExperimentPoint("fig4", "distributed k=1", 100, 0.05, 42, 1000),
        ]

    def test_points_to_series_groups_and_sorts(self):
        series = points_to_series(self._points())
        assert series["centralised"] == [(100, 0.01), (200, 0.02)]
        assert series["distributed k=1"] == [(100, 0.05)]

    def test_format_points_table(self):
        text = format_points(self._points())
        assert "series" in text
        assert "distributed k=1" in text
        assert "0.0500" in text

    def test_format_series(self):
        text = format_series(self._points())
        assert "centralised:" in text
        assert "n=  100" in text

    def test_empty_points(self):
        assert format_points([]) == "(no data)"

    def test_default_latency_model_is_bandwidth_aware(self):
        import random

        model = default_latency_model()
        small = model.delay("a", "b", 100, random.Random(0))
        large = model.delay("a", "b", 10**6, random.Random(0))
        assert large > small
