"""Tests for message schedulers (fairness and ordering).

The ``select()`` tests drive the legacy flat-sequence protocol, which remains
supported; the ``TestQueueProtocol*`` classes cover the push/pop/retire queue
protocol the simulator itself uses.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.net.message import Message
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    _IndexedLiveList,
)


def make_messages():
    return [
        Message.create("a", "b", 1, send_time=0.0, arrival_time=0.3),
        Message.create("b", "c", 2, send_time=0.0, arrival_time=0.1),
        Message.create("c", "a", 3, send_time=0.0, arrival_time=0.2),
    ]


@pytest.fixture
def rng():
    return random.Random(0)


class TestFairScheduler:
    def test_selects_earliest_arrival(self, rng):
        messages = make_messages()
        selected = FairScheduler().select(messages, rng)
        assert selected.payload == 2

    def test_ties_broken_by_message_id(self, rng):
        first = Message.create("a", "b", "x", arrival_time=0.5)
        second = Message.create("a", "c", "y", arrival_time=0.5)
        assert FairScheduler().select([second, first], rng) is first


class TestRoundRobinScheduler:
    def test_rotates_over_recipients(self, rng):
        scheduler = RoundRobinScheduler(order=["a", "b", "c"])
        messages = make_messages()
        picks = []
        pool = list(messages)
        while pool:
            chosen = scheduler.select(pool, rng)
            picks.append(chosen.recipient)
            pool.remove(chosen)
        assert set(picks) == {"a", "b", "c"}

    def test_skips_recipients_without_traffic(self, rng):
        scheduler = RoundRobinScheduler(order=["z", "b"])
        messages = [Message.create("a", "b", 1, arrival_time=0.1)]
        assert scheduler.select(messages, rng).recipient == "b"


class TestRandomScheduler:
    def test_all_messages_eventually_selected(self, rng):
        scheduler = RandomScheduler()
        pool = make_messages()
        seen = set()
        while pool:
            chosen = scheduler.select(pool, rng)
            seen.add(chosen.msg_id)
            pool.remove(chosen)
        assert len(seen) == 3


class TestAdversarialScheduler:
    def test_defers_targeted_traffic(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}))
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean = Message.create("b", "c", "c", arrival_time=1.0)
        # Even though the targeted message arrives first, the clean one is delivered.
        assert scheduler.select([targeted, clean], rng) is clean

    def test_fairness_budget_forces_delivery(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}), max_deferrals=3)
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean_pool = [
            Message.create("b", "c", i, arrival_time=1.0 + i) for i in range(10)
        ]
        deliveries = []
        pool = [targeted] + clean_pool
        while pool:
            chosen = scheduler.select(pool, rng)
            deliveries.append(chosen)
            pool.remove(chosen)
        # The targeted message is not starved forever: it appears within the first
        # max_deferrals+1 deliveries.
        assert targeted in deliveries[: scheduler.max_deferrals + 1]

    def test_only_targeted_traffic_left_is_delivered(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}))
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        assert scheduler.select([targeted], rng) is targeted


def drain_queue(scheduler, rng):
    delivered = []
    while True:
        message = scheduler.pop(rng)
        if message is None:
            return delivered
        delivered.append(message)


class TestQueueProtocolFair:
    def test_pops_in_arrival_order(self, rng):
        scheduler = FairScheduler()
        messages = make_messages()
        for message in messages:
            scheduler.push(message)
        assert [m.payload for m in drain_queue(scheduler, rng)] == [2, 3, 1]

    def test_retired_recipients_are_lazily_skipped(self, rng):
        scheduler = FairScheduler()
        for message in make_messages():
            scheduler.push(message)
        scheduler.retire_recipient("c")  # drops the earliest message (b->c)
        assert [m.payload for m in drain_queue(scheduler, rng)] == [3, 1]

    def test_push_to_retired_recipient_is_ignored(self, rng):
        scheduler = FairScheduler()
        scheduler.retire_recipient("b")
        scheduler.push(Message.create("a", "b", 1, arrival_time=0.1))
        assert scheduler.pop(rng) is None


class TestQueueProtocolRoundRobin:
    def test_rotates_over_recipients(self, rng):
        scheduler = RoundRobinScheduler(order=["a", "b", "c"])
        for message in make_messages():
            scheduler.push(message)
        assert [m.recipient for m in drain_queue(scheduler, rng)] == ["a", "b", "c"]

    def test_discovery_follows_first_message_order(self, rng):
        scheduler = RoundRobinScheduler()
        scheduler.push(Message.create("x", "b", 1, arrival_time=0.9))
        scheduler.push(Message.create("x", "a", 2, arrival_time=0.1))
        scheduler.push(Message.create("x", "b", 3, arrival_time=0.2))
        # b was pushed first, so the rotation starts with b despite a's earlier
        # arrival time.
        assert [m.payload for m in drain_queue(scheduler, rng)] == [3, 2, 1]

    def test_retired_recipient_loses_its_turn(self, rng):
        scheduler = RoundRobinScheduler(order=["a", "b"])
        scheduler.push(Message.create("x", "a", "to-a", arrival_time=0.1))
        scheduler.push(Message.create("x", "b", "to-b", arrival_time=0.2))
        scheduler.retire_recipient("a")
        assert scheduler.pop(rng).payload == "to-b"
        assert scheduler.pop(rng) is None


class TestQueueProtocolRandom:
    def test_matches_legacy_select_draw_for_draw(self):
        """The queue path consumes the RNG exactly like the legacy list path."""
        def batch(i):
            return [
                Message.create("s", f"r{j}", (i, j), arrival_time=0.1 * j, msg_id=i * 10 + j)
                for j in range(4)
            ]

        queue_rng, legacy_rng = random.Random(7), random.Random(7)
        scheduler = RandomScheduler()
        pool = []
        queue_picks, legacy_picks = [], []
        for i in range(6):
            for message in batch(i):
                scheduler.push(message)
            pool.extend(batch(i))
            for _ in range(3):
                queue_picks.append(scheduler.pop(queue_rng).payload)
                chosen = pool[legacy_rng.randrange(len(pool))]
                legacy_picks.append(chosen.payload)
                pool.remove(chosen)
        assert queue_picks == legacy_picks

    def test_retire_removes_messages_from_the_draw(self, rng):
        scheduler = RandomScheduler()
        for j in range(20):
            scheduler.push(Message.create("s", "dead" if j % 2 else "live", j))
        scheduler.retire_recipient("dead")
        delivered = drain_queue(scheduler, rng)
        assert len(delivered) == 10
        assert all(m.recipient == "live" for m in delivered)


class TestQueueProtocolAdversarial:
    def test_defers_targeted_traffic(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}))
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean = Message.create("b", "c", "c", arrival_time=1.0)
        scheduler.push(targeted)
        scheduler.push(clean)
        assert scheduler.pop(rng) is clean
        assert scheduler.pop(rng) is targeted

    def test_fairness_budget_forces_delivery(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}), max_deferrals=3)
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        scheduler.push(targeted)
        for i in range(10):
            scheduler.push(Message.create("b", "c", i, arrival_time=1.0 + i))
        delivered = drain_queue(scheduler, rng)
        assert targeted in delivered[: scheduler.max_deferrals + 1]

    def test_zero_budget_degenerates_to_earliest_first(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}), max_deferrals=0)
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean = Message.create("b", "c", "c", arrival_time=1.0)
        scheduler.push(targeted)
        scheduler.push(clean)
        assert scheduler.pop(rng) is targeted

    def test_retired_targeted_traffic_never_surfaces(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}), max_deferrals=1)
        doomed = Message.create("a", "b", "doomed", arrival_time=0.0)
        scheduler.push(doomed)
        scheduler.push(Message.create("b", "c", 1, arrival_time=1.0))
        scheduler.push(Message.create("b", "c", 2, arrival_time=2.0))
        scheduler.retire_recipient("b")
        assert [m.payload for m in drain_queue(scheduler, rng)] == [1, 2]


class TestLegacyAdapter:
    class SendTimeScheduler(Scheduler):
        """select()-only scheduler: exercises the base-class queue adapter."""

        def select(self, in_flight, rng):
            return min(in_flight, key=lambda m: (m.send_time, m.msg_id))

    def test_queue_protocol_backed_by_select(self, rng):
        scheduler = self.SendTimeScheduler()
        first = Message.create("a", "b", 1, send_time=0.5)
        second = Message.create("a", "c", 2, send_time=0.1)
        scheduler.push(first)
        scheduler.push(second)
        assert scheduler.pop(rng) is second
        assert scheduler.pop(rng) is first
        assert scheduler.pop(rng) is None

    def test_retire_hides_messages_from_select(self, rng):
        scheduler = self.SendTimeScheduler()
        scheduler.push(Message.create("a", "b", "dead", send_time=0.0))
        scheduler.push(Message.create("a", "c", "live", send_time=1.0))
        scheduler.retire_recipient("b")
        assert scheduler.pop(rng).payload == "live"
        assert scheduler.pop(rng) is None

    def test_begin_run_clears_adapter_state(self, rng):
        scheduler = self.SendTimeScheduler()
        scheduler.push(Message.create("a", "b", "stale"))
        scheduler.retire_recipient("c")
        scheduler.begin_run()
        assert scheduler.pop(rng) is None
        scheduler.push(Message.create("a", "c", "fresh"))
        assert scheduler.pop(rng).payload == "fresh"


class TestIndexedLiveList:
    """The order-statistics structure behind RandomScheduler."""

    def test_matches_naive_list_through_churn_and_compaction(self):
        rng = random.Random(13)
        live = _IndexedLiveList(capacity=8)  # tiny capacity: forces rebuilds
        naive = []
        counter = 0
        for _ in range(2000):
            action = rng.random()
            if action < 0.55 or not naive:
                message = Message.create(
                    "s", f"r{rng.randrange(5)}", counter, msg_id=counter
                )
                counter += 1
                live.append(message)
                naive.append(message)
            elif action < 0.9:
                k = rng.randrange(len(naive))
                assert live.pop_kth(k) is naive.pop(k)
            else:
                key = f"r{rng.randrange(5)}"
                live.kill_key(key)
                naive = [m for m in naive if m.recipient != key]
            assert len(live) == len(naive)
        while naive:
            assert live.pop_kth(0) is naive.pop(0)


class TestRoundRobinHashSeedRegression:
    def test_trace_is_independent_of_pythonhashseed(self):
        """Seed bug: recipient discovery iterated a set, so the rotation (and the
        whole trace) changed with string hash randomisation.  Two interpreter
        runs with different hash seeds must now produce identical traces."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.net.latency import ConstantLatencyModel\n"
            "from repro.net.network import SimNetwork\n"
            "from repro.net.node import Node\n"
            "from repro.net.scheduler import RoundRobinScheduler\n"
            "class Gossip(Node):\n"
            "    def on_start(self, ctx):\n"
            "        ctx.broadcast(list(ctx.peers), 'hello', tag='hi')\n"
            "    def on_message(self, ctx, message):\n"
            "        if message.payload == 'hello':\n"
            "            ctx.send(message.sender, 'ack')\n"
            "        elif not self.finished:\n"
            "            self.acks = getattr(self, 'acks', 0) + 1\n"
            "            if self.acks >= 3:\n"
            "                self.finish(self.acks)\n"
            "net = SimNetwork(latency_model=ConstantLatencyModel(0.01),\n"
            "                 scheduler=RoundRobinScheduler(), seed=0)\n"
            "trace = []\n"
            "names = ['alpha', 'beta', 'gamma', 'delta', 'epsilon', 'zeta']\n"
            "for name in names:\n"
            "    node = Gossip(name)\n"
            "    original = node.on_message\n"
            "    def wrap(ctx, message, _orig=original):\n"
            "        trace.append(message.msg_id)\n"
            "        _orig(ctx, message)\n"
            "    node.on_message = wrap\n"
            "    net.add_node(node)\n"
            "net.run()\n"
            "print(','.join(map(str, trace)))\n"
        )

        def run_with_hash_seed(value):
            env = dict(os.environ, PYTHONHASHSEED=value)
            result = subprocess.run(
                [sys.executable, "-c", script, src],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return result.stdout.strip()

        first = run_with_hash_seed("1")
        second = run_with_hash_seed("4242")
        assert first  # the scenario actually delivered something
        assert first == second
