"""Tests for message schedulers (fairness and ordering)."""

import random

import pytest

from repro.net.message import Message
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


def make_messages():
    return [
        Message.create("a", "b", 1, send_time=0.0, arrival_time=0.3),
        Message.create("b", "c", 2, send_time=0.0, arrival_time=0.1),
        Message.create("c", "a", 3, send_time=0.0, arrival_time=0.2),
    ]


@pytest.fixture
def rng():
    return random.Random(0)


class TestFairScheduler:
    def test_selects_earliest_arrival(self, rng):
        messages = make_messages()
        selected = FairScheduler().select(messages, rng)
        assert selected.payload == 2

    def test_ties_broken_by_message_id(self, rng):
        first = Message.create("a", "b", "x", arrival_time=0.5)
        second = Message.create("a", "c", "y", arrival_time=0.5)
        assert FairScheduler().select([second, first], rng) is first


class TestRoundRobinScheduler:
    def test_rotates_over_recipients(self, rng):
        scheduler = RoundRobinScheduler(order=["a", "b", "c"])
        messages = make_messages()
        picks = []
        pool = list(messages)
        while pool:
            chosen = scheduler.select(pool, rng)
            picks.append(chosen.recipient)
            pool.remove(chosen)
        assert set(picks) == {"a", "b", "c"}

    def test_skips_recipients_without_traffic(self, rng):
        scheduler = RoundRobinScheduler(order=["z", "b"])
        messages = [Message.create("a", "b", 1, arrival_time=0.1)]
        assert scheduler.select(messages, rng).recipient == "b"


class TestRandomScheduler:
    def test_all_messages_eventually_selected(self, rng):
        scheduler = RandomScheduler()
        pool = make_messages()
        seen = set()
        while pool:
            chosen = scheduler.select(pool, rng)
            seen.add(chosen.msg_id)
            pool.remove(chosen)
        assert len(seen) == 3


class TestAdversarialScheduler:
    def test_defers_targeted_traffic(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}))
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean = Message.create("b", "c", "c", arrival_time=1.0)
        # Even though the targeted message arrives first, the clean one is delivered.
        assert scheduler.select([targeted, clean], rng) is clean

    def test_fairness_budget_forces_delivery(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}), max_deferrals=3)
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        clean_pool = [
            Message.create("b", "c", i, arrival_time=1.0 + i) for i in range(10)
        ]
        deliveries = []
        pool = [targeted] + clean_pool
        while pool:
            chosen = scheduler.select(pool, rng)
            deliveries.append(chosen)
            pool.remove(chosen)
        # The targeted message is not starved forever: it appears within the first
        # max_deferrals+1 deliveries.
        assert targeted in deliveries[: scheduler.max_deferrals + 1]

    def test_only_targeted_traffic_left_is_delivered(self, rng):
        scheduler = AdversarialScheduler(targets=frozenset({"a"}))
        targeted = Message.create("a", "b", "t", arrival_time=0.0)
        assert scheduler.select([targeted], rng) is targeted
