"""Tests for protocol-block composition (BlockHost, BlockContext, ProtocolNode)."""

import pytest

from tests.conftest import run_block_network

from repro.net.network import SimNetwork
from repro.net.protocol import BlockContext, BlockHost, ProtocolBlock, ProtocolNode
from repro.net.scheduler import RandomScheduler


class GatherBlock(ProtocolBlock):
    """Broadcasts a value and completes with the sorted set of all values seen."""

    def __init__(self, name, value):
        super().__init__(name)
        self.value = value
        self._seen = {}

    def on_start(self, ctx):
        self._seen[ctx.node_id] = self.value
        ctx.broadcast(self.value, subtag="v")
        self._check(ctx)

    def on_message(self, ctx, sender, subtag, payload):
        self._seen[sender] = payload
        self._check(ctx)

    def _check(self, ctx):
        if set(self._seen) == set(ctx.participants):
            self.complete(tuple(sorted(self._seen.values())))


class ParentBlock(ProtocolBlock):
    """Spawns two children in sequence and completes with both results."""

    def __init__(self, name, value):
        super().__init__(name)
        self.value = value
        self._ctx = None
        self._first = None

    def on_start(self, ctx):
        self._ctx = ctx
        ctx.spawn("first", GatherBlock("first", self.value), self._on_first)

    def on_message(self, ctx, sender, subtag, payload):
        pass

    def _on_first(self, block):
        self._first = block.result
        self._ctx.spawn("second", GatherBlock("second", self.value * 10), self._on_second)

    def _on_second(self, block):
        self.complete((self._first, block.result))


class TestBlockBasics:
    def test_complete_is_first_write_wins(self):
        block = GatherBlock("g", 1)
        block.complete("a")
        block.complete("b")
        assert block.result == "a"

    def test_result_before_completion_raises(self):
        with pytest.raises(RuntimeError):
            GatherBlock("g", 1).result


class TestSingleBlock:
    def test_gather_block_collects_all_values(self):
        outputs = run_block_network(["a", "b", "c"], lambda nid: GatherBlock("root", nid))
        assert outputs == {
            "a": ("a", "b", "c"),
            "b": ("a", "b", "c"),
            "c": ("a", "b", "c"),
        }

    def test_gather_under_random_schedule(self):
        outputs = run_block_network(
            ["a", "b", "c", "d"],
            lambda nid: GatherBlock("root", nid),
            scheduler=RandomScheduler(),
            seed=5,
        )
        assert all(v == ("a", "b", "c", "d") for v in outputs.values())


class TestComposition:
    def test_chained_children_complete_parent(self):
        outputs = run_block_network(["a", "b", "c"], lambda nid: ParentBlock("root", 1))
        assert all(v == ((1, 1, 1), (10, 10, 10)) for v in outputs.values())

    def test_messages_for_future_blocks_are_buffered(self):
        # Node "a" activates the second child only after the first one completes;
        # traffic from faster peers must not be lost in the meantime.  The chained
        # parent exercises exactly that path; the assertion is simply completion.
        outputs = run_block_network(["a", "b"], lambda nid: ParentBlock("root", 2))
        assert all(v == ((2, 2), (20, 20)) for v in outputs.values())

    def test_duplicate_block_path_rejected(self):
        host = BlockHost(lambda: None, ["a"])

        class Trivial(ProtocolBlock):
            def on_start(self, ctx):
                pass

            def on_message(self, ctx, sender, subtag, payload):
                pass

        # Activation calls on_start with a context built from the provider above;
        # the trivial block never touches it, so None is fine here.
        host.activate("x", Trivial("x"), lambda block: None)
        with pytest.raises(ValueError):
            host.activate("x", Trivial("x"), lambda block: None)


class TestProtocolNode:
    def test_non_block_traffic_goes_to_hook(self):
        received = []

        class NeverBlock(ProtocolBlock):
            """A root block that never completes, so non-block traffic is observable."""

            def on_start(self, ctx):
                pass

            def on_message(self, ctx, sender, subtag, payload):
                pass

        class Observer(ProtocolNode):
            def on_other_message(self, ctx, message):
                received.append(message.payload)
                self.finish("observed")

        class Pinger(ProtocolNode):
            def on_start(self, ctx):
                super().on_start(ctx)
                ctx.send("obs", "hello", tag="plain")
                self.finish("sent")

        net = SimNetwork()
        ids = ["ping", "obs"]
        net.add_node(Pinger("ping", ids, "root", lambda: NeverBlock("root")))
        net.add_node(Observer("obs", ids, "root", lambda: NeverBlock("root")))
        net.run()
        assert received == ["hello"]
        assert net.node("obs").output == "observed"
