"""Tests for the discrete-event network simulator."""

import pytest

from repro.net.latency import ConstantLatencyModel
from repro.net.message import Message
from repro.net.network import QuiescenceError, SimNetwork
from repro.net.node import Node, NodeContext


class Echo(Node):
    """Replies to every "ping" with a "pong" and finishes after one exchange."""

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if message.payload == "ping":
            ctx.send(message.sender, "pong")
        elif message.payload == "pong":
            self.finish("done")


class Starter(Echo):
    def __init__(self, node_id: str, target: str) -> None:
        super().__init__(node_id)
        self.target = target

    def on_start(self, ctx: NodeContext) -> None:
        ctx.send(self.target, "ping")


class TimerNode(Node):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.set_timer(0.5, "wake")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if message.is_timer():
            self.finish(ctx.now())


class Charger(Node):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.charge(0.25)
        self.finish("charged")

    def on_message(self, ctx, message):  # pragma: no cover - never called
        pass


class LoopForever(Node):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.send(self.node_id if False else ctx.peers[1], 0)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        ctx.send(message.sender, message.payload + 1)


class TestBasicExecution:
    def test_ping_pong_completes(self):
        net = SimNetwork()
        net.add_node(Starter("a", target="b"))
        net.add_node(Echo("b"))
        stats = net.run()
        assert net.node("a").finished
        assert net.node("a").output == "done"
        assert stats.messages_delivered == 2

    def test_duplicate_node_ids_rejected(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        with pytest.raises(ValueError):
            net.add_node(Echo("a"))

    def test_unknown_recipient_raises(self):
        class Bad(Node):
            def on_start(self, ctx):
                ctx.send("ghost", "boo")

            def on_message(self, ctx, message):
                pass

        net = SimNetwork()
        net.add_node(Bad("a"))
        with pytest.raises(KeyError):
            net.run()

    def test_add_node_after_start_rejected(self):
        net = SimNetwork()
        net.add_node(Echo("a"))
        net.start()
        with pytest.raises(RuntimeError):
            net.add_node(Echo("b"))

    def test_quiescence_error_on_livelock(self):
        net = SimNetwork()
        net.add_node(LoopForever("a"))
        net.add_node(LoopForever("b"))
        with pytest.raises(QuiescenceError):
            net.run(max_steps=50)


class TestVirtualTime:
    def test_latency_advances_clocks(self):
        net = SimNetwork(latency_model=ConstantLatencyModel(0.1))
        net.add_node(Starter("a", target="b"))
        net.add_node(Echo("b"))
        stats = net.run()
        # Two hops of 0.1 s each on the critical path.
        assert stats.elapsed_time == pytest.approx(0.2)

    def test_timer_fires_at_virtual_time(self):
        net = SimNetwork()
        net.add_node(TimerNode("t"))
        net.run()
        assert net.node("t").output == pytest.approx(0.5)

    def test_explicit_charge_counts_as_busy_time(self):
        net = SimNetwork()
        net.add_node(Charger("c"))
        stats = net.run()
        assert stats.elapsed_time == pytest.approx(0.25)
        assert stats.node_busy["c"] == pytest.approx(0.25)

    def test_messages_to_finished_nodes_are_dropped(self):
        class Sender(Node):
            def on_start(self, ctx):
                ctx.send("sink", 1)
                ctx.send("sink", 2)

            def on_message(self, ctx, message):
                pass

        class Sink(Node):
            def on_message(self, ctx, message):
                self.finish(message.payload)

        net = SimNetwork()
        net.add_node(Sender("src"))
        net.add_node(Sink("sink"))
        stats = net.run()
        assert net.node("sink").output in (1, 2)
        assert stats.messages_dropped >= 1

    def test_stats_group_traffic_by_block_path(self):
        class Tagged(Node):
            def on_start(self, ctx):
                ctx.send("b", 1, tag="blk|x")

            def on_message(self, ctx, message):
                self.finish(None)

        class Receiver(Node):
            def on_message(self, ctx, message):
                self.finish(None)

        net = SimNetwork()
        net.add_node(Tagged("a"))
        net.add_node(Receiver("b"))
        stats = net.run()
        assert stats.messages_by_tag.get("blk") == 1

    def test_deterministic_given_seed(self):
        def run_once():
            net = SimNetwork(latency_model=ConstantLatencyModel(0.01), seed=3)
            net.add_node(Starter("a", target="b"))
            net.add_node(Echo("b"))
            stats = net.run()
            return stats.elapsed_time, stats.messages_delivered

        assert run_once() == run_once()


class Recorder(Node):
    """Echo node that records the msg_id of every delivery it sees."""

    def __init__(self, node_id: str, trace, target: str = "") -> None:
        super().__init__(node_id)
        self.trace = trace
        self.target = target

    def on_start(self, ctx):
        if self.target:
            ctx.send(self.target, "ping")

    def on_message(self, ctx, message):
        self.trace.append(message.msg_id)
        if message.payload == "ping":
            ctx.send(message.sender, "pong")
        elif message.payload == "pong":
            self.finish("done")


class TestPerNetworkMessageIds:
    def _trace_one_run(self):
        trace = []
        net = SimNetwork(latency_model=ConstantLatencyModel(0.01), seed=3)
        net.add_node(Recorder("a", trace, target="b"))
        net.add_node(Recorder("b", trace))
        net.run()
        return trace

    def test_ids_do_not_depend_on_earlier_networks(self):
        """Seed bug-by-design: ids came from a process-global counter, so traces
        depended on how many networks ran earlier in the process."""
        first = self._trace_one_run()
        Message.create("x", "y", "unrelated traffic elsewhere in the process")
        second = self._trace_one_run()
        assert first == second
        assert min(first) == 0  # allocation starts at zero for every network

    def test_messages_outside_a_network_use_the_global_counter(self):
        first = Message.create("a", "b", 1)
        self._trace_one_run()  # network ids stay out of the global sequence
        second = Message.create("a", "b", 2)
        assert second.msg_id > first.msg_id


class TestInFlightIntrospection:
    def test_in_flight_count_matches_list_without_copying(self):
        net = SimNetwork(latency_model=ConstantLatencyModel(0.5))
        net.add_node(Starter("a", target="b"))
        net.add_node(Echo("b"))
        net.start()
        assert net.in_flight_count == 1
        assert len(net.in_flight) == net.in_flight_count
        net.run()
        assert net.in_flight_count == 0
        assert net.in_flight == []
