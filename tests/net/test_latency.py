"""Tests for latency models."""

import random

import pytest

from repro.net.latency import (
    BandwidthLatencyModel,
    ConstantLatencyModel,
    LanWanLatencyModel,
    UniformLatencyModel,
    ZeroLatencyModel,
)


@pytest.fixture
def rng():
    return random.Random(7)


class TestBasicModels:
    def test_zero_latency(self, rng):
        assert ZeroLatencyModel().delay("a", "b", 1000, rng) == 0.0

    def test_constant_latency(self, rng):
        model = ConstantLatencyModel(seconds=0.01)
        assert model.delay("a", "b", 0, rng) == pytest.approx(0.01)
        assert model.delay("a", "b", 10**6, rng) == pytest.approx(0.01)

    def test_uniform_latency_within_bounds(self, rng):
        model = UniformLatencyModel(low=0.001, high=0.005)
        for _ in range(100):
            delay = model.delay("a", "b", 0, rng)
            assert 0.001 <= delay <= 0.005

    def test_uniform_latency_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(low=0.01, high=0.001)

    def test_local_delay_is_zero(self):
        assert ConstantLatencyModel(0.5).local_delay() == 0.0


class TestBandwidthModel:
    def test_size_increases_delay(self, rng):
        model = BandwidthLatencyModel(base=0.001, bandwidth_bytes_per_s=1e6, jitter=0.0)
        small = model.delay("a", "b", 100, rng)
        large = model.delay("a", "b", 100_000, rng)
        assert large > small
        assert small == pytest.approx(0.001 + 100 / 1e6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLatencyModel(base=-1)
        with pytest.raises(ValueError):
            BandwidthLatencyModel(bandwidth_bytes_per_s=0)


class TestLanWanModel:
    def test_same_site_uses_lan(self, rng):
        model = LanWanLatencyModel(
            site_of={"a": "s1", "b": "s1", "c": "s2"},
            lan=ConstantLatencyModel(0.0001),
            wan=ConstantLatencyModel(0.01),
        )
        assert model.delay("a", "b", 0, rng) == pytest.approx(0.0001)
        assert model.delay("a", "c", 0, rng) == pytest.approx(0.01)

    def test_unknown_nodes_treated_as_remote(self, rng):
        model = LanWanLatencyModel(
            site_of={},
            lan=ConstantLatencyModel(0.0001),
            wan=ConstantLatencyModel(0.02),
        )
        assert model.delay("x", "y", 0, rng) == pytest.approx(0.02)
