"""Differential proof: the event-queue core is bit-identical to the seed core.

Every combination of (scheduler, seed, latency model) drives the same node
program through the production :class:`SimNetwork` (heap-based queue protocol)
and through :class:`tests.net.seed_reference.SeedSimNetwork` (faithful port of
the list-based seed core), then compares:

* the full delivery trace — msg_id, endpoints, tag, send/arrival times, wire
  size, and the recipient's virtual clock after delivery, in delivery order;
* the final :class:`NetworkStats` (all fields, exact float equality);
* node outputs, unfinished nodes, leftover in-flight messages, and per-channel
  delivery counters.

The workload is deliberately adversarial for the queue rewrite: staggered node
finishes (messages parked for recipients that retire mid-run), a node that
finishes in ``on_start`` (pushes to an already-retired recipient), nodes that
never finish (quiescence drain with drops), timers, node-RNG-driven fan-out
(broadcast amortisation path), and payload sizes that feed a bandwidth latency
model.  Jittered latency models additionally lock the RNG draw order per send.
"""

from __future__ import annotations

import pytest

from repro.net.latency import (
    BandwidthLatencyModel,
    ConstantLatencyModel,
    UniformLatencyModel,
)
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.node import Node, NodeContext
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

from tests.net.seed_reference import (
    SeedAdversarialScheduler,
    SeedFairScheduler,
    SeedRandomScheduler,
    SeedRoundRobinScheduler,
    SeedSimNetwork,
)

NUM_NODES = 10


def _budget(i: int):
    if i == 0:
        return 0  # finishes during on_start: pushes to it hit a retired recipient
    if i % 3 == 1:
        return None  # never finishes: forces the quiescence drain path
    return 4 + i


class ChatterNode(Node):
    """Deterministic random-traffic node; records every delivery it sees."""

    def __init__(self, node_id: str, budget, trace: list) -> None:
        super().__init__(node_id)
        self.budget = budget
        self.trace = trace
        self.timers_left = 2
        self.received = 0

    def _peers(self, ctx: NodeContext):
        return [p for p in ctx.peers if p != self.node_id]

    def on_start(self, ctx: NodeContext) -> None:
        if self.budget == 0:
            self.finish(f"{self.node_id}:instant")
            return
        index = int(self.node_id[1:])
        peers = self._peers(ctx)
        for k in (1, 2):
            target = peers[(index + k) % len(peers)]
            ctx.send(target, "g" * (1 + ctx.rng.randrange(60)), tag="greet")
        ctx.set_timer(0.01 + 0.001 * index, "tick")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        self.trace.append(
            (
                message.msg_id,
                message.sender,
                message.recipient,
                message.tag,
                message.send_time,
                message.arrival_time,
                message.size_bytes,
                ctx.now(),
            )
        )
        self.received += 1
        rng = ctx.rng
        if message.is_timer():
            if self.timers_left > 0:
                self.timers_left -= 1
                peers = self._peers(ctx)
                target = peers[rng.randrange(len(peers))]
                ctx.send(target, "t" * (1 + rng.randrange(40)), tag="timer-fanout")
                if self.timers_left:
                    ctx.set_timer(0.005 * (1 + rng.random()), "tick")
        else:
            if rng.random() < 0.5:
                ctx.send(
                    message.sender, "r" * (1 + rng.randrange(120)), tag="reply"
                )
            if rng.random() < 0.15:
                ctx.broadcast(self._peers(ctx)[:2], "b" * (1 + rng.randrange(30)), tag="gossip")
            if rng.random() < 0.2:
                ctx.charge(0.0003 * rng.random())
        if self.budget is not None and not self.finished:
            self.budget -= 1
            if self.budget <= 0:
                self.finish((self.node_id, self.received))


SCHEDULERS = {
    "fair": (FairScheduler, SeedFairScheduler),
    "round_robin": (RoundRobinScheduler, SeedRoundRobinScheduler),
    "round_robin_preset": (
        lambda: RoundRobinScheduler(order=["n3", "n1", "n9"]),
        lambda: SeedRoundRobinScheduler(order=["n3", "n1", "n9"]),
    ),
    "random": (RandomScheduler, SeedRandomScheduler),
    "adversarial": (
        lambda: AdversarialScheduler(targets=frozenset({"n1", "n4"}), max_deferrals=3),
        lambda: SeedAdversarialScheduler(targets=frozenset({"n1", "n4"}), max_deferrals=3),
    ),
    "adversarial_tight": (
        lambda: AdversarialScheduler(targets=frozenset({"n2", "n7"}), max_deferrals=1),
        lambda: SeedAdversarialScheduler(targets=frozenset({"n2", "n7"}), max_deferrals=1),
    ),
}

LATENCIES = {
    "constant": lambda: ConstantLatencyModel(0.003),
    "uniform_jitter": lambda: UniformLatencyModel(0.001, 0.01),
    "bandwidth": lambda: BandwidthLatencyModel(
        base=0.001, bandwidth_bytes_per_s=1e5, jitter=0.0005
    ),
}


def _run(network) -> dict:
    trace: list = []
    network.add_nodes(
        [ChatterNode(f"n{i}", _budget(i), trace) for i in range(NUM_NODES)]
    )
    stats = network.run(max_steps=50_000)
    assert len(trace) == stats.messages_delivered
    return {
        "trace": trace,
        "stats": stats,
        "outputs": {nid: network.node(nid).output for nid in network.node_ids},
        "unfinished": network.unfinished_nodes(),
        "in_flight": sorted(m.msg_id for m in network.in_flight),
        "channels": {
            key: (channel.delivered_count, channel.delivered_bytes)
            for key, channel in network._channels.items()
        },
    }


@pytest.mark.parametrize("latency_name", sorted(LATENCIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_queue_core_bit_identical_to_seed_core(scheduler_name, seed, latency_name):
    new_factory, seed_factory = SCHEDULERS[scheduler_name]
    latency_factory = LATENCIES[latency_name]

    new_result = _run(
        SimNetwork(latency_model=latency_factory(), scheduler=new_factory(), seed=seed)
    )
    seed_result = _run(
        SeedSimNetwork(
            latency_model=latency_factory(), scheduler=seed_factory(), seed=seed
        )
    )

    assert new_result["trace"] == seed_result["trace"]
    assert new_result["stats"] == seed_result["stats"]
    assert new_result["outputs"] == seed_result["outputs"]
    assert new_result["unfinished"] == seed_result["unfinished"]
    assert new_result["in_flight"] == seed_result["in_flight"]
    assert new_result["channels"] == seed_result["channels"]


def test_workload_exercises_the_interesting_paths():
    """Guard that the differential scenario actually hits parking and drains."""
    result = _run(
        SimNetwork(latency_model=ConstantLatencyModel(0.003), scheduler=FairScheduler())
    )
    stats = result["stats"]
    assert stats.messages_delivered > 50
    assert stats.messages_dropped > 0  # traffic to finished nodes got drained
    assert result["unfinished"]  # some nodes never finish
    assert result["outputs"]["n0"] == "n0:instant"  # retired before any traffic


class _SendTimeScheduler(Scheduler):
    """Third-party style scheduler: only implements the legacy ``select``."""

    def select(self, in_flight, rng):
        return min(in_flight, key=lambda m: (m.send_time, m.msg_id))


class _DuckSendTimeScheduler:
    """Pre-queue duck-typed scheduler: not even a Scheduler subclass."""

    def select(self, in_flight, rng):
        return min(in_flight, key=lambda m: (m.send_time, m.msg_id))

    def reset(self):
        pass


@pytest.mark.parametrize("factory", [_SendTimeScheduler, _DuckSendTimeScheduler])
def test_legacy_select_schedulers_still_work_through_the_adapter(factory):
    """select()-only schedulers (subclassed or duck-typed) replay seed semantics."""
    new_result = _run(
        SimNetwork(
            latency_model=ConstantLatencyModel(0.002), scheduler=factory(), seed=5
        )
    )
    seed_result = _run(
        SeedSimNetwork(
            latency_model=ConstantLatencyModel(0.002),
            scheduler=_DuckSendTimeScheduler(),
            seed=5,
        )
    )
    assert new_result["trace"] == seed_result["trace"]
    assert new_result["stats"] == seed_result["stats"]
