"""Tests for the fault-injection plane and the recovery layer.

Covers the FAULTS registry surface, each shipped fault model's predicate, the
FaultPlan determinism contract (own RNG stream, journal digest stability), and
the SimNetwork wiring: conservation, retransmission with bounded backoff,
duplicate suppression, crash/restart with state loss, and the guarantee that an
unarmed plan is a behavioural no-op.
"""

import random

import pytest

from repro.net.faults import (
    FAULTS,
    CrashFault,
    DuplicateFault,
    FaultPlan,
    LatencySpikeFault,
    LossFault,
    PartitionFault,
    RecoveryPolicy,
    ReorderFault,
    SendEffect,
    TornAppendFault,
    make_fault,
)
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.node import Node, NodeContext


def msg(sender="a", recipient="b", tag="t", send_time=0.0, arrival_time=0.01, msg_id=0):
    return Message(
        sender=sender,
        recipient=recipient,
        payload="x",
        tag=tag,
        send_time=send_time,
        arrival_time=arrival_time,
        size_bytes=8,
        msg_id=msg_id,
    )


# ---------------------------------------------------------------- registry ---
class TestRegistry:
    def test_all_kinds_registered(self):
        assert FAULTS.available() == [
            "crash",
            "duplicate",
            "latency_spike",
            "loss",
            "partition",
            "reorder",
            "torn_append",
        ]

    def test_make_fault_builds_each_kind(self):
        assert isinstance(make_fault("loss", {"rate": 0.5}), LossFault)
        assert isinstance(make_fault("duplicate"), DuplicateFault)
        assert isinstance(make_fault("reorder"), ReorderFault)
        assert isinstance(make_fault("latency_spike"), LatencySpikeFault)
        assert isinstance(make_fault("partition", {"nodes": ["a"]}), PartitionFault)
        assert isinstance(make_fault("crash", {"node": "a"}), CrashFault)
        assert isinstance(make_fault("torn_append"), TornAppendFault)

    def test_unknown_kind_is_a_spec_error(self):
        from repro.scenarios.spec import SpecError

        with pytest.raises(SpecError):
            make_fault("meteor_strike")

    def test_bad_params_are_spec_errors_with_path(self):
        from repro.scenarios.spec import SpecError

        with pytest.raises(SpecError, match="faults"):
            make_fault("loss", {"rate": 2.0})
        with pytest.raises(SpecError):
            make_fault("crash", {})  # node is required
        with pytest.raises(SpecError):
            make_fault("partition", {"nodes": []})


# ------------------------------------------------------------- fault models --
class TestFaultModels:
    def test_loss_is_probabilistic_and_tag_scoped(self):
        fault = LossFault(rate=1.0, tag_substring="ping")
        rng = random.Random(0)
        assert fault.on_send(msg(tag="ping"), rng) == {"drop": True, "cause": "loss"}
        assert fault.on_send(msg(tag="other"), rng) is None
        assert LossFault(rate=0.0).on_send(msg(), rng) is None

    def test_duplicate_reports_copy_count(self):
        fault = DuplicateFault(rate=1.0, copies=3)
        effect = fault.on_send(msg(), random.Random(0))
        assert effect == {"duplicates": 3, "cause": "duplicate"}

    def test_reorder_delay_is_bounded_by_magnitude(self):
        fault = ReorderFault(rate=1.0, magnitude=0.02)
        rng = random.Random(7)
        for _ in range(50):
            effect = fault.on_send(msg(), rng)
            assert 0.0 <= effect["extra_delay"] <= 0.02

    def test_latency_spike_windows_on_send_time(self):
        fault = LatencySpikeFault(at=1.0, duration=0.5, extra=0.1)
        rng = random.Random(0)
        assert fault.on_send(msg(send_time=0.9), rng) is None
        assert fault.on_send(msg(send_time=1.2), rng)["extra_delay"] == 0.1
        assert fault.on_send(msg(send_time=1.5), rng) is None

    def test_partition_drops_only_boundary_crossings_in_window(self):
        fault = PartitionFault(nodes=["a"], at=0.0, duration=1.0)
        rng = random.Random(0)
        assert fault.on_send(msg(sender="a", recipient="b", arrival_time=0.5), rng)[
            "drop"
        ]
        # Same side of the partition: no effect.
        assert fault.on_send(msg(sender="b", recipient="c", arrival_time=0.5), rng) is None
        # Healed (arrival after the window): delivered.
        assert fault.on_send(msg(sender="a", recipient="b", arrival_time=1.5), rng) is None

    def test_crash_drops_in_window_then_restarts_once(self):
        fault = CrashFault(node="n1", at=1.0, duration=1.0)
        rng = random.Random(0)
        assert fault.on_deliver(msg(recipient="n1", arrival_time=1.5), rng)["drop"]
        assert fault.on_deliver(msg(recipient="other", arrival_time=1.5), rng) is None
        first = fault.on_deliver(msg(recipient="n1", arrival_time=2.5), rng)
        assert first == {"restart": True, "cause": "restart"}
        # Restart fires exactly once...
        assert fault.on_deliver(msg(recipient="n1", arrival_time=2.6), rng) is None
        # ...until reset rewinds the run.
        fault.reset()
        assert fault.on_deliver(msg(recipient="n1", arrival_time=2.5), rng)["restart"]

    def test_torn_append_is_not_network_level(self):
        fault = TornAppendFault(drop_bytes=5)
        assert fault.network_level is False
        assert FaultPlan([fault]).armed is False
        assert FaultPlan([fault]).torn_appends() == [fault]


# ------------------------------------------------------------ recovery policy --
class TestRecoveryPolicy:
    def test_backoff_is_exponential_in_virtual_time(self):
        policy = RecoveryPolicy(base_backoff=0.05, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.20)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(base_backoff=-0.1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)


# ----------------------------------------------------------------- the plan --
class TestFaultPlan:
    def test_unarmed_plan_has_no_network_models(self):
        assert FaultPlan().armed is False
        assert FaultPlan([TornAppendFault()]).armed is False
        assert FaultPlan([LossFault(rate=0.5)]).armed is True

    def test_first_drop_wins_and_stops_the_gauntlet(self):
        plan = FaultPlan([LossFault(rate=1.0), DuplicateFault(rate=1.0)], seed=0)
        effect = plan.apply_send(msg())
        assert effect.drop is True
        assert effect.duplicates == 0  # duplicate model never consulted
        assert [e["event"] for e in plan.events] == ["loss"]

    def test_effects_accumulate_across_models(self):
        plan = FaultPlan(
            [DuplicateFault(rate=1.0, copies=2), ReorderFault(rate=1.0, magnitude=0.01)],
            seed=0,
        )
        effect = plan.apply_send(msg())
        assert effect.drop is False
        assert effect.duplicates == 2
        assert effect.extra_delay > 0.0
        assert effect.injected == 2

    def test_clean_pass_returns_shared_noop_effect(self):
        plan = FaultPlan([LossFault(rate=0.0)], seed=0)
        assert plan.apply_send(msg()) == SendEffect()
        assert plan.events == []

    def test_journal_digest_is_stable_across_replays(self):
        def run():
            plan = FaultPlan(
                [LossFault(rate=0.5), ReorderFault(rate=0.5)], seed=11
            )
            for i in range(40):
                plan.apply_send(msg(msg_id=i, arrival_time=0.001 * i))
            return plan.digest()

        assert run() == run()

    def test_reset_rewinds_rng_and_journal(self):
        plan = FaultPlan([LossFault(rate=0.5)], seed=3)
        for i in range(20):
            plan.apply_send(msg(msg_id=i))
        first = plan.digest()
        plan.reset()
        assert plan.events == []
        for i in range(20):
            plan.apply_send(msg(msg_id=i))
        assert plan.digest() == first

    def test_plan_rng_is_independent_of_network_rng(self):
        # Two plans with the same seed draw identically regardless of what any
        # other RNG in the process does in between.
        plan_a = FaultPlan([LossFault(rate=0.5)], seed=5)
        random.Random(99).random()
        plan_b = FaultPlan([LossFault(rate=0.5)], seed=5)
        for i in range(30):
            plan_a.apply_send(msg(msg_id=i))
            plan_b.apply_send(msg(msg_id=i))
        assert plan_a.digest() == plan_b.digest()


# ------------------------------------------------------------ network wiring --
class Ping(Node):
    """Each node greets every peer once and finishes on a full set of greetings."""

    def __init__(self, node_id, peers):
        super().__init__(node_id)
        self._peers = peers
        self._got = set()

    def on_start(self, ctx: NodeContext) -> None:
        self._got = set()  # restart loses state
        for peer in self._peers:
            if peer != self.node_id:
                ctx.send(peer, ("hello", self.node_id), tag="ping")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        self._got.add(message.payload[1])
        if len(self._got) >= len(self._peers) - 1:
            self.finish(output=sorted(self._got))


PEERS = ["n0", "n1", "n2"]


def run_ping(plan=None, seed=0):
    network = SimNetwork(
        latency_model=UniformLatencyModel(0.001, 0.01), seed=seed, fault_plan=plan
    )
    network.add_nodes([Ping(peer, PEERS) for peer in PEERS])
    stats = network.run()
    return network, stats


class TestNetworkWiring:
    def test_unarmed_plan_matches_no_plan_bit_for_bit(self):
        _, baseline = run_ping(plan=None, seed=42)
        _, with_empty = run_ping(plan=FaultPlan(), seed=42)
        _, with_store_only = run_ping(plan=FaultPlan([TornAppendFault()]), seed=42)
        assert with_empty == baseline
        assert with_store_only == baseline

    def test_arming_does_not_perturb_latency_or_schedule(self):
        # A plan whose models never fire still burns zero draws from the
        # network RNG, so delivery stats are identical to the fault-free run.
        _, baseline = run_ping(plan=None, seed=7)
        plan = FaultPlan([LossFault(rate=0.0)], seed=7)
        _, armed = run_ping(plan=plan, seed=7)
        assert armed.messages_delivered == baseline.messages_delivered
        assert armed.elapsed_time == baseline.elapsed_time

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_conservation_under_loss(self, seed):
        plan = FaultPlan([LossFault(rate=0.3)], seed=seed)
        network, stats = run_ping(plan=plan, seed=seed)
        assert (
            stats.messages_sent
            == stats.messages_delivered + stats.messages_dropped + stats.messages_lost
        )
        assert network.in_flight_count == 0
        assert stats.messages_lost > 0
        assert stats.retransmissions > 0

    def test_retransmission_recovers_lost_messages(self):
        plan = FaultPlan([LossFault(rate=0.4)], seed=1, recovery=RecoveryPolicy())
        network, stats = run_ping(plan=plan, seed=1)
        assert network.unfinished_nodes() == []
        assert stats.retransmissions >= stats.messages_lost > 0
        retx = [e for e in plan.events if e["event"] == "retransmit"]
        assert retx and all(e["attempt"] >= 1 for e in retx)

    def test_retransmission_respects_literal_bound(self):
        plan = FaultPlan(
            [LossFault(rate=1.0)],
            seed=0,
            recovery=RecoveryPolicy(max_retries=2),
        )
        network, stats = run_ping(plan=plan, seed=0)
        # Every original plus exactly max_retries copies per origin was sent
        # and lost; the journal records the exhaustion.
        assert stats.messages_delivered == 0
        assert stats.retransmissions == 2 * 6  # 6 origins, 2 bounded retries each
        exhausted = [e for e in plan.events if e["event"] == "retransmit_exhausted"]
        assert len(exhausted) == 6
        assert all(e["attempts"] == 2 for e in exhausted)
        assert (
            stats.messages_sent
            == stats.messages_delivered + stats.messages_dropped + stats.messages_lost
        )

    def test_recovery_can_be_disabled(self):
        plan = FaultPlan(
            [LossFault(rate=1.0)],
            seed=0,
            recovery=RecoveryPolicy(enabled=False),
        )
        _, stats = run_ping(plan=plan, seed=0)
        assert stats.retransmissions == 0
        assert stats.messages_lost == stats.messages_sent

    def test_duplicates_are_delivered_but_suppressed(self):
        plan = FaultPlan([DuplicateFault(rate=1.0, copies=1)], seed=0)
        network, stats = run_ping(plan=plan, seed=0)
        assert stats.duplicates_suppressed > 0
        # Suppressed copies count as delivered (at-least-once transport)...
        assert stats.messages_delivered > 6
        # ...but each node processed each greeting exactly once.
        for peer in PEERS:
            node = network.node(peer)
            assert node.output == sorted(p for p in PEERS if p != peer)

    def test_crash_restart_loses_state_and_journal_records_it(self):
        plan = FaultPlan(
            [CrashFault(node="n1", at=0.003, duration=0.004)],
            seed=3,
            recovery=RecoveryPolicy(),
        )
        network, stats = run_ping(plan=plan, seed=3)
        events = [e["event"] for e in plan.events]
        assert "crash" in events and "restart" in events
        assert (
            stats.messages_sent
            == stats.messages_delivered + stats.messages_dropped + stats.messages_lost
        )
        assert network.in_flight_count == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_armed_run_replays_bit_identically(self, seed):
        def once():
            plan = FaultPlan(
                [
                    LossFault(rate=0.2),
                    DuplicateFault(rate=0.3),
                    ReorderFault(rate=0.5, magnitude=0.01),
                ],
                seed=seed,
            )
            network, stats = run_ping(plan=plan, seed=seed)
            outputs = {p: network.node(p).output for p in PEERS}
            return stats, plan.digest(), outputs

        assert once() == once()
