"""Faithful port of the seed list-based simulator core — the differential oracle.

``SeedSimNetwork`` and the ``Seed*Scheduler`` classes reproduce the pre-event-queue
implementation operation for operation: the per-step deliverable-list rebuild, the
``select(in_flight, rng)`` scheduler protocol, the O(M) ``list.remove`` delivery,
the quiescence drain, and — crucially — the exact RNG draw order (including the
discarded size-0 latency probe per send).  The differential test runs identical
node programs through this oracle and through the production :class:`SimNetwork`
and asserts bit-identical delivery traces and :class:`NetworkStats`.

Two deliberate deviations from the seed, both matching satellite fixes that
changed the contract on purpose:

* message ids are allocated per network (seed: process-global counter), so the
  two cores produce comparable ids; relative order — and therefore every
  tie-break — is unchanged;
* ``SeedRoundRobinScheduler`` discovers recipients in first-occurrence order of
  the deliverable list instead of iterating a ``set`` — the seed's rotation
  depended on ``PYTHONHASHSEED``, which is the bug, not the contract.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.common import stable_hash
from repro.net.channel import ReliableChannel
from repro.net.clock import VirtualClock
from repro.net.latency import LatencyModel, ZeroLatencyModel
from repro.net.message import Message
from repro.net.network import NetworkStats
from repro.net.node import Node, NodeContext
from repro.net.serialization import estimate_size


class SeedFairScheduler:
    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return min(in_flight, key=lambda m: (m.arrival_time, m.msg_id))

    def reset(self) -> None:
        pass


class SeedRoundRobinScheduler:
    def __init__(self, order=None) -> None:
        self._order: List[str] = list(order) if order is not None else []
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        # Seed used ``{m.recipient for m in in_flight}`` here (hash order).
        for known in dict.fromkeys(m.recipient for m in in_flight):
            if known not in self._order:
                self._order.append(known)
        for _ in range(len(self._order)):
            candidate = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            pending = [m for m in in_flight if m.recipient == candidate]
            if pending:
                return min(pending, key=lambda m: (m.arrival_time, m.msg_id))
        return min(in_flight, key=lambda m: (m.arrival_time, m.msg_id))


class SeedRandomScheduler:
    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return in_flight[rng.randrange(len(in_flight))]

    def reset(self) -> None:
        pass


class SeedAdversarialScheduler:
    def __init__(self, targets=frozenset(), max_deferrals: int = 16) -> None:
        self.targets = targets
        self.max_deferrals = max_deferrals
        self._deferrals: Dict[int, int] = {}

    def reset(self) -> None:
        self._deferrals.clear()

    def _is_targeted(self, message: Message) -> bool:
        return message.sender in self.targets or message.recipient in self.targets

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        ordered = sorted(in_flight, key=lambda m: (m.arrival_time, m.msg_id))
        for message in ordered:
            if self._deferrals.get(message.msg_id, 0) >= self.max_deferrals:
                return message
        for message in ordered:
            if not self._is_targeted(message):
                for other in ordered:
                    if self._is_targeted(other):
                        self._deferrals[other.msg_id] = (
                            self._deferrals.get(other.msg_id, 0) + 1
                        )
                return message
        return ordered[0]


class _SeedContext(NodeContext):
    """Per-delivery context, exactly as the seed allocated it."""

    def __init__(self, network: "SeedSimNetwork", node_id: str) -> None:
        self._network = network
        self._node_id = node_id

    @property
    def node_id(self) -> str:
        return self._node_id

    @property
    def peers(self) -> Sequence[str]:
        return self._network.node_ids

    @property
    def rng(self) -> random.Random:
        return self._network._node_rngs[self._node_id]

    def now(self) -> float:
        return self._network.clock_of(self._node_id).now

    def send(self, recipient: str, payload: Any, tag: str = "") -> None:
        self._network._enqueue(self._node_id, recipient, payload, tag)

    def set_timer(self, delay: float, tag: str) -> None:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._network._enqueue_timer(self._node_id, delay, tag)

    def charge(self, seconds: float) -> None:
        self._network.clock_of(self._node_id).charge(seconds)


class SeedSimNetwork:
    """The seed list-based discrete-event core (see module docstring)."""

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        scheduler=None,
        seed: int = 0,
        measure_compute: bool = False,
        compute_scale: float = 1.0,
    ) -> None:
        self.latency_model = latency_model if latency_model is not None else ZeroLatencyModel()
        self.scheduler = scheduler if scheduler is not None else SeedFairScheduler()
        self.measure_compute = measure_compute
        self._rng = random.Random(seed)
        self._seed = seed
        self._nodes: Dict[str, Node] = {}
        self._clocks: Dict[str, VirtualClock] = {}
        self._node_rngs: Dict[str, random.Random] = {}
        self._channels: Dict[tuple, ReliableChannel] = {}
        self._in_flight: List[Message] = []
        self._next_msg_id = 0
        self._compute_scale = compute_scale
        self.stats = NetworkStats()
        self._started = False

    def add_node(self, node: Node) -> None:
        if self._started:
            raise RuntimeError("cannot add nodes after the network has started")
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._clocks[node.node_id] = VirtualClock(compute_scale=self._compute_scale)
        self._node_rngs[node.node_id] = random.Random(
            stable_hash(self._seed, node.node_id)
        )

    def add_nodes(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes.keys())

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def clock_of(self, node_id: str) -> VirtualClock:
        return self._clocks[node_id]

    def _channel(self, sender: str, recipient: str) -> ReliableChannel:
        key = (sender, recipient)
        channel = self._channels.get(key)
        if channel is None:
            channel = ReliableChannel(sender=sender, recipient=recipient)
            self._channels[key] = channel
        return channel

    def _enqueue(self, sender: str, recipient: str, payload: Any, tag: str) -> None:
        if recipient not in self._nodes:
            raise KeyError(f"unknown recipient {recipient!r}")
        send_time = self._clocks[sender].now
        # Seed draw order: size-0 probe (discarded), then the sized call.
        if sender != recipient:
            self.latency_model.delay(sender, recipient, 0, self._rng)
        size = estimate_size((tag, payload))
        delay = (
            self.latency_model.delay(sender, recipient, size, self._rng)
            if sender != recipient
            else self.latency_model.local_delay()
        )
        message = Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            tag=tag,
            send_time=send_time,
            arrival_time=send_time + delay,
            size_bytes=size,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self._channel(sender, recipient).push(message)
        self._in_flight.append(message)

    def _enqueue_timer(self, node_id: str, delay: float, tag: str) -> None:
        now = self._clocks[node_id].now
        message = Message(
            sender=node_id,
            recipient=node_id,
            payload=None,
            tag=f"__timer__/{tag}",
            send_time=now,
            arrival_time=now + delay,
            size_bytes=0,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self._channel(node_id, node_id).push(message)
        self._in_flight.append(message)

    def _dispatch(self, node: Node, handler, *args) -> None:
        clock = self._clocks[node.node_id]
        if self.measure_compute:
            start = time.perf_counter()
            handler(*args)
            clock.charge(time.perf_counter() - start)
        else:
            handler(*args)

    def _deliver(self, message: Message) -> None:
        self._in_flight.remove(message)
        self._channel(message.sender, message.recipient).pop(message.msg_id)
        node = self._nodes[message.recipient]
        if node.finished:
            self.stats.messages_dropped += 1
            return
        clock = self._clocks[message.recipient]
        clock.advance_to(message.arrival_time)
        ctx = _SeedContext(self, message.recipient)
        self._dispatch(node, node.on_message, ctx, message)
        self.stats.record_delivery(message)
        if node.finished:
            self.stats.node_finish_time[node.node_id] = clock.now

    def start(self) -> None:
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self.scheduler.reset()
        for node_id, node in self._nodes.items():
            ctx = _SeedContext(self, node_id)
            self._dispatch(node, node.on_start, ctx)
            if node.finished:
                self.stats.node_finish_time[node_id] = self._clocks[node_id].now

    def step(self) -> bool:
        deliverable = [
            m for m in self._in_flight if not self._nodes[m.recipient].finished
        ]
        if not deliverable:
            for message in list(self._in_flight):
                self._in_flight.remove(message)
                self._channel(message.sender, message.recipient).pop(message.msg_id)
                self.stats.messages_dropped += 1
            return False
        message = self.scheduler.select(deliverable, self._rng)
        self._deliver(message)
        self.stats.steps += 1
        return True

    def run(self, max_steps: int = 2_000_000) -> NetworkStats:
        if not self._started:
            self.start()
        steps = 0
        while True:
            if all(node.finished for node in self._nodes.values()):
                break
            progressed = self.step()
            if not progressed:
                break
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
        self.stats.elapsed_time = max(
            (clock.now for clock in self._clocks.values()), default=0.0
        )
        self.stats.node_busy = {nid: clock.busy for nid, clock in self._clocks.items()}
        return self.stats

    @property
    def in_flight(self) -> List[Message]:
        return list(self._in_flight)

    def unfinished_nodes(self) -> List[str]:
        return [nid for nid, node in self._nodes.items() if not node.finished]
