"""Tests for canonical encoding and size estimation."""

import pytest

from repro.auctions.base import ProviderAsk, UserBid
from repro.net.serialization import UnsupportedPayloadError, canonical_encode, estimate_size


class TestCanonicalEncode:
    def test_scalars_round_trip_deterministically(self):
        for value in [None, True, False, 0, -17, 2**80, 0.25, -1.5, "hello", b"\x00\x01"]:
            assert canonical_encode(value) == canonical_encode(value)

    def test_distinguishes_unequal_values_only(self):
        # The contract is value-based: payloads that compare equal must encode
        # equal (structural comparison across providers uses ==, under which
        # True == 1 == 1.0), while unequal values must encode differently.
        assert canonical_encode(1) == canonical_encode(1.0)
        assert canonical_encode(True) == canonical_encode(1)
        assert canonical_encode(0.0) == canonical_encode(-0.0)
        assert canonical_encode("1") != canonical_encode(1)
        assert canonical_encode(b"a") != canonical_encode("a")
        assert canonical_encode(2**64 + 1) != canonical_encode(2.0**64)

    def test_dict_insertion_order_irrelevant(self):
        a = {"x": 1, "y": 2, "z": [3, 4]}
        b = {"z": [3, 4], "y": 2, "x": 1}
        assert canonical_encode(a) == canonical_encode(b)

    def test_different_dicts_differ(self):
        assert canonical_encode({"x": 1}) != canonical_encode({"x": 2})
        assert canonical_encode({"x": 1}) != canonical_encode({"y": 1})

    def test_nested_structures(self):
        value = {"users": [("u1", 0.5), ("u2", 1.0)], "meta": {"k": 2}}
        assert canonical_encode(value) == canonical_encode(dict(reversed(list(value.items()))))

    def test_sets_are_order_insensitive(self):
        assert canonical_encode({3, 1, 2}) == canonical_encode({2, 3, 1})

    def test_dataclass_encoding_includes_type_name(self):
        bid = UserBid("u1", 1.0, 0.5)
        ask = ProviderAsk("u1", 1.0, 0.5)
        assert canonical_encode(bid) != canonical_encode(ask)
        assert canonical_encode(bid) == canonical_encode(UserBid("u1", 1.0, 0.5))

    def test_dataclass_field_changes_change_encoding(self):
        assert canonical_encode(UserBid("u1", 1.0, 0.5)) != canonical_encode(
            UserBid("u1", 1.0, 0.6)
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(UnsupportedPayloadError):
            canonical_encode(object())

    def test_list_vs_tuple_equivalent(self):
        assert canonical_encode([1, 2]) == canonical_encode((1, 2))


class TestEstimateSize:
    def test_scalars_have_small_positive_size(self):
        for value in [None, True, 3, 0.5, "abc", b"xyz"]:
            assert estimate_size(value) > 0

    def test_larger_payloads_have_larger_size(self):
        small = [UserBid(f"u{i}", 1.0, 0.5) for i in range(5)]
        large = [UserBid(f"u{i}", 1.0, 0.5) for i in range(50)]
        assert estimate_size(large) > estimate_size(small)

    def test_string_size_scales_with_length(self):
        assert estimate_size("a" * 100) > estimate_size("a" * 10)

    def test_unsupported_types_do_not_raise(self):
        assert estimate_size(object()) > 0
