"""Tests for virtual clocks, messages and reliable channels."""

import pytest

from repro.net.channel import ReliableChannel
from repro.net.clock import VirtualClock
from repro.net.message import Message


class TestVirtualClock:
    def test_advance_to_is_monotone(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(0.5)
        assert clock.now == pytest.approx(1.0)

    def test_charge_accumulates_busy_time(self):
        clock = VirtualClock()
        clock.charge(0.2)
        clock.charge(0.3)
        assert clock.now == pytest.approx(0.5)
        assert clock.busy == pytest.approx(0.5)

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-0.1)

    def test_compute_scale_applies_to_charges(self):
        clock = VirtualClock(compute_scale=0.5)
        clock.charge(1.0)
        assert clock.now == pytest.approx(0.5)

    def test_copy_is_independent(self):
        clock = VirtualClock()
        clock.charge(1.0)
        other = clock.copy()
        other.charge(1.0)
        assert clock.now == pytest.approx(1.0)
        assert other.now == pytest.approx(2.0)


class TestMessage:
    def test_create_estimates_size(self):
        message = Message.create("a", "b", {"data": "x" * 100}, tag="t")
        assert message.size_bytes > 100

    def test_message_ids_are_unique_and_increasing(self):
        first = Message.create("a", "b", 1)
        second = Message.create("a", "b", 2)
        assert second.msg_id > first.msg_id

    def test_timer_detection(self):
        timer = Message.create("a", "a", None, tag="__timer__/deadline")
        regular = Message.create("a", "b", None, tag="x")
        assert timer.is_timer()
        assert not regular.is_timer()


class TestReliableChannel:
    def test_push_pop_roundtrip(self):
        channel = ReliableChannel("a", "b")
        message = Message.create("a", "b", "hello")
        channel.push(message)
        assert len(channel) == 1
        popped = channel.pop(message.msg_id)
        assert popped.payload == "hello"
        assert len(channel) == 0
        assert channel.delivered_count == 1

    def test_push_wrong_endpoints_rejected(self):
        channel = ReliableChannel("a", "b")
        with pytest.raises(ValueError):
            channel.push(Message.create("a", "c", "oops"))

    def test_pop_unknown_id_raises(self):
        channel = ReliableChannel("a", "b")
        with pytest.raises(KeyError):
            channel.pop(12345)

    def test_earliest_undelivered(self):
        channel = ReliableChannel("a", "b")
        assert channel.earliest_undelivered() is None
        first = Message.create("a", "b", 1, send_time=1.0)
        second = Message.create("a", "b", 2, send_time=0.5)
        channel.push(first)
        channel.push(second)
        assert channel.earliest_undelivered() is second
