"""Tests for the threaded in-process transport."""

import pytest

from repro.net.message import Message
from repro.net.network import QuiescenceError
from repro.net.node import Node, NodeContext
from repro.net.transport import ThreadedNetwork


class Collector(Node):
    """Finishes once it has received one value from every peer."""

    def __init__(self, node_id, expected):
        super().__init__(node_id)
        self.expected = expected
        self.values = {}

    def on_start(self, ctx: NodeContext) -> None:
        for peer in ctx.peers:
            if peer != self.node_id:
                ctx.send(peer, f"from-{self.node_id}")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        self.values[message.sender] = message.payload
        if len(self.values) >= self.expected:
            self.finish(tuple(sorted(self.values.values())))


class Failing(Node):
    def on_start(self, ctx: NodeContext) -> None:
        raise RuntimeError("boom")

    def on_message(self, ctx, message):  # pragma: no cover
        pass


class Stuck(Node):
    """Never finishes — waits for a message nobody sends."""

    def on_start(self, ctx: NodeContext) -> None:
        pass

    def on_message(self, ctx, message):  # pragma: no cover
        pass


class Finisher(Node):
    """Finishes immediately on start."""

    def on_start(self, ctx: NodeContext) -> None:
        self.finish("done")

    def on_message(self, ctx, message):  # pragma: no cover
        pass


class TimerWaiter(Node):
    def on_start(self, ctx: NodeContext) -> None:
        ctx.set_timer(0.05, "tick")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if message.is_timer():
            self.finish("ticked")


class TestThreadedNetwork:
    def test_all_to_all_exchange_completes(self):
        net = ThreadedNetwork()
        ids = ["a", "b", "c"]
        for node_id in ids:
            net.add_node(Collector(node_id, expected=2))
        outputs = net.run(timeout=10.0)
        assert set(outputs) == set(ids)
        assert outputs["a"] == ("from-b", "from-c")

    def test_worker_exception_is_surfaced(self):
        net = ThreadedNetwork()
        net.add_node(Failing("f"))
        with pytest.raises(RuntimeError, match="boom"):
            net.run(timeout=5.0)

    def test_duplicate_ids_rejected(self):
        net = ThreadedNetwork()
        net.add_node(Collector("a", 1))
        with pytest.raises(ValueError):
            net.add_node(Collector("a", 1))

    def test_timers_fire(self):
        net = ThreadedNetwork()
        net.add_node(TimerWaiter("t"))
        outputs = net.run(timeout=5.0)
        assert outputs.get("t") == "ticked"

    def test_timeout_raises_quiescence_error_naming_stuck_nodes(self):
        net = ThreadedNetwork()
        net.add_node(Finisher("done"))
        net.add_node(Stuck("wedged-1"))
        net.add_node(Stuck("wedged-2"))
        with pytest.raises(QuiescenceError, match=r"2 nodes.*wedged-1, wedged-2"):
            net.run(timeout=0.2)

    def test_timeout_error_counts_undelivered_backlog(self):
        net = ThreadedNetwork()
        net.add_node(Stuck("wedged"))
        with pytest.raises(QuiescenceError) as excinfo:
            net.run(timeout=0.2)
        assert "wedged" in str(excinfo.value)
        assert "undelivered" in str(excinfo.value)

    def test_traffic_counters_increase(self):
        net = ThreadedNetwork()
        for node_id in ["a", "b"]:
            net.add_node(Collector(node_id, expected=1))
        net.run(timeout=10.0)
        assert net.messages_delivered >= 2
        assert net.bytes_delivered > 0
