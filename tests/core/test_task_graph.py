"""Tests for task graphs, provider grouping and the Algorithm-1 builder."""

import pytest

from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import StandardAuctionWorkload
from repro.core.task_graph import (
    Task,
    TaskGraph,
    TaskGraphError,
    assign_provider_groups,
    build_standard_auction_graph,
    partition_users,
)


def noop(inputs, bids, seed):
    return None


class TestTaskAndGraphStructure:
    def test_task_requires_executors(self):
        with pytest.raises(TaskGraphError):
            Task("t", (), (), noop)
        with pytest.raises(TaskGraphError):
            Task("", (), ("p0",), noop)
        with pytest.raises(TaskGraphError):
            Task("t", (), ("p0", "p0"), noop)

    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add(Task("t", (), ("p0",), noop))
        with pytest.raises(TaskGraphError):
            graph.add(Task("t", (), ("p0",), noop))

    def test_topological_order(self):
        graph = TaskGraph()
        graph.add(Task("c", ("a", "b"), ("p0",), noop))
        graph.add(Task("a", (), ("p0",), noop))
        graph.add(Task("b", ("a",), ("p0",), noop))
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.add(Task("a", ("b",), ("p0",), noop))
        graph.add(Task("b", ("a",), ("p0",), noop))
        with pytest.raises(TaskGraphError):
            graph.topological_order()

    def test_unknown_dependency_detected(self):
        graph = TaskGraph()
        graph.add(Task("a", ("ghost",), ("p0",), noop))
        with pytest.raises(TaskGraphError):
            graph.topological_order()

    def test_validate_executor_counts_and_final_task(self):
        providers = ["p0", "p1", "p2", "p3"]
        graph = TaskGraph()
        graph.add(Task("work", (), ("p0", "p1"), noop))
        graph.add(Task("final", ("work",), tuple(providers), noop))
        graph.final_task = "final"
        graph.validate(providers, k=1)
        # k=2 would require 3 executors on "work".
        with pytest.raises(TaskGraphError):
            graph.validate(providers, k=2)

    def test_validate_requires_final_task_by_all(self):
        providers = ["p0", "p1"]
        graph = TaskGraph()
        graph.add(Task("final", (), ("p0",), noop))
        graph.final_task = "final"
        with pytest.raises(TaskGraphError):
            graph.validate(providers, k=0)

    def test_validate_requires_everything_feeds_final(self):
        providers = ["p0", "p1"]
        graph = TaskGraph()
        graph.add(Task("orphan", (), tuple(providers), noop))
        graph.add(Task("final", (), tuple(providers), noop))
        graph.final_task = "final"
        with pytest.raises(TaskGraphError):
            graph.validate(providers, k=0)


class TestGrouping:
    def test_max_parallelism_grouping(self):
        groups = assign_provider_groups([f"p{i}" for i in range(8)], k=1)
        assert len(groups) == 4
        assert all(len(g) == 2 for g in groups)

    def test_remainder_spread(self):
        groups = assign_provider_groups([f"p{i}" for i in range(8)], k=2)
        assert len(groups) == 2
        assert sorted(len(g) for g in groups) == [4, 4]
        groups = assign_provider_groups([f"p{i}" for i in range(7)], k=1)
        assert len(groups) == 3
        assert sorted(len(g) for g in groups) == [2, 2, 3]

    def test_explicit_group_count(self):
        groups = assign_provider_groups([f"p{i}" for i in range(8)], k=1, num_groups=2)
        assert len(groups) == 2
        with pytest.raises(ValueError):
            assign_provider_groups([f"p{i}" for i in range(8)], k=1, num_groups=5)

    def test_too_few_providers(self):
        with pytest.raises(ValueError):
            assign_provider_groups(["p0"], k=1)

    def test_partition_users(self):
        chunks = partition_users([f"u{i}" for i in range(10)], 4)
        assert len(chunks) == 4
        assert sorted(len(c) for c in chunks) == [2, 2, 3, 3]
        assert sorted(sum(chunks, [])) == sorted(f"u{i}" for i in range(10))

    def test_partition_users_more_groups_than_users(self):
        chunks = partition_users(["u0"], 3)
        assert len(chunks) == 3
        assert sum(len(c) for c in chunks) == 1


class TestStandardAuctionGraph:
    def test_structure_matches_algorithm_1(self):
        mechanism = StandardAuction(epsilon=0.5)
        bids = StandardAuctionWorkload(seed=0).generate(8, 4)
        providers = [f"q{i}" for i in range(4)]
        graph = build_standard_auction_graph(mechanism, bids, providers, k=1)
        names = set(graph.tasks)
        assert "alloc" in names and "final" in names
        payment_tasks = [n for n in names if n.startswith("pay/")]
        assert len(payment_tasks) == 2  # ⌊4 / (1+1)⌋ groups
        assert set(graph.task("final").depends_on) == {"alloc", *payment_tasks}
        assert set(graph.task("alloc").executors) == set(providers)
        assert set(graph.task("final").executors) == set(providers)

    def test_graph_executes_to_same_result_as_run(self):
        mechanism = StandardAuction(epsilon=0.5)
        bids = StandardAuctionWorkload(seed=1).generate(6, 3)
        providers = ["p0", "p1", "p2"]
        graph = build_standard_auction_graph(mechanism, bids, providers, k=0, num_groups=3)
        seed = 777
        values = {}
        for name in graph.topological_order():
            task = graph.task(name)
            inputs = {dep: values[dep] for dep in task.depends_on}
            values[name] = task.fn(inputs, bids, seed)
        result = values["final"]
        allocation, welfare = mechanism.solve_allocation(bids, seed)
        payments = mechanism.payments_for_users(bids, bids.user_ids, allocation, welfare, seed)
        assert result == mechanism.assemble(bids, allocation, payments)
