"""Tests for outcome combination (Definition 1) and framework configuration."""

import pytest

from repro.auctions.base import Allocation, AuctionResult, Payments
from repro.common import ABORT, AbortType, is_abort, stable_hash
from repro.core.config import FrameworkConfig
from repro.core.outcome import Outcome, combine_outputs


def make_result(payment=1.0):
    return AuctionResult(
        Allocation.from_dict({("u0", "p0"): 0.5}),
        Payments.from_dicts({"u0": payment}, {"p0": payment}),
    )


class TestAbortSentinel:
    def test_singleton_and_equality(self):
        assert AbortType() is ABORT
        assert ABORT == AbortType()
        assert not ABORT
        assert is_abort(ABORT)
        assert not is_abort(None)
        assert not is_abort(0)

    def test_stable_hash_is_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)


class TestCombineOutputs:
    def test_unanimous_valid_result(self):
        result = make_result()
        assert combine_outputs({"p0": result, "p1": result}) == result

    def test_any_abort_gives_abort(self):
        result = make_result()
        assert is_abort(combine_outputs({"p0": result, "p1": ABORT}))

    def test_missing_output_gives_abort(self):
        result = make_result()
        assert is_abort(combine_outputs({"p0": result, "p1": None}))

    def test_disagreement_gives_abort(self):
        assert is_abort(combine_outputs({"p0": make_result(1.0), "p1": make_result(2.0)}))

    def test_empty_gives_abort(self):
        assert is_abort(combine_outputs({}))

    def test_non_result_values_give_abort(self):
        assert is_abort(combine_outputs({"p0": "garbage", "p1": "garbage"}))


class TestOutcome:
    def test_from_provider_outputs(self):
        result = make_result()
        outcome = Outcome.from_provider_outputs({"p0": result, "p1": result}, elapsed_time=1.5)
        assert not outcome.aborted
        assert outcome.auction_result == result
        assert outcome.elapsed_time == pytest.approx(1.5)

    def test_auction_result_raises_on_abort(self):
        outcome = Outcome.from_provider_outputs({"p0": ABORT})
        assert outcome.aborted
        with pytest.raises(ValueError):
            outcome.auction_result


class TestFrameworkConfig:
    def test_defaults_are_valid(self):
        config = FrameworkConfig()
        assert config.k == 1
        assert config.agreement_mode == "batched"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig(k=-1)
        with pytest.raises(ValueError):
            FrameworkConfig(agreement_mode="nope")
        with pytest.raises(ValueError):
            FrameworkConfig(num_groups=0)

    def test_quorum_check(self):
        FrameworkConfig(k=1).check_quorum(3)
        with pytest.raises(ValueError):
            FrameworkConfig(k=1).check_quorum(2)
        # The check can be disabled explicitly (for experiments).
        FrameworkConfig(k=1, require_quorum=False).check_quorum(2)

    def test_max_parallelism(self):
        assert FrameworkConfig(k=1).max_parallelism(8) == 4
        assert FrameworkConfig(k=3).max_parallelism(8) == 2
        assert FrameworkConfig(k=7).max_parallelism(8) == 1
