"""Tests for the bid agreement block (Property 1: eventual agreement + validity)."""

import pytest

from tests.conftest import run_block_network

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.validation import neutral_provider_ask, neutral_user_bid
from repro.common import is_abort
from repro.core.bid_agreement import BidAgreementBlock
from repro.net.scheduler import RandomScheduler

PROVIDERS = ["p0", "p1", "p2"]
USERS = ["u0", "u1"]

BIDS = {
    "u0": UserBid("u0", 1.0, 0.5),
    "u1": UserBid("u1", 0.9, 0.7),
}
ASKS = {pid: ProviderAsk(pid, 0.1, 1.0) for pid in PROVIDERS}


def make_block(nid, received_bids=None, received_asks=None, mode="batched"):
    return BidAgreementBlock(
        "ba",
        expected_users=USERS,
        expected_providers=PROVIDERS,
        received_user_bids=received_bids if received_bids is not None else dict(BIDS),
        received_provider_asks=received_asks if received_asks is not None else dict(ASKS),
        mode=mode,
    )


class TestHonestCase:
    @pytest.mark.parametrize("mode", ["batched", "per_label", "per_bit"])
    def test_agreement_and_validity(self, mode):
        outputs = run_block_network(PROVIDERS, lambda nid: make_block(nid, mode=mode))
        values = list(outputs.values())
        assert all(isinstance(v, BidVector) for v in values)
        assert all(v == values[0] for v in values)
        # Validity: correct bidders' bids are preserved exactly.
        assert values[0].user("u0") == BIDS["u0"]
        assert values[0].user("u1") == BIDS["u1"]
        assert values[0].provider("p1") == ASKS["p1"]

    def test_modes_agree_with_each_other(self):
        batched = run_block_network(PROVIDERS, lambda nid: make_block(nid, mode="batched"))["p0"]
        per_label = run_block_network(PROVIDERS, lambda nid: make_block(nid, mode="per_label"))["p0"]
        per_bit = run_block_network(PROVIDERS, lambda nid: make_block(nid, mode="per_bit"))["p0"]
        assert batched == per_label == per_bit

    def test_agreement_under_random_schedules(self):
        for seed in range(3):
            outputs = run_block_network(
                PROVIDERS,
                lambda nid: make_block(nid),
                scheduler=RandomScheduler(),
                seed=seed,
            )
            assert len({id(v) for v in outputs.values()}) >= 1
            assert all(v == outputs["p0"] for v in outputs.values())


class TestMisbehavingBidders:
    def test_missing_bid_becomes_neutral(self):
        received = dict(BIDS)
        received["u1"] = None
        outputs = run_block_network(
            PROVIDERS, lambda nid: make_block(nid, received_bids=dict(received))
        )
        agreed = outputs["p0"]
        assert agreed.user("u1") == neutral_user_bid("u1")
        assert agreed.user("u0") == BIDS["u0"]

    def test_invalid_bid_becomes_neutral(self):
        received = dict(BIDS)
        received["u0"] = "garbage"
        outputs = run_block_network(
            PROVIDERS, lambda nid: make_block(nid, received_bids=dict(received))
        )
        assert outputs["p1"].user("u0") == neutral_user_bid("u0")

    def test_identity_spoofing_becomes_neutral(self):
        received = dict(BIDS)
        received["u0"] = UserBid("someone_else", 5.0, 5.0)
        outputs = run_block_network(
            PROVIDERS, lambda nid: make_block(nid, received_bids=dict(received))
        )
        assert outputs["p2"].user("u0") == neutral_user_bid("u0")

    def test_inconsistent_bidder_resolved_consistently(self):
        """A bidder that equivocates ends up with one agreed bid at every provider."""
        per_provider = {
            "p0": UserBid("u0", 0.5, 0.5),
            "p1": UserBid("u0", 1.5, 0.5),
            "p2": UserBid("u0", 1.5, 0.5),
        }

        def factory(nid):
            received = dict(BIDS)
            received["u0"] = per_provider[nid]
            return make_block(nid, received_bids=received)

        outputs = run_block_network(PROVIDERS, factory)
        agreed = [outputs[p] for p in PROVIDERS]
        assert all(v == agreed[0] for v in agreed)
        # The agreed bid is one of the bids actually sent (majority here).
        assert agreed[0].user("u0") == UserBid("u0", 1.5, 0.5)
        # Validity for the well-behaved bidder.
        assert agreed[0].user("u1") == BIDS["u1"]

    def test_missing_ask_becomes_neutral(self):
        received_asks = dict(ASKS)
        received_asks.pop("p2")
        outputs = run_block_network(
            PROVIDERS,
            lambda nid: make_block(nid, received_asks=dict(received_asks)),
        )
        assert outputs["p0"].provider("p2") == neutral_provider_ask("p2")


class TestConfiguration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_block("p0", mode="telepathy")
