"""Tests for input validation, common coin and data transfer blocks (Properties 3-5)."""

import pytest

from tests.conftest import run_block_network

from repro.common import ABORT, is_abort
from repro.core.common_coin import CommonCoinBlock
from repro.core.data_transfer import DataTransferBlock
from repro.core.distributions import SeedDistribution, UniformDistribution
from repro.core.input_validation import InputValidationBlock
from repro.net.scheduler import RandomScheduler


class TestInputValidation:
    def test_same_inputs_pass_through(self):
        vector = {"u0": 1.0, "u1": 2.0}
        outputs = run_block_network(
            ["p0", "p1", "p2"], lambda nid: InputValidationBlock("iv", dict(vector))
        )
        assert all(v == vector for v in outputs.values())

    def test_different_inputs_abort_both(self):
        def factory(nid):
            value = {"u0": 1.0} if nid != "p2" else {"u0": 999.0}
            return InputValidationBlock("iv", value)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        # Condition (1) of Property 3: any two providers with different inputs both
        # output ⊥ (here everyone does, since p2 disagrees with both others).
        assert is_abort(outputs["p2"])
        assert is_abort(outputs["p0"])
        assert is_abort(outputs["p1"])

    def test_full_broadcast_mode(self):
        outputs = run_block_network(
            ["p0", "p1"], lambda nid: InputValidationBlock("iv", (1, 2, 3), full_broadcast=True)
        )
        assert all(v == (1, 2, 3) for v in outputs.values())

    def test_works_with_two_providers_only(self):
        outputs = run_block_network(
            ["p0", "p1"], lambda nid: InputValidationBlock("iv", "same")
        )
        assert all(v == "same" for v in outputs.values())


class TestCommonCoin:
    def test_all_providers_output_same_value(self):
        outputs = run_block_network(
            ["p0", "p1", "p2", "p3"],
            lambda nid: CommonCoinBlock("coin", UniformDistribution(0.0, 1.0)),
        )
        values = set(outputs.values())
        assert len(values) == 1
        value = values.pop()
        assert 0.0 <= value < 1.0

    def test_different_seeds_give_different_values(self):
        first = run_block_network(
            ["p0", "p1"], lambda nid: CommonCoinBlock("coin"), seed=1
        )["p0"]
        second = run_block_network(
            ["p0", "p1"], lambda nid: CommonCoinBlock("coin"), seed=2
        )["p0"]
        assert first != second

    def test_seed_distribution_gives_integer(self):
        outputs = run_block_network(
            ["p0", "p1", "p2"], lambda nid: CommonCoinBlock("coin", SeedDistribution())
        )
        value = outputs["p0"]
        assert isinstance(value, int)
        assert all(v == value for v in outputs.values())

    def test_agreement_under_random_schedule(self):
        for seed in range(5):
            outputs = run_block_network(
                ["p0", "p1", "p2"],
                lambda nid: CommonCoinBlock("coin"),
                scheduler=RandomScheduler(),
                seed=seed,
            )
            assert len(set(outputs.values())) == 1
            assert not is_abort(outputs["p0"])

    def test_output_is_roughly_uniform_across_seeds(self):
        values = []
        for seed in range(40):
            outputs = run_block_network(
                ["p0", "p1"], lambda nid: CommonCoinBlock("coin"), seed=seed
            )
            values.append(outputs["p0"])
        assert min(values) < 0.3
        assert max(values) > 0.7


class TestDataTransfer:
    def test_transfer_from_group_to_group(self):
        senders = ["p0", "p1"]
        receivers = ["p2", "p3"]

        def factory(nid):
            if nid in senders:
                return DataTransferBlock("dt", senders, receivers, my_value={"x": 42})
            return DataTransferBlock("dt", senders, receivers)

        outputs = run_block_network(senders + receivers, factory)
        assert all(v == {"x": 42} for v in outputs.values())

    def test_disagreeing_senders_cause_abort_at_receivers(self):
        senders = ["p0", "p1"]
        receivers = ["p2"]

        def factory(nid):
            if nid in senders:
                value = 1 if nid == "p0" else 2
                return DataTransferBlock("dt", senders, receivers, my_value=value)
            return DataTransferBlock("dt", senders, receivers)

        outputs = run_block_network(senders + receivers, factory)
        assert is_abort(outputs["p2"])

    def test_sender_that_is_also_receiver(self):
        senders = ["p0", "p1"]
        receivers = ["p1", "p2"]

        def factory(nid):
            if nid in senders:
                return DataTransferBlock("dt", senders, receivers, my_value="v")
            return DataTransferBlock("dt", senders, receivers)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        assert outputs == {"p0": "v", "p1": "v", "p2": "v"}

    def test_sender_without_value_is_an_error(self):
        with pytest.raises(ValueError):
            run_block_network(
                ["p0", "p1"],
                lambda nid: DataTransferBlock("dt", ["p0"], ["p1"]),
            )

    def test_needs_at_least_one_sender(self):
        with pytest.raises(ValueError):
            DataTransferBlock("dt", [], ["p1"])

    def test_traffic_from_outside_sender_set_is_ignored(self):
        # p2 is not in S; its (malicious) traffic must not influence the receiver.
        senders = ["p0"]
        receivers = ["p1"]

        class Meddler(DataTransferBlock):
            def on_start(self, ctx):
                # Not a sender, but injects a conflicting value anyway.
                ctx.send("p1", "poison", subtag=self.VALUE)
                self.complete("done")

        def factory(nid):
            if nid == "p0":
                return DataTransferBlock("dt", senders, receivers, my_value="good")
            if nid == "p2":
                return Meddler("dt", senders, receivers)
            return DataTransferBlock("dt", senders, receivers)

        outputs = run_block_network(["p0", "p1", "p2"], factory)
        assert outputs["p1"] == "good"
