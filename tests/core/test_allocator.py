"""Tests for the sequential and parallel allocator blocks (Property 2)."""

import random

import pytest

from tests.conftest import run_block_network

from repro.auctions.base import AuctionResult
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.common import is_abort
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.allocator import ParallelAllocatorBlock, SequentialAllocatorBlock
from repro.core.task_graph import build_standard_auction_graph
from repro.net.scheduler import RandomScheduler

PROVIDERS = ["p0", "p1", "p2", "p3"]


def double_bids():
    return DoubleAuctionWorkload(seed=7).generate(10, len(PROVIDERS), provider_ids=PROVIDERS)


def standard_bids(num_users=8):
    return StandardAuctionWorkload(seed=7).generate(
        num_users, len(PROVIDERS), provider_ids=PROVIDERS
    )


class TestSequentialAllocator:
    def test_all_providers_output_same_valid_result(self):
        bids = double_bids()
        outputs = run_block_network(
            PROVIDERS,
            lambda nid: SequentialAllocatorBlock("alloc", bids, DoubleAuction()),
        )
        results = list(outputs.values())
        assert all(isinstance(r, AuctionResult) for r in results)
        assert all(r == results[0] for r in results)
        results[0].allocation.check_feasible(bids)

    def test_differing_inputs_abort(self):
        good = double_bids()
        forged = good.replace_user(good.users[0].with_unit_value(99.0))

        def factory(nid):
            bids = forged if nid == "p3" else good
            return SequentialAllocatorBlock("alloc", bids, DoubleAuction())

        outputs = run_block_network(PROVIDERS, factory)
        assert is_abort(outputs["p0"])
        assert is_abort(outputs["p3"])

    def test_without_common_coin_still_agrees(self):
        bids = double_bids()
        outputs = run_block_network(
            PROVIDERS,
            lambda nid: SequentialAllocatorBlock(
                "alloc", bids, DoubleAuction(), use_common_coin=False
            ),
        )
        results = list(outputs.values())
        assert all(r == results[0] for r in results)

    def test_randomised_algorithm_agrees_thanks_to_coin(self):
        bids = standard_bids()
        outputs = run_block_network(
            PROVIDERS,
            lambda nid: SequentialAllocatorBlock(
                "alloc", bids, StandardAuction(epsilon=0.5)
            ),
        )
        results = list(outputs.values())
        assert all(isinstance(r, AuctionResult) for r in results)
        assert all(r == results[0] for r in results)


class TestParallelAllocator:
    def _graph(self, bids, k=1, num_groups=None, mechanism=None):
        mechanism = mechanism if mechanism is not None else StandardAuction(epsilon=0.5)
        return mechanism, build_standard_auction_graph(
            mechanism, bids, PROVIDERS, k=k, num_groups=num_groups
        )

    def test_parallel_execution_matches_sequential(self):
        bids = standard_bids()
        mechanism = StandardAuction(epsilon=0.5)
        graph = build_standard_auction_graph(mechanism, bids, PROVIDERS, k=1)
        parallel = run_block_network(
            PROVIDERS,
            lambda nid: ParallelAllocatorBlock("alloc", bids, graph),
            seed=3,
        )
        sequential = run_block_network(
            PROVIDERS,
            lambda nid: SequentialAllocatorBlock("alloc", bids, mechanism),
            seed=3,
        )
        assert parallel["p0"] == sequential["p0"]
        assert all(v == parallel["p0"] for v in parallel.values())

    def test_group_counts_do_not_change_the_result(self):
        bids = standard_bids()
        mechanism = StandardAuction(epsilon=0.5)
        results = []
        for groups in (1, 2, 4):
            graph = build_standard_auction_graph(
                mechanism, bids, PROVIDERS, k=0, num_groups=groups
            )
            outputs = run_block_network(
                PROVIDERS,
                lambda nid, graph=graph: ParallelAllocatorBlock("alloc", bids, graph),
                seed=9,
            )
            assert all(v == outputs["p0"] for v in outputs.values())
            results.append(outputs["p0"])
        assert results[0] == results[1] == results[2]

    def test_result_is_feasible_and_well_formed(self):
        bids = standard_bids(num_users=10)
        mechanism = StandardAuction(epsilon=0.5)
        graph = build_standard_auction_graph(mechanism, bids, PROVIDERS, k=1)
        outputs = run_block_network(
            PROVIDERS, lambda nid: ParallelAllocatorBlock("alloc", bids, graph)
        )
        result = outputs["p0"]
        assert isinstance(result, AuctionResult)
        result.allocation.check_feasible(bids, single_provider=True)
        assert result.payments.total_paid == pytest.approx(result.payments.total_received)

    def test_agreement_under_random_schedule(self):
        bids = standard_bids()
        mechanism = StandardAuction(epsilon=0.5)
        graph = build_standard_auction_graph(mechanism, bids, PROVIDERS, k=1)
        for seed in range(3):
            outputs = run_block_network(
                PROVIDERS,
                lambda nid: ParallelAllocatorBlock("alloc", bids, graph),
                scheduler=RandomScheduler(),
                seed=seed,
            )
            assert all(v == outputs["p0"] for v in outputs.values())
            assert not is_abort(outputs["p0"])

    def test_differing_inputs_abort(self):
        good = standard_bids()
        forged = good.replace_user(good.users[0].with_unit_value(50.0))
        mechanism = StandardAuction(epsilon=0.5)
        graph = build_standard_auction_graph(mechanism, good, PROVIDERS, k=1)

        def factory(nid):
            bids = forged if nid == "p0" else good
            return ParallelAllocatorBlock("alloc", bids, graph)

        outputs = run_block_network(PROVIDERS, factory)
        assert is_abort(outputs["p1"])
