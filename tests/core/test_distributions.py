"""Tests for the common-coin target distributions."""

import math

import pytest

from repro.core.distributions import (
    DiscreteDistribution,
    ExponentialDistribution,
    SeedDistribution,
    UniformDistribution,
)


class TestUniform:
    def test_transform_bounds(self):
        dist = UniformDistribution(2.0, 4.0)
        assert dist.transform(0.0) == pytest.approx(2.0)
        assert dist.transform(0.5) == pytest.approx(3.0)
        assert dist.transform(0.999999) < 4.0

    def test_rejects_out_of_range_sample(self):
        with pytest.raises(ValueError):
            UniformDistribution().transform(1.0)
        with pytest.raises(ValueError):
            UniformDistribution().transform(-0.1)


class TestExponential:
    def test_inverse_cdf(self):
        dist = ExponentialDistribution(rate=2.0)
        u = 0.5
        assert dist.transform(u) == pytest.approx(-math.log1p(-u) / 2.0)
        assert dist.transform(0.0) == 0.0

    def test_monotone_in_u(self):
        dist = ExponentialDistribution(rate=1.0)
        assert dist.transform(0.9) > dist.transform(0.1)


class TestDiscrete:
    def test_uniform_support(self):
        dist = DiscreteDistribution(values=("a", "b", "c"))
        assert dist.transform(0.0) == "a"
        assert dist.transform(0.34) == "b"
        assert dist.transform(0.99) == "c"

    def test_weighted_support(self):
        dist = DiscreteDistribution(values=(0, 1), weights=(3.0, 1.0))
        assert dist.transform(0.5) == 0
        assert dist.transform(0.9) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DiscreteDistribution(values=())
        with pytest.raises(ValueError):
            DiscreteDistribution(values=(1, 2), weights=(1.0,))
        with pytest.raises(ValueError):
            DiscreteDistribution(values=(1, 2), weights=(-1.0, 0.0))


class TestSeed:
    def test_range(self):
        dist = SeedDistribution(bits=8)
        assert dist.transform(0.0) == 0
        assert dist.transform(0.999999) == 255

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SeedDistribution(bits=0)
        with pytest.raises(ValueError):
            SeedDistribution(bits=64)
