"""End-to-end tests of the DistributedAuctioneer / CentralizedAuctioneer APIs."""

import random

import pytest

from repro.auctions.base import AuctionResult, UserBid
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer
from repro.core.provider_protocol import ProviderInput
from repro.net.latency import ConstantLatencyModel
from repro.net.scheduler import RandomScheduler

PROVIDERS = [f"p{i:02d}" for i in range(4)]


def double_bids(num_users=12, seed=0):
    return DoubleAuctionWorkload(seed=seed).generate(num_users, len(PROVIDERS), provider_ids=PROVIDERS)


def standard_bids(num_users=8, seed=0):
    return StandardAuctionWorkload(seed=seed).generate(num_users, len(PROVIDERS), provider_ids=PROVIDERS)


class TestDistributedDoubleAuction:
    def test_matches_direct_execution(self):
        bids = double_bids()
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
        )
        report = auctioneer.run_from_bids(bids)
        assert not report.aborted
        assert report.result == DoubleAuction().run(bids)

    def test_all_providers_output_the_same_pair(self):
        bids = double_bids(seed=5)
        report = DistributedAuctioneer(
            DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
        ).run_from_bids(bids)
        outputs = list(report.outcome.provider_outputs.values())
        assert all(isinstance(o, AuctionResult) for o in outputs)
        assert all(o == outputs[0] for o in outputs)

    def test_latency_and_traffic_are_accounted(self):
        bids = double_bids()
        report = DistributedAuctioneer(
            DoubleAuction(),
            providers=PROVIDERS,
            config=FrameworkConfig(k=1),
            latency_model=ConstantLatencyModel(0.01),
        ).run_from_bids(bids)
        assert report.outcome.elapsed_time > 0.01
        assert report.outcome.messages > 0
        assert report.outcome.bytes_transferred > 0

    def test_executors_can_be_a_subset_of_sellers(self):
        """Figure-4 style: 8 sellers, only the minimum 2k+1 providers run the protocol."""
        all_sellers = [f"p{i:02d}" for i in range(8)]
        bids = DoubleAuctionWorkload(seed=2).generate(10, 8, provider_ids=all_sellers)
        executors = all_sellers[:3]
        report = DistributedAuctioneer(
            DoubleAuction(), providers=executors, config=FrameworkConfig(k=1)
        ).run_from_bids(bids)
        assert not report.aborted
        # Non-executing sellers' capacity still participates in the auction.
        assert report.result == DoubleAuction().run(bids)


class TestDistributedStandardAuction:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_agreement_and_feasibility(self, parallel):
        bids = standard_bids()
        report = DistributedAuctioneer(
            StandardAuction(epsilon=0.5),
            providers=PROVIDERS,
            config=FrameworkConfig(k=1, parallel=parallel),
        ).run_from_bids(bids)
        assert not report.aborted
        report.result.allocation.check_feasible(bids, single_provider=True)

    def test_parallel_equals_sequential(self):
        bids = standard_bids(seed=3)
        seq = DistributedAuctioneer(
            StandardAuction(epsilon=0.5),
            providers=PROVIDERS,
            config=FrameworkConfig(k=1, parallel=False),
        ).run_from_bids(bids)
        par = DistributedAuctioneer(
            StandardAuction(epsilon=0.5),
            providers=PROVIDERS,
            config=FrameworkConfig(k=1, parallel=True),
        ).run_from_bids(bids)
        assert seq.result == par.result

    def test_schedule_independence(self):
        """Ex post flavour: the agreed result does not depend on the schedule."""
        bids = standard_bids(seed=9)
        reference = None
        for seed in range(3):
            report = DistributedAuctioneer(
                StandardAuction(epsilon=0.5),
                providers=PROVIDERS,
                config=FrameworkConfig(k=1, parallel=True),
                scheduler=RandomScheduler(),
                seed=0,  # same network seed: same coin, different delivery order below
            ).run_from_bids(bids)
            assert not report.aborted
            if reference is None:
                reference = report.result
            else:
                assert report.result == reference


class TestInputHandling:
    def test_requires_one_input_per_provider(self):
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
        )
        with pytest.raises(ValueError):
            auctioneer.run({"p00": ProviderInput("p00")})

    def test_quorum_enforced_at_construction(self):
        with pytest.raises(ValueError):
            DistributedAuctioneer(
                DoubleAuction(), providers=PROVIDERS[:2], config=FrameworkConfig(k=1)
            )

    def test_inconsistent_received_bids_still_agree(self):
        """Providers received different bids from an equivocating user; the outcome is
        still a single agreed pair (not ⊥), built from one of the submitted bids."""
        bids = double_bids()
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
        )
        inputs = auctioneer.consistent_inputs(bids)
        victim = bids.users[0].user_id
        inputs["p00"].received_user_bids[victim] = bids.users[0].with_unit_value(0.01)
        report = auctioneer.run(inputs, expected_users=[u.user_id for u in bids.users])
        assert not report.aborted

    def test_empty_providers_rejected(self):
        with pytest.raises(ValueError):
            DistributedAuctioneer(DoubleAuction(), providers=[])


class TestCentralizedBaseline:
    def test_returns_algorithm_result_and_timing(self):
        bids = double_bids()
        report = CentralizedAuctioneer(DoubleAuction(), base_latency=0.05).run(bids)
        assert not report.aborted
        assert report.elapsed_time >= 0.05
        assert report.outcome.messages == 0

    def test_deterministic_for_fixed_seed(self):
        bids = standard_bids()
        first = CentralizedAuctioneer(StandardAuction(epsilon=0.5), seed=4).run(bids)
        second = CentralizedAuctioneer(StandardAuction(epsilon=0.5), seed=4).run(bids)
        assert first.result == second.result
