"""Tests for the timeout-quorum recovery mode (FrameworkConfig.round_timeout).

With a round timeout, protocol rounds that cannot fill their quorum — because a
peer is crashed, partitioned, or silenced — close with the traffic received so
far instead of waiting forever.  The run is then flagged *degraded* end to end:
block → provider node → Outcome → RunRecord.  Without a timeout (the default),
behaviour is byte-identical to the historical reliable-substrate protocol.
"""

import pytest

from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import StandardAuctionWorkload, default_provider_ids
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer
from repro.net.faults import FaultPlan, RecoveryPolicy, make_fault
from repro.net.latency import UniformLatencyModel
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import ConfigSpec, ScenarioSpec, SpecError, spec_from_dict, spec_to_dict

PROVIDERS = default_provider_ids(3)


def make_bids(users=8, seed=0):
    return StandardAuctionWorkload(seed=seed).generate(
        users, len(PROVIDERS), provider_ids=PROVIDERS
    )


def run_auction(round_timeout=None, plan=None, use_coin=True, seed=0):
    auctioneer = DistributedAuctioneer(
        StandardAuction(),
        providers=PROVIDERS,
        config=FrameworkConfig(
            k=1, round_timeout=round_timeout, use_common_coin=use_coin
        ),
        latency_model=UniformLatencyModel(0.001, 0.01),
        seed=seed,
        fault_plan=plan,
    )
    return auctioneer.run_from_bids(make_bids(seed=seed))


def eternal_partition(node, seed=0):
    plan = FaultPlan(
        [make_fault("partition", {"nodes": [node], "at": 0.0, "duration": 1e9})],
        seed=seed,
        recovery=RecoveryPolicy(max_retries=1),
    )
    plan.reset()
    return plan


class TestConfig:
    def test_round_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameworkConfig(round_timeout=0.0)
        with pytest.raises(ValueError):
            FrameworkConfig(round_timeout=-1.0)
        assert FrameworkConfig(round_timeout=0.5).round_timeout == 0.5
        assert FrameworkConfig().round_timeout is None

    def test_config_spec_round_trips_round_timeout(self):
        spec = ScenarioSpec(
            name="t", runner="distributed", config=ConfigSpec(round_timeout=0.25)
        )
        data = spec_to_dict(spec)
        assert data["config"]["round_timeout"] == 0.25
        assert spec_from_dict(data).config.round_timeout == 0.25

    def test_round_timeout_absent_from_plain_spec_dict(self):
        # Fingerprint stability: specs without a timeout serialize exactly as
        # they did before the field existed.
        data = spec_to_dict(ScenarioSpec(name="t", runner="distributed"))
        assert "round_timeout" not in data["config"]

    def test_config_spec_validates_round_timeout(self):
        with pytest.raises(SpecError):
            ConfigSpec(round_timeout=-0.5)


class TestDegradedRuns:
    def test_partition_without_timeout_aborts_silently(self):
        report = run_auction(plan=eternal_partition(PROVIDERS[2]))
        assert report.outcome.aborted
        assert not report.outcome.degraded

    def test_partition_with_timeout_terminates_degraded(self):
        # The coin cannot agree across the partition, so the outcome is still
        # ⊥ — but every provider terminates with an explicit output and the
        # run is flagged degraded instead of silently hanging to quiescence.
        report = run_auction(round_timeout=0.05, plan=eternal_partition(PROVIDERS[2]))
        assert report.outcome.degraded
        assert all(
            output is not None for output in report.outcome.provider_outputs.values()
        )

    def test_deterministic_algorithm_degrades_to_the_baseline_result(self):
        # Without the coin the degraded majority side — and the partitioned
        # minority, which holds the same consistent inputs — all compute the
        # baseline allocation: graceful degradation with a usable outcome.
        baseline = run_auction(use_coin=False)
        degraded = run_auction(
            round_timeout=0.05, plan=eternal_partition(PROVIDERS[2]), use_coin=False
        )
        assert not baseline.outcome.degraded
        assert degraded.outcome.degraded
        assert not degraded.outcome.aborted
        assert degraded.outcome.result == baseline.outcome.result

    def test_timeout_with_healthy_network_is_not_degraded(self):
        baseline = run_auction()
        timed = run_auction(round_timeout=0.5)
        assert not timed.outcome.degraded
        assert timed.outcome.result == baseline.outcome.result

    def test_degraded_run_is_deterministic(self):
        def once():
            report = run_auction(
                round_timeout=0.05,
                plan=eternal_partition(PROVIDERS[2]),
                use_coin=False,
            )
            return (
                report.outcome.aborted,
                report.outcome.degraded,
                report.outcome.result,
                report.stats,
            )

        assert once() == once()

    def test_conservation_holds_on_degraded_runs(self):
        report = run_auction(
            round_timeout=0.05, plan=eternal_partition(PROVIDERS[2]), use_coin=False
        )
        stats = report.stats
        assert (
            stats.messages_sent
            == stats.messages_delivered + stats.messages_dropped + stats.messages_lost
        )


class TestRunRecordDegraded:
    def _record(self, degraded):
        return RunRecord(
            name="t",
            series="s",
            runner="distributed",
            mechanism="standard",
            engine="vectorized",
            users=4,
            providers=3,
            executors=3,
            k=1,
            parallel=False,
            instance=0,
            seed=0,
            elapsed_seconds=0.1,
            messages=10,
            bytes_transferred=100,
            aborted=False,
            winners=2,
            total_paid=1.0,
            total_received=1.0,
            degraded=degraded,
        )

    def test_degraded_serialized_only_when_set(self):
        assert "degraded" not in self._record(False).to_dict()
        assert self._record(True).to_dict()["degraded"] is True

    def test_round_trip(self):
        for flag in (False, True):
            record = self._record(flag)
            assert RunRecord.from_dict(record.to_dict()) == record

    def test_legacy_journals_rehydrate_without_the_field(self):
        data = self._record(False).to_dict()
        data.pop("degraded", None)
        assert RunRecord.from_dict(data).degraded is False
