"""Tests for the community-network topology, workloads and scenarios."""

import networkx as nx
import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.community.scenario import BandwidthReservationScenario
from repro.community.topology import generate_community_network
from repro.community.workload import (
    DoubleAuctionWorkload,
    StandardAuctionWorkload,
    WorkloadParameters,
)
from repro.core.config import FrameworkConfig
from repro.net.latency import LanWanLatencyModel


class TestTopology:
    def test_generated_network_is_connected(self):
        network = generate_community_network(num_nodes=30, num_gateways=5, seed=1)
        assert nx.is_connected(network.graph)
        assert network.num_nodes == 30

    def test_gateway_and_member_partition(self):
        network = generate_community_network(num_nodes=25, num_gateways=6, seed=2)
        assert len(network.gateways) == 6
        assert len(network.members) == 19
        assert not set(network.gateways) & set(network.members)

    def test_gateways_are_well_connected(self):
        network = generate_community_network(num_nodes=40, num_gateways=4, seed=3)
        degrees = dict(network.graph.degree)
        min_gateway_degree = min(degrees[g] for g in network.gateways)
        median_degree = sorted(degrees.values())[len(degrees) // 2]
        assert min_gateway_degree >= median_degree - 1

    def test_sites_cover_all_nodes_and_feed_latency_model(self):
        network = generate_community_network(num_nodes=20, num_gateways=4, num_sites=3, seed=4)
        assert set(network.sites) == set(network.graph.nodes)
        assert len(set(network.sites.values())) <= 3
        model = network.latency_model()
        assert isinstance(model, LanWanLatencyModel)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_community_network(num_nodes=5, num_gateways=5)
        with pytest.raises(ValueError):
            generate_community_network(num_sites=0)

    def test_deterministic_given_seed(self):
        a = generate_community_network(num_nodes=20, num_gateways=4, seed=9)
        b = generate_community_network(num_nodes=20, num_gateways=4, seed=9)
        assert a.gateways == b.gateways
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_hop_distance(self):
        network = generate_community_network(num_nodes=15, num_gateways=3, seed=5)
        nodes = list(network.graph.nodes)
        assert network.hop_distance(nodes[0], nodes[0]) == 0
        assert network.hop_distance(nodes[0], nodes[-1]) >= 1


class TestWorkloads:
    def test_double_auction_distributions_match_paper(self):
        workload = DoubleAuctionWorkload(seed=0)
        bids = workload.generate(200, 8)
        assert len(bids.users) == 200
        assert len(bids.providers) == 8
        assert all(0.75 <= u.unit_value <= 1.25 for u in bids.users)
        assert all(0.0 < u.demand <= 1.0 for u in bids.users)
        assert all(0.0 < p.unit_cost <= 1.0 for p in bids.providers)
        share = bids.total_demand / 8
        assert all(0.5 * share <= p.capacity <= 1.5 * share for p in bids.providers)

    def test_standard_auction_capacity_is_scarce(self):
        workload = StandardAuctionWorkload(seed=0)
        bids = workload.generate(100, 8)
        assert all(p.unit_cost == 0.0 for p in bids.providers)
        # Capacity is at most a quarter of the per-provider demand share (plus floor).
        share = bids.total_demand / 8
        assert all(p.capacity <= max(0.25 * share, 0.05) + 1e-9 for p in bids.providers)
        assert bids.total_capacity < bids.total_demand

    def test_instances_differ_but_are_reproducible(self):
        workload = DoubleAuctionWorkload(seed=0)
        a = workload.generate(10, 3, instance=0)
        b = workload.generate(10, 3, instance=1)
        again = workload.generate(10, 3, instance=0)
        assert a != b
        assert a == again

    def test_custom_parameters(self):
        params = WorkloadParameters(bid_low=2.0, bid_high=3.0)
        bids = DoubleAuctionWorkload(parameters=params, seed=1).generate(20, 2)
        assert all(2.0 <= u.unit_value <= 3.0 for u in bids.users)

    def test_provider_ids_can_be_supplied(self):
        bids = StandardAuctionWorkload(seed=0).generate(5, 2, provider_ids=["gw1", "gw2"])
        assert bids.provider_ids == ["gw1", "gw2"]


class TestScenario:
    def test_double_auction_scenario_runs_end_to_end(self):
        scenario = BandwidthReservationScenario.double_auction(
            num_users=8, num_gateways=4, seed=1
        )
        assert isinstance(scenario.mechanism, DoubleAuction)
        assert len(scenario.providers) == 4
        report = scenario.distributed(FrameworkConfig(k=1)).run_from_bids(scenario.bids)
        assert not report.aborted
        central = scenario.centralized().run(scenario.bids)
        assert report.result == central.result

    def test_standard_auction_scenario_runs_end_to_end(self):
        scenario = BandwidthReservationScenario.standard_auction(
            num_users=6, num_gateways=4, epsilon=0.5, seed=2
        )
        assert isinstance(scenario.mechanism, StandardAuction)
        report = scenario.distributed(FrameworkConfig(k=1, parallel=True)).run_from_bids(
            scenario.bids
        )
        assert not report.aborted

    def test_scenario_auction_run(self):
        scenario = BandwidthReservationScenario.double_auction(
            num_users=5, num_gateways=3, seed=3
        )
        result = scenario.auction_run(FrameworkConfig(k=1)).execute()
        assert not result.aborted
