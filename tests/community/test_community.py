"""Tests for the community-network topology, workloads and scenarios."""

import networkx as nx
import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.community.scenario import BandwidthReservationScenario
from repro.community.topology import generate_community_network
from repro.community.workload import (
    DoubleAuctionWorkload,
    StandardAuctionWorkload,
    VRSessionWorkload,
    WorkloadParameters,
)
from repro.core.config import FrameworkConfig
from repro.net.latency import LanWanLatencyModel


class TestTopology:
    def test_generated_network_is_connected(self):
        network = generate_community_network(num_nodes=30, num_gateways=5, seed=1)
        assert nx.is_connected(network.graph)
        assert network.num_nodes == 30

    def test_gateway_and_member_partition(self):
        network = generate_community_network(num_nodes=25, num_gateways=6, seed=2)
        assert len(network.gateways) == 6
        assert len(network.members) == 19
        assert not set(network.gateways) & set(network.members)

    def test_gateways_are_well_connected(self):
        network = generate_community_network(num_nodes=40, num_gateways=4, seed=3)
        degrees = dict(network.graph.degree)
        min_gateway_degree = min(degrees[g] for g in network.gateways)
        median_degree = sorted(degrees.values())[len(degrees) // 2]
        assert min_gateway_degree >= median_degree - 1

    def test_sites_cover_all_nodes_and_feed_latency_model(self):
        network = generate_community_network(num_nodes=20, num_gateways=4, num_sites=3, seed=4)
        assert set(network.sites) == set(network.graph.nodes)
        assert len(set(network.sites.values())) <= 3
        model = network.latency_model()
        assert isinstance(model, LanWanLatencyModel)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_community_network(num_nodes=5, num_gateways=5)
        with pytest.raises(ValueError):
            generate_community_network(num_sites=0)

    def test_deterministic_given_seed(self):
        a = generate_community_network(num_nodes=20, num_gateways=4, seed=9)
        b = generate_community_network(num_nodes=20, num_gateways=4, seed=9)
        assert a.gateways == b.gateways
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_hop_distance(self):
        network = generate_community_network(num_nodes=15, num_gateways=3, seed=5)
        nodes = list(network.graph.nodes)
        assert network.hop_distance(nodes[0], nodes[0]) == 0
        assert network.hop_distance(nodes[0], nodes[-1]) >= 1


class TestWorkloads:
    def test_double_auction_distributions_match_paper(self):
        workload = DoubleAuctionWorkload(seed=0)
        bids = workload.generate(200, 8)
        assert len(bids.users) == 200
        assert len(bids.providers) == 8
        assert all(0.75 <= u.unit_value <= 1.25 for u in bids.users)
        assert all(0.0 < u.demand <= 1.0 for u in bids.users)
        assert all(0.0 < p.unit_cost <= 1.0 for p in bids.providers)
        share = bids.total_demand / 8
        assert all(0.5 * share <= p.capacity <= 1.5 * share for p in bids.providers)

    def test_standard_auction_capacity_is_scarce(self):
        workload = StandardAuctionWorkload(seed=0)
        bids = workload.generate(100, 8)
        assert all(p.unit_cost == 0.0 for p in bids.providers)
        # Capacity is at most a quarter of the per-provider demand share (plus floor).
        share = bids.total_demand / 8
        assert all(p.capacity <= max(0.25 * share, 0.05) + 1e-9 for p in bids.providers)
        assert bids.total_capacity < bids.total_demand

    def test_instances_differ_but_are_reproducible(self):
        workload = DoubleAuctionWorkload(seed=0)
        a = workload.generate(10, 3, instance=0)
        b = workload.generate(10, 3, instance=1)
        again = workload.generate(10, 3, instance=0)
        assert a != b
        assert a == again

    def test_custom_parameters(self):
        params = WorkloadParameters(bid_low=2.0, bid_high=3.0)
        bids = DoubleAuctionWorkload(parameters=params, seed=1).generate(20, 2)
        assert all(2.0 <= u.unit_value <= 3.0 for u in bids.users)

    def test_provider_ids_can_be_supplied(self):
        bids = StandardAuctionWorkload(seed=0).generate(5, 2, provider_ids=["gw1", "gw2"])
        assert bids.provider_ids == ["gw1", "gw2"]


class TestVRSessionWorkload:
    def test_demand_is_bimodal(self):
        workload = VRSessionWorkload(seed=0, session_fraction=0.5)
        bids = workload.generate(400, 8)
        bursty = [u for u in bids.users if u.demand >= 0.6]
        idle = [u for u in bids.users if u.demand <= 0.3]
        # Every user falls in one of the two modes; nothing in the gap.
        assert len(bursty) + len(idle) == 400
        assert 100 < len(bursty) < 300  # ~50% in-session

    def test_in_session_users_value_bandwidth_more(self):
        workload = VRSessionWorkload(seed=1, session_fraction=0.5, value_boost=2.0)
        bids = workload.generate(300, 4)
        bursty = [u.unit_value for u in bids.users if u.demand >= 0.6]
        idle = [u.unit_value for u in bids.users if u.demand <= 0.3]
        assert sum(bursty) / len(bursty) > sum(idle) / len(idle)

    def test_capacity_is_scarce_and_costs_default_to_zero(self):
        bids = VRSessionWorkload(seed=2).generate(100, 8)
        assert all(p.unit_cost == 0.0 for p in bids.providers)
        assert bids.total_capacity < bids.total_demand

    def test_cost_range_enables_double_auction_use(self):
        bids = VRSessionWorkload(seed=3, cost_low=0.1, cost_high=0.9).generate(50, 4)
        assert all(0.1 <= p.unit_cost <= 0.9 for p in bids.providers)

    def test_instances_reproducible(self):
        workload = VRSessionWorkload(seed=4)
        assert workload.generate(20, 3, instance=1) == workload.generate(20, 3, instance=1)
        assert workload.generate(20, 3, instance=1) != workload.generate(20, 3, instance=2)

    def test_session_fraction_zero_and_one(self):
        calm = VRSessionWorkload(seed=5, session_fraction=0.0).generate(50, 4)
        assert all(u.demand <= 0.3 for u in calm.users)
        stormy = VRSessionWorkload(seed=5, session_fraction=1.0).generate(50, 4)
        assert all(u.demand >= 0.6 for u in stormy.users)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VRSessionWorkload(session_fraction=1.5)
        with pytest.raises(ValueError):
            VRSessionWorkload(burst_low=0.9, burst_high=0.1)
        with pytest.raises(ValueError):
            VRSessionWorkload(value_boost=0.0)


class TestScenario:
    def test_double_auction_scenario_runs_end_to_end(self):
        scenario = BandwidthReservationScenario.double_auction(
            num_users=8, num_gateways=4, seed=1
        )
        assert isinstance(scenario.mechanism, DoubleAuction)
        assert len(scenario.providers) == 4
        report = scenario.distributed(FrameworkConfig(k=1)).run_from_bids(scenario.bids)
        assert not report.aborted
        central = scenario.centralized().run(scenario.bids)
        assert report.result == central.result

    def test_standard_auction_scenario_runs_end_to_end(self):
        scenario = BandwidthReservationScenario.standard_auction(
            num_users=6, num_gateways=4, epsilon=0.5, seed=2
        )
        assert isinstance(scenario.mechanism, StandardAuction)
        report = scenario.distributed(FrameworkConfig(k=1, parallel=True)).run_from_bids(
            scenario.bids
        )
        assert not report.aborted

    def test_scenario_auction_run(self):
        scenario = BandwidthReservationScenario.double_auction(
            num_users=5, num_gateways=3, seed=3
        )
        result = scenario.auction_run(FrameworkConfig(k=1)).execute()
        assert not result.aborted

    def test_centralized_forwards_seed(self):
        scenario = BandwidthReservationScenario.standard_auction(
            num_users=6, num_gateways=3, epsilon=0.5, seed=4
        )
        auctioneer = scenario.centralized(seed=17)
        assert auctioneer.seed == 17
        # Matching seeds give matching mechanism randomness (and thus results).
        a = scenario.centralized(seed=17).run(scenario.bids)
        b = scenario.centralized(seed=17).run(scenario.bids)
        assert a.result == b.result
