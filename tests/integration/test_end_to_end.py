"""Integration tests: the full stack on both mechanisms, both execution modes,
the threaded transport, and the community-network scenario."""

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.welfare import budget_surplus
from repro.community.scenario import BandwidthReservationScenario
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer
from repro.core.provider_protocol import FrameworkProviderNode
from repro.net.scheduler import AdversarialScheduler
from repro.net.transport import ThreadedNetwork


class TestFullStackDoubleAuction:
    """Figure-1 pipeline for the cheap mechanism, with every block engaged."""

    def test_distributed_equals_centralized_across_sizes(self):
        providers = [f"p{i:02d}" for i in range(8)]
        for n in (5, 20, 60):
            bids = DoubleAuctionWorkload(seed=n).generate(n, 8, provider_ids=providers)
            distributed = DistributedAuctioneer(
                DoubleAuction(), providers=providers, config=FrameworkConfig(k=3)
            ).run_from_bids(bids)
            centralized = CentralizedAuctioneer(DoubleAuction()).run(bids)
            assert not distributed.aborted
            assert distributed.result == centralized.result
            assert budget_surplus(distributed.result.payments) >= -1e-9

    def test_adversarial_scheduling_does_not_change_the_outcome(self):
        providers = [f"p{i:02d}" for i in range(4)]
        bids = DoubleAuctionWorkload(seed=11).generate(15, 4, provider_ids=providers)
        baseline = DistributedAuctioneer(
            DoubleAuction(), providers=providers, config=FrameworkConfig(k=1)
        ).run_from_bids(bids)
        delayed = DistributedAuctioneer(
            DoubleAuction(),
            providers=providers,
            config=FrameworkConfig(k=1),
            scheduler=AdversarialScheduler(targets=frozenset({"p00"})),
        ).run_from_bids(bids)
        assert not delayed.aborted
        assert delayed.result == baseline.result


class TestFullStackStandardAuction:
    def test_parallel_levels_agree_on_the_result(self):
        providers = [f"p{i:02d}" for i in range(8)]
        bids = StandardAuctionWorkload(seed=21).generate(12, 8, provider_ids=providers)
        results = []
        for k, groups in ((1, 4), (1, 2), (3, 2), (3, 1)):
            report = DistributedAuctioneer(
                StandardAuction(epsilon=0.5),
                providers=providers,
                config=FrameworkConfig(k=k, parallel=True, num_groups=groups),
            ).run_from_bids(bids)
            assert not report.aborted
            results.append(report.result)
        assert all(r == results[0] for r in results)

    def test_payments_satisfy_vcg_sanity(self):
        providers = [f"p{i:02d}" for i in range(4)]
        bids = StandardAuctionWorkload(seed=33).generate(10, 4, provider_ids=providers)
        report = DistributedAuctioneer(
            StandardAuction(epsilon=0.4),
            providers=providers,
            config=FrameworkConfig(k=1, parallel=True),
        ).run_from_bids(bids)
        result = report.outcome.auction_result
        for user in bids.users:
            payment = result.payments.user_payment(user.user_id)
            assert payment >= -1e-9
            assert payment <= user.total_value + 1e-6


class TestThreadedTransportIntegration:
    def test_framework_runs_identically_on_real_threads(self):
        """The same provider protocol code runs on the threaded backend and produces
        the same agreed pair as the discrete-event simulation."""
        providers = [f"p{i}" for i in range(3)]
        bids = DoubleAuctionWorkload(seed=8).generate(6, 3, provider_ids=providers)
        config = FrameworkConfig(k=1)
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=providers, config=config
        )
        inputs = auctioneer.consistent_inputs(bids)
        expected_users = [u.user_id for u in bids.users]

        simulated = auctioneer.run(inputs, expected_users=expected_users)

        threaded = ThreadedNetwork()
        for pid in providers:
            threaded.add_node(
                FrameworkProviderNode(
                    inputs[pid], DoubleAuction(), config, expected_users, providers
                )
            )
        outputs = threaded.run(timeout=30.0)
        assert set(outputs) == set(providers)
        values = list(outputs.values())
        assert all(v == values[0] for v in values)
        assert values[0] == simulated.result


class TestCommunityScenarioIntegration:
    def test_gateway_auction_over_generated_topology(self):
        scenario = BandwidthReservationScenario.double_auction(
            num_users=12, num_gateways=5, seed=4
        )
        report = scenario.distributed(FrameworkConfig(k=2), measure_compute=True).run_from_bids(
            scenario.bids
        )
        assert not report.aborted
        assert report.outcome.elapsed_time > 0
        # Every winner is a member (not a gateway) and every used provider a gateway.
        winners = report.result.allocation.winners()
        assert all(w.startswith("u") for w in winners)
        assert set(report.result.allocation.providers_used()) <= set(scenario.providers)
