"""Property-based tests for the distributed simulation's correctness (Definition 1).

Over random instances and random schedules, the honest execution of the framework
must produce the same (x, p) pair at every provider, equal to what a trusted
auctioneer running the same algorithm on the same agreed input would produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auctions.double_auction import DoubleAuction
from repro.common import is_abort
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer
from repro.net.scheduler import FairScheduler, RandomScheduler

PROVIDERS = [f"p{i:02d}" for i in range(3)]


class TestCorrectSimulationProperty:
    @given(
        num_users=st.integers(min_value=1, max_value=12),
        workload_seed=st.integers(min_value=0, max_value=10_000),
        network_seed=st.integers(min_value=0, max_value=10_000),
        use_random_schedule=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_honest_simulation_matches_trusted_auctioneer(
        self, num_users, workload_seed, network_seed, use_random_schedule
    ):
        bids = DoubleAuctionWorkload(seed=workload_seed).generate(
            num_users, len(PROVIDERS), provider_ids=PROVIDERS
        )
        auctioneer = DistributedAuctioneer(
            DoubleAuction(),
            providers=PROVIDERS,
            config=FrameworkConfig(k=1),
            scheduler=RandomScheduler() if use_random_schedule else FairScheduler(),
            seed=network_seed,
        )
        report = auctioneer.run_from_bids(bids)
        assert not report.aborted
        # Definition 1: the outcome is the pair a trusted auctioneer would compute.
        assert report.result == DoubleAuction().run(bids)
        # And every provider individually output that exact pair.
        outputs = list(report.outcome.provider_outputs.values())
        assert all(o == outputs[0] for o in outputs)

    @given(
        workload_seed=st.integers(min_value=0, max_value=10_000),
        inconsistent_value=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_equivocating_bidder_never_causes_disagreement(
        self, workload_seed, inconsistent_value
    ):
        bids = DoubleAuctionWorkload(seed=workload_seed).generate(
            6, len(PROVIDERS), provider_ids=PROVIDERS
        )
        auctioneer = DistributedAuctioneer(
            DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=1)
        )
        inputs = auctioneer.consistent_inputs(bids)
        victim = bids.users[0]
        # One provider received a different bid from the equivocating user.
        inputs[PROVIDERS[0]].received_user_bids[victim.user_id] = victim.with_unit_value(
            inconsistent_value
        )
        report = auctioneer.run(inputs, expected_users=[u.user_id for u in bids.users])
        outputs = list(report.outcome.provider_outputs.values())
        # Whatever the agreement resolved, all providers output the same thing, and
        # the round never ends with providers holding different valid pairs.
        assert all(o == outputs[0] for o in outputs) or report.aborted
