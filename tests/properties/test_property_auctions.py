"""Property-based tests for the auction mechanisms' invariants.

These check, over randomly generated instances, the properties the paper relies on:
feasibility, budget balance, individual rationality, losers-pay-nothing, and (for the
double auction) uniform pricing.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.auctions.base import BidVector, ProviderAsk, UserBid
from repro.auctions.double_auction import DoubleAuction
from repro.auctions.engine import ENGINES, make_standard_auction
from repro.auctions.greedy import GreedyStandardAuction
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.welfare import budget_surplus, provider_utility, social_welfare, user_utility

# -- instance strategies -----------------------------------------------------------------

user_bids = st.builds(
    UserBid,
    user_id=st.integers(min_value=0, max_value=999).map(lambda i: f"u{i:03d}"),
    unit_value=st.floats(min_value=0.01, max_value=5.0),
    demand=st.floats(min_value=0.01, max_value=2.0),
)

provider_asks = st.builds(
    ProviderAsk,
    provider_id=st.integers(min_value=0, max_value=99).map(lambda i: f"p{i:02d}"),
    unit_cost=st.floats(min_value=0.0, max_value=2.0),
    capacity=st.floats(min_value=0.0, max_value=5.0),
)


def _dedupe(items, key):
    seen = {}
    for item in items:
        seen.setdefault(key(item), item)
    return tuple(seen.values())


bid_vectors = st.builds(
    lambda users, providers: BidVector(
        _dedupe(users, lambda u: u.user_id), _dedupe(providers, lambda p: p.provider_id)
    ),
    st.lists(user_bids, min_size=1, max_size=10),
    st.lists(provider_asks, min_size=1, max_size=4),
)


class TestDoubleAuctionInvariants:
    @given(bid_vectors)
    @settings(max_examples=120, deadline=None)
    def test_feasibility(self, bids):
        result = DoubleAuction().run(bids)
        result.allocation.check_feasible(bids)

    @given(bid_vectors)
    @settings(max_examples=120, deadline=None)
    def test_budget_balance(self, bids):
        result = DoubleAuction().run(bids)
        assert budget_surplus(result.payments) >= -1e-9

    @given(bid_vectors)
    @settings(max_examples=120, deadline=None)
    def test_individual_rationality(self, bids):
        result = DoubleAuction().run(bids)
        for user_id in result.allocation.winners():
            assert user_utility(bids, result, user_id) >= -1e-9
        for provider_id in result.allocation.providers_used():
            assert provider_utility(bids, result, provider_id) >= -1e-9

    @given(bid_vectors)
    @settings(max_examples=80, deadline=None)
    def test_welfare_is_nonnegative(self, bids):
        result = DoubleAuction().run(bids)
        assert social_welfare(bids, result.allocation) >= -1e-9

    @given(bid_vectors)
    @settings(max_examples=60, deadline=None)
    def test_determinism(self, bids):
        assert DoubleAuction().run(bids) == DoubleAuction().run(bids)


class TestStandardAuctionInvariants:
    @given(bid_vectors, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_single_provider_feasibility(self, bids, seed):
        result = StandardAuction(epsilon=0.6).run(bids, random.Random(seed))
        result.allocation.check_feasible(bids, single_provider=True)

    @given(bid_vectors, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_losers_pay_nothing_and_winners_are_rational(self, bids, seed):
        result = StandardAuction(epsilon=0.6).run(bids, random.Random(seed))
        winners = set(result.allocation.winners())
        for user in bids.users:
            payment = result.payments.user_payment(user.user_id)
            if user.user_id not in winners:
                assert payment == 0.0
            else:
                assert payment <= user.total_value + 1e-6

    @given(bid_vectors)
    @settings(max_examples=40, deadline=None)
    def test_greedy_baseline_feasible(self, bids):
        GreedyStandardAuction().run(bids).allocation.check_feasible(
            bids, single_provider=True
        )


@pytest.fixture(params=ENGINES)
def engine(request):
    """Both execution engines of the standard auction (see DESIGN.md)."""
    return request.param


class TestStandardAuctionEngineInvariants:
    """The mechanism's invariants hold for *both* engines, not just the reference.

    The differential suite proves the engines equal on sampled grids; these
    property tests additionally pin the game-theoretic invariants directly, so a
    future engine that drifts from the reference still cannot silently violate
    individual rationality or feasibility.
    """

    @staticmethod
    def _mechanism(engine):
        kwargs = {"pivot_mode": "serial"} if engine == "vectorized" else {}
        return make_standard_auction(engine, epsilon=0.6, **kwargs)

    @given(bids=bid_vectors, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_no_capacity_violation(self, engine, bids, seed):
        result = self._mechanism(engine).run(bids, random.Random(seed))
        result.allocation.check_feasible(bids, single_provider=True)

    @given(bids=bid_vectors, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_individual_rationality(self, engine, bids, seed):
        """Payment never exceeds the declared value of the allocated bundle."""
        result = self._mechanism(engine).run(bids, random.Random(seed))
        for user in bids.users:
            payment = result.payments.user_payment(user.user_id)
            allocated_value = user.unit_value * result.allocation.user_total(user.user_id)
            assert payment <= allocated_value + 1e-9
            assert payment >= 0.0

    @given(bids=bid_vectors, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_losers_pay_nothing(self, engine, bids, seed):
        result = self._mechanism(engine).run(bids, random.Random(seed))
        winners = set(result.allocation.winners())
        for user in bids.users:
            if user.user_id not in winners:
                assert result.payments.user_payment(user.user_id) == 0.0
