"""Property tests for the consensus layer (previously example-based only).

Two families, Hypothesis-driven with >=100 generated cases each:

* **bit-encoding round trips** (§4.1: "a stream of bits uniquely determined
  from the bid") — ``value_to_bits``/``bits_to_value`` reassemble the exact
  canonical bytes for arbitrary nested payloads, the fixed-width
  ``bid_to_bits``/``bits_to_bid`` pair is lossless for every finite float
  (IEEE-754 doubles, signed zero and subnormals included), and equal values
  encode to equal bit streams;
* **leader-election determinism** — the commit/reveal election is a pure
  function of ``(participants, seed)``: replaying a network with the same
  seed elects the identical leader (the reproducibility contract every
  resilience verdict rests on), and the leader is always a participant agreed
  on by everyone.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_block_network

from repro.consensus.bit_encoding import (
    BID_BIT_LENGTH,
    bid_to_bits,
    bits_to_bid,
    bits_to_value,
    value_to_bits,
)
from repro.consensus.leader_election import LeaderElectionBlock
from repro.net.serialization import canonical_encode

#: Scalars canonical_encode supports, floats restricted to finite values
#: (canonical encoding rejects NaN payloads by design of the comparison layer).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

#: Nested payloads shaped like real protocol messages: lists/tuples/dicts of
#: scalars with string keys (sortable, like every tag/field map on the wire).
_payloads = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestBitEncodingRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(payload=_payloads)
    def test_value_bits_reassemble_canonical_bytes(self, payload):
        bits = value_to_bits(payload)
        assert set(bits) <= {0, 1}
        assert len(bits) % 8 == 0
        assert bits_to_value(bits) == canonical_encode(payload)

    @settings(max_examples=150, deadline=None)
    @given(payload=_payloads)
    def test_equal_values_encode_to_equal_bits(self, payload):
        # The per-bit agreement mode relies on the encoding being a function
        # of the *value*: re-encoding the same payload must be bit-identical.
        assert value_to_bits(payload) == value_to_bits(payload)

    @settings(max_examples=150, deadline=None)
    @given(
        unit_value=st.floats(allow_nan=False, allow_infinity=False),
        demand=st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_fixed_width_bid_round_trip_is_lossless(self, unit_value, demand):
        bits = bid_to_bits(unit_value, demand)
        assert len(bits) == BID_BIT_LENGTH
        decoded_value, decoded_demand = bits_to_bid(bits)
        # Bit-exact IEEE-754 round trip: signed zero preserved too.
        assert decoded_value == unit_value and decoded_demand == demand
        assert math.copysign(1.0, decoded_value) == math.copysign(1.0, unit_value)
        assert math.copysign(1.0, decoded_demand) == math.copysign(1.0, demand)


class TestLeaderElectionDeterminism:
    @settings(max_examples=100, deadline=None)
    @given(
        num_providers=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_same_seed_elects_same_leader(self, num_providers, seed):
        providers = [f"p{i}" for i in range(num_providers)]

        def elect():
            return run_block_network(
                providers, lambda nid: LeaderElectionBlock("le"), seed=seed
            )

        first = elect()
        second = elect()
        # All participants agree, the leader is a participant, and replaying
        # the same (participants, seed) network reproduces it exactly.
        assert len(set(first.values())) == 1
        assert first["p0"] in providers
        assert first == second
