"""Property: every enqueued message is eventually delivered (scheduler fairness).

The paper's execution model only requires *fair* schedules — every message sent
is eventually delivered (§3.3) — and the protocol-level results are proven under
that assumption, so the queue implementations must uphold it structurally.  A
randomized-loop harness (fixed seeds, Hypothesis-style) drives random traffic
through each scheduler's queue and checks conservation:

* while no node finishes, ``delivered == sent`` and nothing is dropped — no
  message is starved forever, not even targeted traffic under the adversarial
  scheduler (the deferral budget forces it through);
* with nodes finishing mid-run, every message is accounted for exactly once:
  ``delivered + dropped == sent``.
"""

from __future__ import annotations

import pytest

from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.node import Node, NodeContext
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

SCHEDULERS = {
    "fair": FairScheduler,
    "round_robin": RoundRobinScheduler,
    "random": RandomScheduler,
    "adversarial": lambda: AdversarialScheduler(
        targets=frozenset({"p1", "p5"}), max_deferrals=4
    ),
}


class RandomTraffic(Node):
    """Forwards hop-counted tokens to random peers; optionally finishes."""

    def __init__(self, node_id: str, ledger, finish_after=None) -> None:
        super().__init__(node_id)
        self.ledger = ledger  # {"sent": int, "delivered_ids": set}
        self.finish_after = finish_after
        self.received = 0

    def _send_token(self, ctx: NodeContext, hops: int) -> None:
        peers = [p for p in ctx.peers if p != self.node_id]
        target = peers[ctx.rng.randrange(len(peers))]
        self.ledger["sent"] += 1
        ctx.send(target, hops, tag="token")

    def on_start(self, ctx: NodeContext) -> None:
        for _ in range(3):
            self._send_token(ctx, hops=6)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        assert message.msg_id not in self.ledger["delivered_ids"]
        self.ledger["delivered_ids"].add(message.msg_id)
        self.received += 1
        if message.payload > 0:
            self._send_token(ctx, hops=message.payload - 1)
        if self.finish_after is not None and self.received >= self.finish_after:
            self.finish(self.received)


def _run(scheduler_factory, seed: int, finishing: bool):
    ledger = {"sent": 0, "delivered_ids": set()}
    net = SimNetwork(
        latency_model=UniformLatencyModel(0.001, 0.02),
        scheduler=scheduler_factory(),
        seed=seed,
    )
    net.add_nodes(
        [
            RandomTraffic(
                f"p{i}",
                ledger,
                finish_after=(5 + i if finishing and i % 2 else None),
            )
            for i in range(8)
        ]
    )
    stats = net.run(max_steps=100_000)
    return ledger, stats, net


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_every_enqueued_message_is_delivered(name, seed):
    ledger, stats, net = _run(SCHEDULERS[name], seed, finishing=False)
    assert ledger["sent"] > 20
    assert stats.messages_delivered == ledger["sent"]
    assert len(ledger["delivered_ids"]) == ledger["sent"]
    assert stats.messages_dropped == 0
    assert net.in_flight_count == 0


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_conservation_with_finishing_nodes(name, seed):
    """With recipients retiring mid-run every message is still accounted for:
    delivered exactly once, or dropped at quiescence — never lost, never
    duplicated."""
    ledger, stats, net = _run(SCHEDULERS[name], seed, finishing=True)
    assert stats.messages_delivered == len(ledger["delivered_ids"])
    assert stats.messages_delivered + stats.messages_dropped == ledger["sent"]
    assert net.in_flight_count == 0
