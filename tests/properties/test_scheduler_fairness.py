"""Property: every enqueued message is eventually delivered (scheduler fairness).

The paper's execution model only requires *fair* schedules — every message sent
is eventually delivered (§3.3) — and the protocol-level results are proven under
that assumption, so the queue implementations must uphold it structurally.  A
randomized-loop harness (fixed seeds, Hypothesis-style) drives random traffic
through each scheduler's queue and checks conservation:

* while no node finishes, ``delivered == sent`` and nothing is dropped — no
  message is starved forever, not even targeted traffic under the adversarial
  scheduler (the deferral budget forces it through);
* with nodes finishing mid-run, every message is accounted for exactly once:
  ``delivered + dropped == sent``;
* with a loss fault armed, the books still balance — every send (including
  recovery retransmissions) is delivered exactly once, dropped at quiescence
  or lost to the fault: ``delivered + dropped + lost == sent`` — for every
  scheduler *and* for duck-typed pre-queue schedulers behind
  ``LegacySchedulerAdapter``.
"""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.net.faults import FaultPlan, LossFault, RecoveryPolicy
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.node import Node, NodeContext
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

SCHEDULERS = {
    "fair": FairScheduler,
    "round_robin": RoundRobinScheduler,
    "random": RandomScheduler,
    "adversarial": lambda: AdversarialScheduler(
        targets=frozenset({"p1", "p5"}), max_deferrals=4
    ),
}


class RandomTraffic(Node):
    """Forwards hop-counted tokens to random peers; optionally finishes."""

    def __init__(self, node_id: str, ledger, finish_after=None) -> None:
        super().__init__(node_id)
        self.ledger = ledger  # {"sent": int, "delivered_ids": set}
        self.finish_after = finish_after
        self.received = 0

    def _send_token(self, ctx: NodeContext, hops: int) -> None:
        peers = [p for p in ctx.peers if p != self.node_id]
        target = peers[ctx.rng.randrange(len(peers))]
        self.ledger["sent"] += 1
        ctx.send(target, hops, tag="token")

    def on_start(self, ctx: NodeContext) -> None:
        for _ in range(3):
            self._send_token(ctx, hops=6)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        assert message.msg_id not in self.ledger["delivered_ids"]
        self.ledger["delivered_ids"].add(message.msg_id)
        self.received += 1
        if message.payload > 0:
            self._send_token(ctx, hops=message.payload - 1)
        if self.finish_after is not None and self.received >= self.finish_after:
            self.finish(self.received)


def _run(scheduler_factory, seed: int, finishing: bool):
    ledger = {"sent": 0, "delivered_ids": set()}
    net = SimNetwork(
        latency_model=UniformLatencyModel(0.001, 0.02),
        scheduler=scheduler_factory(),
        seed=seed,
    )
    net.add_nodes(
        [
            RandomTraffic(
                f"p{i}",
                ledger,
                finish_after=(5 + i if finishing and i % 2 else None),
            )
            for i in range(8)
        ]
    )
    stats = net.run(max_steps=100_000)
    return ledger, stats, net


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_every_enqueued_message_is_delivered(name, seed):
    ledger, stats, net = _run(SCHEDULERS[name], seed, finishing=False)
    assert ledger["sent"] > 20
    assert stats.messages_delivered == ledger["sent"]
    assert len(ledger["delivered_ids"]) == ledger["sent"]
    assert stats.messages_dropped == 0
    assert net.in_flight_count == 0


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_conservation_with_finishing_nodes(name, seed):
    """With recipients retiring mid-run every message is still accounted for:
    delivered exactly once, or dropped at quiescence — never lost, never
    duplicated."""
    ledger, stats, net = _run(SCHEDULERS[name], seed, finishing=True)
    assert stats.messages_delivered == len(ledger["delivered_ids"])
    assert stats.messages_delivered + stats.messages_dropped == ledger["sent"]
    assert net.in_flight_count == 0


class _LegacyEarliest:
    """Pre-queue duck-typed scheduler: ``select``/``reset`` only, no base class.

    ``SimNetwork`` must wrap it in ``LegacySchedulerAdapter`` automatically, so
    this fixture exercises the adapter path under injected loss.
    """

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return min(in_flight, key=lambda m: (m.arrival_time, m.msg_id))

    def reset(self) -> None:
        pass


#: All four queue schedulers plus the legacy-adapter path.
LOSSY_SCHEDULERS = dict(SCHEDULERS, legacy=_LegacyEarliest)


def _run_lossy(scheduler_factory, seed: int):
    ledger = {"sent": 0, "delivered_ids": set()}
    net = SimNetwork(
        latency_model=UniformLatencyModel(0.001, 0.02),
        scheduler=scheduler_factory(),
        seed=seed,
        fault_plan=FaultPlan(
            [LossFault(rate=0.15)],
            seed=seed,
            recovery=RecoveryPolicy(max_retries=2),
        ),
    )
    net.add_nodes(
        [RandomTraffic(f"p{i}", ledger, finish_after=None) for i in range(8)]
    )
    stats = net.run(max_steps=100_000)
    return ledger, stats, net


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("name", sorted(LOSSY_SCHEDULERS))
def test_conservation_under_injected_loss(name, seed):
    """Armed loss fault + bounded retransmission: the runtime-level books
    balance exactly — ``sent == delivered + dropped + lost`` — where ``sent``
    includes the recovery layer's retransmissions, and nothing is delivered
    twice."""
    ledger, stats, net = _run_lossy(LOSSY_SCHEDULERS[name], seed)
    assert stats.messages_lost > 0  # the fault really fired
    assert stats.retransmissions > 0  # and the recovery layer answered
    assert stats.messages_sent >= ledger["sent"]  # retransmits are extra sends
    assert (
        stats.messages_sent
        == stats.messages_delivered + stats.messages_dropped + stats.messages_lost
    )
    assert stats.messages_delivered == len(ledger["delivered_ids"])
    assert net.in_flight_count == 0
