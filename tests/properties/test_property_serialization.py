"""Property-based tests for canonical encoding and bit encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.bit_encoding import bid_to_bits, bits_to_bid
from repro.net.serialization import canonical_encode, estimate_size

# Strategy for payloads the canonical encoder must support.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestCanonicalEncodeProperties:
    @given(payloads)
    @settings(max_examples=150)
    def test_encoding_is_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @given(st.dictionaries(st.text(max_size=8), scalars, max_size=6))
    @settings(max_examples=100)
    def test_dict_order_independence(self, mapping):
        items = list(mapping.items())
        shuffled = dict(reversed(items))
        assert canonical_encode(mapping) == canonical_encode(shuffled)

    @given(payloads, payloads)
    @settings(max_examples=150)
    def test_equal_values_encode_equal(self, a, b):
        if a == b and type(a) is type(b):
            assert canonical_encode(a) == canonical_encode(b)

    @given(payloads)
    @settings(max_examples=100)
    def test_estimate_size_is_positive(self, value):
        assert estimate_size(value) >= 1


class TestBitEncodingProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_bid_round_trip(self, unit_value, demand):
        assert bits_to_bid(bid_to_bits(unit_value, demand)) == (unit_value, demand)

    @given(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_bit_stream_is_fixed_width_binary(self, unit_value, demand):
        bits = bid_to_bits(unit_value, demand)
        assert len(bits) == 128
        assert set(bits) <= {0, 1}
