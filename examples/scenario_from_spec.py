"""Scenarios as data: load spec files, override fields, batch and sweep.

Everything in this example is driven by declarative specs — no mechanism,
workload or adversary is constructed by hand:

1. load ``examples/specs/vr_sessions.toml`` (bursty VR-session demand) and run
   a 5-round batch through the ``Simulation`` facade;
2. tweak the same spec in-flight with dotted-path overrides (the CLI's
   ``--set`` mechanism);
3. run a *full round with adversarial bidders* — a silent user and an
   equivocating user over a generated community-network topology — again
   purely from data: the adversary strategies are registry kinds.

Run with::

    python examples/scenario_from_spec.py
"""

import os

from repro.scenarios import Simulation, spec_from_dict

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def batch_from_file() -> None:
    with Simulation.from_file(os.path.join(SPEC_DIR, "vr_sessions.toml")) as sim:
        spec = sim.spec
        print(f"spec '{spec.name}': {spec.users} users, {spec.providers} providers, "
              f"workload {spec.workload.kind}, mechanism {spec.mechanism.kind}")
        batch = sim.run_batch()
    print(f"rounds          : {batch.total_rounds} ({batch.aborted_rounds} aborted)")
    print(f"mean time       : {batch.mean_elapsed_seconds:.4f} s (model)")
    winners = [record.winners for record in batch.records]
    print(f"winners / round : {winners}  (bursty demand -> scarce capacity)")


def override_in_flight() -> None:
    with Simulation.from_file(
        os.path.join(SPEC_DIR, "vr_sessions.toml"),
        overrides={"users": 30, "workload.session_fraction": 0.7, "rounds": 1},
    ) as sim:
        record = sim.run()
    print(f"\n70% of 30 users in-session: {record.winners} winners, "
          f"revenue {record.total_received:.3f}")


def adversaries_from_data() -> None:
    spec = spec_from_dict(
        {
            "name": "community-adversaries",
            "mechanism": "double",
            "users": 16,
            "providers": 6,
            "runner": "auction_run",
            "topology": {"kind": "community", "num_sites": 3},
            "latency": "community",
            "config": {"k": 2},
            "bidders": [
                {"kind": "silent", "indices": [0]},
                {"kind": "inconsistent", "indices": [1]},
            ],
            "seed": 3,
        }
    )
    with Simulation(spec) as sim:
        network = sim.topology
        print(f"\ncommunity network: {network.num_nodes} nodes, "
              f"{len(network.gateways)} gateways; one silent + one equivocating bidder")
        record = sim.run()
    print(f"outcome          : {'ABORT' if record.aborted else 'agreed (x, p)'}")
    print(f"messages / bytes : {record.messages} / {record.bytes_transferred}")
    print(f"winning users    : {record.winners} of {record.users} "
          "(the misbehaving users are neutralised, honest bids are unaffected)")


def main() -> None:
    batch_from_file()
    override_in_flight()
    adversaries_from_data()


if __name__ == "__main__":
    main()
