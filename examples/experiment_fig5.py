"""Regenerate Figure 5 (running time of the standard auction) as a text table.

Equivalent to ``repro-auction fig5`` — and to
``repro-auction sweep --spec examples/specs/fig5.toml``: the experiment is a
built-in sweep spec (``figure5_sweep``) executed through the scenario layer's
sweep engine, so all three entry points share one code path.  Use ``--quick``
for a reduced sweep.

Run with::

    python examples/experiment_fig5.py [--quick]
"""

import argparse

from repro.bench import format_points, format_series
from repro.bench.harness import record_to_point
from repro.scenarios import figure5_sweep, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced user sweep")
    parser.add_argument("--epsilon", type=float, default=0.25, help="accuracy/effort knob")
    args = parser.parse_args()

    n_values = (25, 50, 75) if args.quick else (25, 50, 75, 100, 125)
    sweep = figure5_sweep(
        n_values=n_values, p_values=(1, 2, 4), epsilon=args.epsilon, seed=42
    )
    result = run_sweep(sweep)
    points = [record_to_point("fig5", record) for record in result.records]

    print("Figure 5 — standard auction running time (model seconds) vs number of users")
    print("Series: p=1 (centralised), p=2 (k=3), p=4 (k=1), with m=8 providers\n")
    print(format_series(points))
    print()
    print(format_points(points))


if __name__ == "__main__":
    main()
