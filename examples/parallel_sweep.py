"""Parallel sweeps with a persistent results journal and resume.

The evaluation of the paper is a *grid* of auction runs (users × k ×
parallelism).  This example runs such a grid three ways over the same
declarative ``SweepSpec``:

1. sequentially (the baseline every other mode must match bit-for-bit on
   deterministic fields);
2. in a 2-process worker pool with a JSONL results journal (``store=``) —
   every record is appended as it completes, so an interrupted sweep loses
   nothing;
3. resumed from that journal (``resume=True``) — nothing is left to run, so
   zero rounds execute and the records rehydrate from disk bit-identically.

Run with::

    python examples/parallel_sweep.py
"""

import os
import tempfile

from repro.scenarios import SweepSpec, run_sweep, spec_from_dict

base = spec_from_dict(
    {
        "name": "parallel-demo",
        "mechanism": "double",
        "users": 24,
        "providers": 4,
        "latency": "constant",
        "measure_compute": False,  # deterministic virtual clock: exact equality below
        "rounds": 2,
        "config": {"k": 1},
    }
)
sweep = SweepSpec(base=base, name="parallel-demo", axes=(("users", (16, 24)), ("seed", (0, 1))))

sequential = run_sweep(sweep)
print(f"sequential     : {len(sequential.records)} records, "
      f"{sequential.executed_rounds} executed")

journal = os.path.join(tempfile.mkdtemp(prefix="repro-sweep-"), "results.jsonl")
parallel = run_sweep(sweep, workers=2, store=journal)
print(f"workers=2      : {len(parallel.records)} records, "
      f"{parallel.executed_rounds} executed -> journal {journal}")

# The differential guarantee: bit-identical records, in the same grid order.
assert parallel.records == sequential.records, "parallel must match sequential exactly"
print("differential   : parallel == sequential (bit-identical, grid order)")

resumed = run_sweep(sweep, store=journal, resume=True)
print(f"resume         : {resumed.executed_rounds} executed, "
      f"{resumed.resumed_rounds} reused from the journal")
assert resumed.executed_rounds == 0
assert resumed.records == sequential.records

# The journal is plain JSONL: a manifest line plus one line per round.
with open(journal, "r", encoding="utf-8") as handle:
    print(f"journal lines  : {sum(1 for _ in handle)} "
          f"(1 manifest + {len(parallel.records)} records)")
