"""Resilience audits as a first-class workload: sweep coalitions, in parallel.

Where ``examples/adversarial_coalitions.py`` hand-wires five coalitions against
one auctioneer through the low-level :func:`repro.gametheory.check_k_resilience`
API, this example drives the same claim (Definition 2: k-resilient ex-post
equilibrium) through the declarative audit subsystem: a
:class:`~repro.scenarios.resilience.ResilienceSpec` enumerates every coalition
of size <= k, crosses it with the deviation library and the schedules, and
:meth:`~repro.scenarios.simulation.Simulation.audit_resilience` runs the grid —
here in a 2-process pool, with the honest baseline solved once per
(schedule, seed) group.  The same audit is reachable from the CLI::

    repro-auction resilience --spec examples/specs/resilience.json --workers 2

Run with::

    python examples/resilience_audit.py
"""

from repro.scenarios import ScenarioSpec, Simulation


def main() -> None:
    spec = ScenarioSpec(
        name="resilience-demo",
        mechanism="double",
        users=12,
        providers=5,
        config={"k": 2},
        seed=9,
        measure_compute=False,
    )
    with Simulation(spec) as sim:
        result = sim.audit_resilience(
            adversaries=("equivocate", {"kind": "tamper_output", "bonus": 5.0}),
            schedules=("fair", "round_robin"),
            workers=2,
        )

    by_schedule = {}
    for record in result.records:
        by_schedule.setdefault(record.schedule, []).append(record)
    for schedule, records in by_schedule.items():
        aborted = sum(1 for r in records if r.deviating_aborted)
        worst = max(r.max_gain for r in records)
        print(
            f"{schedule:<12s} {len(records):3d} cells, {aborted:3d} drove the outcome "
            f"to ⊥, best member gain {worst:+.6f}"
        )

    print()
    if result.is_resilient():
        print(
            f"resilient: no coalition of size <= 2 profited or altered the valid "
            f"outcome across {len(result.records)} cells — consistent with Theorem 1"
        )
    else:
        print("WARNING: violations found:")
        for record in result.profitable_deviations + result.influence_violations:
            print(f"  - {record.label} by {','.join(record.coalition)}")


if __name__ == "__main__":
    main()
