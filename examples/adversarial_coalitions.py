"""k-resilience in action: what provider coalitions can (and cannot) achieve.

The guarantee of the paper (Theorem 1) is that the distributed simulation is a
k-resilient equilibrium: a coalition of up to k providers cannot improve any member's
utility by deviating — observable deviations drive the outcome to ⊥ (nobody gets
paid), and unobservable ones cannot steer the correct providers to a different valid
result.  This example runs a library of deviations against an honest baseline and
prints what happened to the outcome and to the deviators' utilities.

Run with::

    python examples/adversarial_coalitions.py
"""

import functools

from repro.adversary import (
    Coalition,
    CrashingProviderNode,
    EquivocatingProviderNode,
    MessageDroppingProviderNode,
    OutputTamperingProviderNode,
)
from repro.auctions import DoubleAuction
from repro.community import DoubleAuctionWorkload
from repro.core import DistributedAuctioneer, FrameworkConfig
from repro.gametheory import check_k_resilience

PROVIDERS = [f"gw{i}" for i in range(5)]


def main() -> None:
    bids = DoubleAuctionWorkload(seed=9).generate(12, len(PROVIDERS), provider_ids=PROVIDERS)
    auctioneer = DistributedAuctioneer(
        DoubleAuction(), providers=PROVIDERS, config=FrameworkConfig(k=2)
    )

    coalitions = [
        ("equivocate in agreement", Coalition.of(["gw0"], EquivocatingProviderNode)),
        ("tamper with own output (+5.0 revenue)",
         Coalition.of(["gw1"], functools.partial(OutputTamperingProviderNode, bonus=5.0))),
        ("drop echo messages", Coalition.of(
            ["gw2"], functools.partial(MessageDroppingProviderNode, tag_substring="|echo"))),
        ("crash after 4 messages", Coalition.of(
            ["gw3"], functools.partial(CrashingProviderNode, max_sends=4))),
        ("2-provider equivocating coalition",
         Coalition.of(["gw0", "gw4"], EquivocatingProviderNode)),
    ]

    report = check_k_resilience(auctioneer, bids, coalitions)
    honest = report.outcomes[0].honest_outcome
    print(f"honest outcome : agreed pair, {len(honest.auction_result.allocation.winners())} winners, "
          f"total provider revenue {honest.auction_result.payments.total_received:.3f}\n")

    header = f"{'deviation':<42s} {'outcome':<10s} {'max member gain':>16s}"
    print(header)
    print("-" * len(header))
    for outcome in report.outcomes:
        label = outcome.label
        status = "ABORT" if outcome.deviating_outcome.aborted else "agreed"
        gain = max(outcome.member_gains.values())
        print(f"{label:<42s} {status:<10s} {gain:>16.6f}")

    print()
    if report.is_resilient():
        print("no deviation was profitable and none altered the valid outcome "
              "-> consistent with the k-resilient equilibrium of Theorem 1")
    else:
        print("WARNING: a profitable or outcome-altering deviation was found:")
        for outcome in report.profitable_deviations + report.influence_violations:
            print(f"  - {outcome.label}")


if __name__ == "__main__":
    main()
