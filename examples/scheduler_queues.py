"""The event-queue scheduler protocol: four built-in queues plus a custom one.

Runs the same gossip workload under every built-in scheduler and under a
custom legacy-style scheduler (``select()`` only — served by the base class's
queue adapter), showing that:

* protocol outputs are schedule-independent (the paper's "ex post" notion);
* every scheduler is fair — all traffic to live nodes is delivered;
* the simulator core's throughput, since delivery is O(log M) per message.

Run:  PYTHONPATH=src python examples/scheduler_queues.py
"""

from __future__ import annotations

import time

from repro.net.latency import BandwidthLatencyModel
from repro.net.message import Message
from repro.net.network import SimNetwork
from repro.net.node import Node, NodeContext
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)

NUM_NODES = 12
TOKENS_PER_NODE = 5
HOPS = 8


class GossipNode(Node):
    """Forwards hop-counted tokens to the next peer; finishes when told."""

    def on_start(self, ctx: NodeContext) -> None:
        peers = [p for p in ctx.peers if p != self.node_id]
        for t in range(TOKENS_PER_NODE):
            target = peers[(t + int(self.node_id[1:])) % len(peers)]
            ctx.send(target, HOPS, tag="token")
        ctx.set_timer(5.0, "deadline")

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if message.is_timer():
            self.finish(ctx.now())
            return
        if message.payload > 0:
            peers = [p for p in ctx.peers if p != self.node_id]
            target = peers[ctx.rng.randrange(len(peers))]
            ctx.send(target, message.payload - 1, tag="token")


class EarliestSendScheduler(Scheduler):
    """A custom scheduler the legacy way: only ``select`` is implemented.

    The Scheduler base class turns it into a queue automatically — existing
    third-party schedulers keep working without changes (at their old O(M)
    cost; implement push/pop for the fast path).
    """

    def select(self, in_flight, rng):
        return min(in_flight, key=lambda m: (m.send_time, m.msg_id))


def run_under(name: str, scheduler: Scheduler) -> None:
    net = SimNetwork(
        latency_model=BandwidthLatencyModel(base=0.002, bandwidth_bytes_per_s=1e6),
        scheduler=scheduler,
        seed=7,
    )
    net.add_nodes([GossipNode(f"n{i}") for i in range(NUM_NODES)])
    start = time.perf_counter()
    stats = net.run()
    wall = time.perf_counter() - start
    rate = stats.messages_delivered / wall if wall > 0 else float("inf")
    print(
        f"{name:<22} delivered={stats.messages_delivered:>4}  "
        f"dropped={stats.messages_dropped:>3}  "
        f"virtual={stats.elapsed_time:7.3f}s  {rate:>9,.0f} msgs/sec"
    )


def main() -> None:
    print(f"gossip mesh: {NUM_NODES} nodes x {TOKENS_PER_NODE} tokens, {HOPS} hops\n")
    run_under("fair (heap)", FairScheduler())
    run_under("round-robin", RoundRobinScheduler())
    run_under("random", RandomScheduler())
    run_under(
        "adversarial",
        AdversarialScheduler(targets=frozenset({"n0", "n1"}), max_deferrals=8),
    )
    run_under("custom select()-only", EarliestSendScheduler())
    print(
        "\nSame workload, five schedules, one outcome space — delivery order\n"
        "varies, but fairness guarantees every live node's traffic arrives."
    )


if __name__ == "__main__":
    main()
