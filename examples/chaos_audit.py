"""Chaos audits: drive the auction over a misbehaving network, deterministically.

The fault plane treats failures as part of the model, not noise around it:
every perturbation — a dropped bid, a duplicated echo, a provider crashing
mid-round — is drawn from a seeded plan RNG and journaled, so a chaos run
replays bit-identically and a failure always ships with the seed that
reproduces it.  This example audits the distributed double auction under four
fault models x two seeds via
:meth:`~repro.scenarios.simulation.Simulation.run_chaos`; every cell runs
twice and must pass four invariants (termination, delivery conservation,
byte-identical replay, store torn-tail repair).  The same audit is reachable
from the CLI::

    repro-auction chaos --spec examples/specs/chaos.toml --workers 2

Run with::

    python examples/chaos_audit.py
"""

from repro.scenarios import ScenarioSpec, Simulation


def main() -> None:
    spec = ScenarioSpec(
        name="chaos-demo",
        mechanism="double",
        users=8,
        providers=3,
        config={"k": 1},
        latency="constant",  # real delivery delays, so the crash window is live
        seed=7,
        measure_compute=False,
    )
    with Simulation(spec) as sim:
        result = sim.run_chaos(
            faults=(
                "loss",
                {"kind": "loss", "rate": 0.3, "label": "heavy-loss"},
                "duplicate",
                {"kind": "crash", "node": "p01", "at": 0.001, "duration": 0.002},
            ),
            recovery={"max_retries": 3},
            seeds=(0, 1),
        )

    for record in result.records:
        print(
            f"{record.label:<12s} seed {record.seed}: "
            f"{record.messages_sent:3d} sent, {record.messages_lost:2d} lost, "
            f"{record.retransmissions:2d} retransmitted, "
            f"{record.faults_injected:2d} faults injected -> "
            f"{'ok' if record.ok else 'FAILED'}"
        )

    print()
    if result.is_clean():
        print(
            f"clean: termination, conservation and byte-identical replay held "
            f"across {len(result.records)} cells"
        )
    else:
        print("WARNING: invariant violations:")
        for record in result.failing_cells:
            print(f"  - {record.label} seed {record.seed}")


if __name__ == "__main__":
    main()
