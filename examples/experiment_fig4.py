"""Regenerate Figure 4 (running time of the double auction) as a text table.

Equivalent to ``repro-auction fig4``; kept as a script so the experiment parameters
are visible and editable in one place.  Use ``--quick`` for a reduced sweep.

Run with::

    python examples/experiment_fig4.py [--quick]
"""

import argparse

from repro.bench import Figure4Experiment, format_points, format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced user sweep")
    args = parser.parse_args()

    n_values = (100, 300, 600) if args.quick else (100, 200, 400, 600, 800, 1000)
    experiment = Figure4Experiment(n_values=n_values, k_values=(1, 2, 3), seed=42)
    points = experiment.run()

    print("Figure 4 — double auction running time (model seconds) vs number of users")
    print("Series: centralised vs distributed with m=8 sellers, k in {1,2,3} "
          "(3/5/7 providers executing)\n")
    print(format_series(points))
    print()
    print(format_points(points))


if __name__ == "__main__":
    main()
