"""Regenerate Figure 4 (running time of the double auction) as a text table.

Equivalent to ``repro-auction fig4`` — and to
``repro-auction sweep --spec examples/specs/fig4.json``: the experiment is a
built-in sweep spec (``figure4_sweep``) executed through the scenario layer's
sweep engine, so all three entry points share one code path.  Use ``--quick``
for a reduced sweep.

Run with::

    python examples/experiment_fig4.py [--quick]
"""

import argparse

from repro.bench import format_points, format_series
from repro.bench.harness import record_to_point
from repro.scenarios import figure4_sweep, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced user sweep")
    args = parser.parse_args()

    n_values = (100, 300, 600) if args.quick else (100, 200, 400, 600, 800, 1000)
    sweep = figure4_sweep(n_values=n_values, k_values=(1, 2, 3), seed=42)
    result = run_sweep(sweep)
    points = [record_to_point("fig4", record) for record in result.records]

    print("Figure 4 — double auction running time (model seconds) vs number of users")
    print("Series: centralised vs distributed with m=8 sellers, k in {1,2,3} "
          "(3/5/7 providers executing)\n")
    print(format_series(points))
    print()
    print(format_points(points))


if __name__ == "__main__":
    main()
