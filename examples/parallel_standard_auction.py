"""Parallelising an expensive VCG-style auction across provider groups (§5.2.2, Fig. 5).

The standard auction's payment phase re-solves the allocation once per winner, which
makes it expensive — and embarrassingly parallel.  This example runs the same
instance three ways and compares the modelled running time:

* a centralised trusted auctioneer (p = 1);
* the distributed simulation with 8 providers split into p = 2 groups (k = 3);
* the distributed simulation with p = 4 groups (k = 1).

All three produce the *same* allocation and payments (the common coin fixes the
randomness), but the parallel executions finish faster once computation dominates.

Run with::

    python examples/parallel_standard_auction.py
"""

from repro.auctions import StandardAuction
from repro.bench import default_latency_model
from repro.community import StandardAuctionWorkload
from repro.core import CentralizedAuctioneer, DistributedAuctioneer, FrameworkConfig

NUM_USERS = 60
NUM_PROVIDERS = 8


def main() -> None:
    providers = [f"gw{i}" for i in range(NUM_PROVIDERS)]
    bids = StandardAuctionWorkload(seed=5).generate(
        NUM_USERS, NUM_PROVIDERS, provider_ids=providers
    )
    mechanism = StandardAuction(epsilon=0.25)
    print(f"{NUM_USERS} users, {NUM_PROVIDERS} providers, "
          f"total demand {bids.total_demand:.1f}, total capacity {bids.total_capacity:.1f}")

    rows = []

    central = CentralizedAuctioneer(mechanism, seed=1).run(bids)
    rows.append(("p=1 (centralised)", central.elapsed_time, central.result))

    for p, k in ((2, 3), (4, 1)):
        auctioneer = DistributedAuctioneer(
            mechanism,
            providers=providers,
            config=FrameworkConfig(k=k, parallel=True, num_groups=p),
            latency_model=default_latency_model(),
            seed=1,
            measure_compute=True,
        )
        report = auctioneer.run_from_bids(bids)
        rows.append((f"p={p} (distributed, k={k})", report.outcome.elapsed_time, report.result))

    print("\nconfiguration              running time")
    for label, seconds, _ in rows:
        print(f"  {label:<24s} {seconds:8.3f} s")

    base = rows[0][1]
    print("\nspeed-up over the centralised auctioneer:")
    for label, seconds, _ in rows[1:]:
        print(f"  {label:<24s} {base / seconds:5.2f}x")

    distributed_results = [result for _, _, result in rows[1:]]
    same = all(result == distributed_results[0] for result in distributed_results)
    winners = distributed_results[0].allocation.winners()
    print(f"\nboth distributed configurations computed the same (x, p): {same}")
    print("(the centralised baseline uses its own random seed, so its tie-breaks may differ)")
    print(f"winning users: {len(winners)} of {NUM_USERS}; "
          f"revenue {distributed_results[0].payments.total_received:.2f}")


if __name__ == "__main__":
    main()
