"""Parallelising an expensive VCG-style auction across provider groups (§5.2.2, Fig. 5).

The standard auction's payment phase re-solves the allocation once per winner, which
makes it expensive — and embarrassingly parallel.  This example expresses the
comparison as a *sweep* over one declarative scenario: the same instance runs as

* a centralised trusted auctioneer (p = 1);
* the distributed simulation with 8 providers split into p = 2 groups (k = 3);
* the distributed simulation with p = 4 groups (k = 1).

All three produce the *same* allocation and payments (the common coin fixes the
randomness in the distributed runs), but the parallel executions finish faster once
computation dominates.

Run with::

    python examples/parallel_standard_auction.py
"""

from repro.scenarios import Simulation, spec_from_dict

NUM_USERS = 60
NUM_PROVIDERS = 8


def main() -> None:
    base = spec_from_dict(
        {
            "name": "parallel-standard",
            "mechanism": {"kind": "standard", "epsilon": 0.25},
            "users": NUM_USERS,
            "providers": NUM_PROVIDERS,
            "latency": "wan",
            "seed": 1,
        }
    )
    points = [
        {"runner": "centralized", "series": "p=1 (centralised)"},
        {"config.k": 3, "config.parallel": True, "config.num_groups": 2},
        {"config.k": 1, "config.parallel": True, "config.num_groups": 4},
    ]
    result = Simulation(base).sweep(points=points)
    rows = result.records

    print(f"{NUM_USERS} users, {NUM_PROVIDERS} providers, mechanism {rows[0].mechanism}")
    print("\nconfiguration              running time")
    for record in rows:
        print(f"  {record.series:<24s} {record.elapsed_seconds:8.3f} s")

    baseline = rows[0].elapsed_seconds
    print("\nspeed-up over the centralised auctioneer:")
    for record in rows[1:]:
        print(f"  {record.series:<24s} {baseline / record.elapsed_seconds:5.2f}x")

    distributed = rows[1:]
    same = all(
        (r.winners, round(r.total_paid, 12), round(r.total_received, 12))
        == (distributed[0].winners,
            round(distributed[0].total_paid, 12),
            round(distributed[0].total_received, 12))
        for r in distributed
    )
    print(f"\nboth distributed configurations computed the same (x, p): {same}")
    print("(the centralised baseline uses its own random seed, so its tie-breaks may differ)")
    print(f"winning users: {distributed[0].winners} of {NUM_USERS}; "
          f"revenue {distributed[0].total_received:.2f}")


if __name__ == "__main__":
    main()
