"""Case study (§5): bandwidth reservation at the gateways of a community network.

This example builds a synthetic Guifi-like mesh topology, designates its
best-connected nodes as Internet gateways (the providers), generates the paper's
§6.2 workload for the member nodes, and runs a *complete* auction round with real
bidder nodes over the simulated network — including a user that never submits a bid
and a user that sends different bids to different gateways.  The distributed
simulation of the auctioneer still terminates with a single agreed outcome, the
misbehaving users are excluded or resolved consistently, and the honest users are
unaffected.

Run with::

    python examples/community_bandwidth_reservation.py
"""

from repro.adversary import InconsistentBidder, SilentBidder
from repro.community import BandwidthReservationScenario
from repro.core import FrameworkConfig


def main() -> None:
    scenario = BandwidthReservationScenario.double_auction(
        num_users=16, num_gateways=6, seed=3
    )
    network = scenario.network
    print(f"community network: {network.num_nodes} nodes, "
          f"{len(network.gateways)} gateways, "
          f"{network.graph.number_of_edges()} mesh links")
    print(f"gateways (providers): {', '.join(network.gateways)}")

    # Two misbehaving users: one silent, one equivocating.
    user_ids = scenario.bids.user_ids
    strategies = {
        user_ids[0]: SilentBidder(),
        user_ids[1]: InconsistentBidder(),
    }
    run = scenario.auction_run(
        config=FrameworkConfig(k=2),
        bidder_strategies=strategies,
        measure_compute=True,
    )
    result = run.execute()

    outcome = result.outcome
    print(f"\noutcome          : {'ABORT' if outcome.aborted else 'agreed (x, p)'}")
    print(f"modelled time    : {outcome.elapsed_time * 1000:.1f} ms")
    print(f"messages / bytes : {outcome.messages} / {outcome.bytes_transferred}")

    auction = outcome.auction_result
    winners = auction.allocation.winners()
    print(f"\nwinning users    : {len(winners)} of {len(user_ids)}")
    print(f"silent user {user_ids[0]} won?       {user_ids[0] in winners}")
    print(f"equivocating user {user_ids[1]} won? {user_ids[1] in winners}")

    print("\nper-gateway utilisation:")
    for gateway in network.gateways:
        used = auction.allocation.provider_total(gateway)
        capacity = scenario.bids.provider(gateway).capacity
        revenue = auction.payments.provider_revenue(gateway)
        print(f"  {gateway}: {used:.2f} / {capacity:.2f} units sold, revenue {revenue:.3f}")

    observed = set(map(str, result.bidder_observations.values()))
    print(f"\nall bidders observed the same outcome: {len(observed) == 1}")


if __name__ == "__main__":
    main()
