"""The determinism & contract linter as a library: rules, reports, extension.

Part 1 — lint source snippets in memory: the same engine behind ``repro-auction
lint``, pointed at fixture strings under virtual paths, showing a finding from
each determinism rule and the line-scoped ``# repro: noqa[RPAxxx]`` override.

Part 2 — the registry extension contract: add a project-local rule to ``RULES``
(the same ``Registry`` class that backs ``MECHANISMS``) and watch it run with
no further plumbing, then unregister it.

Part 3 — lint the repo itself, exactly like the CI ``lint`` job and the
self-check test: zero unsuppressed findings is the contract.

Run with::

    python examples/lint_repo.py
"""

from pathlib import Path

from repro.analysis import Finding, RULES, Rule, lint_paths, lint_source, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]


def part_one_rules_and_noqa() -> None:
    tainted = (
        "import time\n"
        "import random\n"
        "\n"
        "def jitter():\n"
        "    return time.time() + random.random()\n"
    )
    # The virtual path puts the snippet inside a deterministic package, where
    # the RPA001/RPA002 rules apply (see DESIGN.md for the taint-path table).
    report = lint_source(tainted, "src/repro/net/demo.py")
    print("two wall-clock/RNG findings:")
    print(render_text(report))

    suppressed = (
        "import time\n"
        "\n"
        "start = time.time()  # repro: noqa[RPA001] demo wall-clock field\n"
    )
    report = lint_source(suppressed, "src/repro/net/demo.py")
    print("\nsuppressed on the line, counted in the report:")
    print(render_text(report))


def part_two_custom_rule() -> None:
    class TodoBanRule(Rule):
        code = "RPA900"
        name = "todo-ban"
        summary = "demo rule: no FIXME markers in deterministic paths"

        def check(self, module):
            for lineno, line in enumerate(module.source.splitlines(), start=1):
                if "FIXME" in line:
                    yield Finding(
                        path=module.display_path, line=lineno, col=0,
                        code=self.code, message="FIXME marker left in source",
                    )

    RULES.register("RPA900", TodoBanRule)
    try:
        report = lint_source("x = 1  # FIXME tune\n", select=["RPA900"])
        print("\ncustom rule, registered like a mechanism kind:")
        print(render_text(report))
    finally:
        RULES.unregister("RPA900")


def part_three_lint_the_repo() -> None:
    trees = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]
    report = lint_paths([tree for tree in trees if tree.is_dir()])
    print("\nthe repo's own contract (the CI lint job and the self-check test):")
    print(render_text(report))
    if not report.clean:
        raise SystemExit(1)


if __name__ == "__main__":
    part_one_rules_and_noqa()
    part_two_custom_rule()
    part_three_lint_the_repo()
