"""The results plane: columnar journals, streaming summaries, format conversion.

A results journal is both the sweep's durable artifact and its checkpoint.
Since the columnar-results-plane refactor the *file format* is a pluggable
backend (``STORE_BACKENDS``): ``jsonl`` is the greppable interchange format,
``columnar`` stores typed NumPy chunks that are memory-mapped on read — built
for sweeps big enough that parsing JSON per record dominates analysis time.

This example runs one grid four ways over the results plane:

1. sweeps straight into a **columnar** journal (``store_format="columnar"``);
2. computes a **streaming summary** (count/mean/p50/p90/p99 per column plus
   throughput) without ever materialising the record list;
3. **converts** the journal to jsonl — the manifest fingerprint travels
   verbatim, so the original sweep can still resume the converted copy;
4. **resumes** both formats and checks the rehydrated records are
   bit-identical to the original run — the differential guarantee that
   makes the file format a free choice.

Run with::

    python examples/results_plane.py
"""

import os
import tempfile

from repro.scenarios import (
    ResultsStore,
    SweepSpec,
    convert_journal,
    render_summary,
    run_sweep,
    sniff_format,
    spec_from_dict,
)

base = spec_from_dict(
    {
        "name": "results-plane-demo",
        "mechanism": "double",
        "users": 24,
        "providers": 4,
        "latency": "constant",
        "measure_compute": False,  # deterministic virtual clock: exact equality below
        "rounds": 2,
        "config": {"k": 1},
    }
)
sweep = SweepSpec(
    base=base, name="results-plane-demo", axes=(("users", (16, 24)), ("seed", (0, 1)))
)

directory = tempfile.mkdtemp(prefix="repro-results-")
columnar = os.path.join(directory, "results.rcol")

# 1. Sweep straight into a columnar journal.
first = run_sweep(sweep, store=columnar, store_format="columnar")
size = os.path.getsize(columnar)
print(f"columnar sweep : {len(first.records)} records -> {columnar} ({size:,} B, "
      f"sniffed {sniff_format(columnar)!r})")

# 2. Streaming summary: constant-memory reductions over the memory-mapped
#    chunks — the record list is never built.
print()
print(render_summary(ResultsStore(columnar).summary()))
print()

# 3. Convert to jsonl.  The manifest — fingerprint included — is copied
#    verbatim, which is what keeps the converted journal resumable.
jsonl = os.path.join(directory, "results.jsonl")
conversion = convert_journal(columnar, jsonl)
print(f"convert        : {conversion['records']} records, "
      f"{conversion['from']} -> {conversion['to']} "
      f"({os.path.getsize(jsonl):,} B jsonl vs {size:,} B columnar)")

# 4. Resume both formats: zero new rounds, bit-identical records.
for path in (columnar, jsonl):
    resumed = run_sweep(sweep, store=path, resume=True)
    assert resumed.executed_rounds == 0, "the journal already holds the grid"
    assert resumed.records == first.records, "rehydration must be bit-identical"
    print(f"resume         : {sniff_format(path)!r} journal reused "
          f"{resumed.resumed_rounds} rounds, executed 0 — records identical")

print("differential   : columnar == jsonl == in-memory (bit-identical records)")
