"""Quickstart: the declarative front door, then the low-level API beneath it.

Part 1 — the one-object API: describe a scenario as data (a ``ScenarioSpec``),
hand it to ``Simulation``, read back a uniform ``RunRecord``.  The same spec
round-trips through JSON/TOML files (``repro-auction run --spec file.toml``).

Part 2 — the delegation layer: every pre-existing constructor
(``DistributedAuctioneer`` & co.) still works and is what the facade drives
under the hood; drop down to it when you need hand-authored bids or custom
objects a spec cannot express.

Run with::

    python examples/quickstart.py
"""

from repro.auctions import BidVector, DoubleAuction, ProviderAsk, UserBid
from repro.core import DistributedAuctioneer, FrameworkConfig
from repro.scenarios import Simulation, spec_from_dict


def part_one_declarative() -> None:
    # A complete scenario as pure data: the double auction over the paper's
    # Section 6.2 workload, 20 users bidding at 4 distrustful gateways.
    spec = spec_from_dict(
        {
            "name": "quickstart",
            "mechanism": "double",
            "users": 20,
            "providers": 4,
            "config": {"k": 1},
            "seed": 7,
        }
    )
    with Simulation(spec) as sim:
        record = sim.run()

    print("— declarative API —")
    print(f"outcome      : {'ABORT' if record.aborted else 'agreed (x, p)'}")
    print(f"messages     : {record.messages}")
    print(f"winners      : {record.winners} of {record.users}")
    print(f"total paid   : {record.total_paid:.3f}")
    print(f"surplus      : {record.total_paid - record.total_received:.3f}")


def part_two_low_level() -> None:
    # Four community-network members ask for bandwidth at the gateways; their bids
    # say how much they value one unit of bandwidth and how much they need.
    users = (
        UserBid("alice", unit_value=1.20, demand=0.6),
        UserBid("bob", unit_value=1.05, demand=0.4),
        UserBid("carol", unit_value=0.95, demand=0.8),
        UserBid("dave", unit_value=0.80, demand=0.5),
    )
    # Four gateway owners (the providers) declare their unit cost and capacity.
    providers = (
        ProviderAsk("gw-campus", unit_cost=0.20, capacity=0.7),
        ProviderAsk("gw-hangar", unit_cost=0.35, capacity=0.6),
        ProviderAsk("gw-taradell", unit_cost=0.50, capacity=0.8),
        ProviderAsk("gw-backup", unit_cost=0.75, capacity=1.0),
    )
    bids = BidVector(users, providers)

    # No single gateway is trusted to run the auction: the four of them jointly
    # simulate the auctioneer, tolerating coalitions of up to k=1 provider.
    auctioneer = DistributedAuctioneer(
        DoubleAuction(),
        providers=[p.provider_id for p in providers],
        config=FrameworkConfig(k=1),
    )
    report = auctioneer.run_from_bids(bids)

    print("\n— low-level API (hand-authored bids) —")
    print(f"outcome      : {'ABORT' if report.aborted else 'agreed (x, p)'}")
    result = report.result
    print("allocation (user -> provider: amount):")
    for user_id, provider_id, amount in result.allocation.entries:
        print(f"  {user_id:>6s} -> {provider_id:<12s} {amount:.3f}")
    surplus = result.payments.total_paid - result.payments.total_received
    print(f"budget surplus (kept by the community): {surplus:.3f}")


def main() -> None:
    part_one_declarative()
    part_two_low_level()


if __name__ == "__main__":
    main()
