"""Quickstart: run one distributed double auction among 4 gateway providers.

This is the smallest end-to-end use of the public API:

1. describe the users' bids and the providers' asks (a ``BidVector``);
2. build a ``DistributedAuctioneer`` for the mechanism and the provider set;
3. run the simulated protocol and read the agreed allocation and payments.

Run with::

    python examples/quickstart.py
"""

from repro.auctions import BidVector, DoubleAuction, ProviderAsk, UserBid
from repro.core import DistributedAuctioneer, FrameworkConfig


def main() -> None:
    # Four community-network members ask for bandwidth at the gateways; their bids
    # say how much they value one unit of bandwidth and how much they need.
    users = (
        UserBid("alice", unit_value=1.20, demand=0.6),
        UserBid("bob", unit_value=1.05, demand=0.4),
        UserBid("carol", unit_value=0.95, demand=0.8),
        UserBid("dave", unit_value=0.80, demand=0.5),
    )
    # Four gateway owners (the providers) declare their unit cost and capacity.
    providers = (
        ProviderAsk("gw-campus", unit_cost=0.20, capacity=0.7),
        ProviderAsk("gw-hangar", unit_cost=0.35, capacity=0.6),
        ProviderAsk("gw-taradell", unit_cost=0.50, capacity=0.8),
        ProviderAsk("gw-backup", unit_cost=0.75, capacity=1.0),
    )
    bids = BidVector(users, providers)

    # No single gateway is trusted to run the auction: the four of them jointly
    # simulate the auctioneer, tolerating coalitions of up to k=1 provider.
    auctioneer = DistributedAuctioneer(
        DoubleAuction(),
        providers=[p.provider_id for p in providers],
        config=FrameworkConfig(k=1),
    )
    report = auctioneer.run_from_bids(bids)

    print(f"outcome      : {'ABORT' if report.aborted else 'agreed (x, p)'}")
    print(f"messages     : {report.outcome.messages}")
    result = report.result
    print("\nallocation (user -> provider: amount):")
    for user_id, provider_id, amount in result.allocation.entries:
        print(f"  {user_id:>6s} -> {provider_id:<12s} {amount:.3f}")
    print("\npayments:")
    for user_id, payment in result.payments.user_payments:
        if payment > 0:
            print(f"  {user_id:>6s} pays     {payment:.3f}")
    for provider_id, revenue in result.payments.provider_revenues:
        if revenue > 0:
            print(f"  {provider_id:>12s} receives {revenue:.3f}")
    surplus = result.payments.total_paid - result.payments.total_received
    print(f"\nbudget surplus (kept by the community): {surplus:.3f}")


if __name__ == "__main__":
    main()
