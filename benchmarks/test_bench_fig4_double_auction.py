"""Figure 4 — running time of the double auction vs number of users (§6.2).

Series: centralised auctioneer, and the distributed simulation with m = 8 providers
and k ∈ {1, 2, 3} (3, 5 and 7 providers executing the protocol — the minimum 2k+1).
The paper's qualitative findings that must hold here:

* the distributed simulation is slower than the centralised one (pure coordination
  overhead — the double auction itself is cheap);
* the overhead grows with the number of users, because the bid vectors exchanged
  between providers grow;
* the overhead grows with k (more providers execute the protocol);
* even at n = 1000 the distributed execution stays around/below a second.

Each benchmark measures one full simulated round; the modelled elapsed time (the
paper's metric) is attached as ``extra_info["model_seconds"]``.
"""

import pytest

from repro.bench.harness import Figure4Experiment

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

N_VALUES = (100, 250, 500, 1000)
K_VALUES = (1, 2, 3)

_experiment = Figure4Experiment(n_values=N_VALUES, k_values=K_VALUES, seed=42)


@pytest.mark.parametrize("num_users", N_VALUES)
def test_fig4_centralised(benchmark, num_users):
    point = benchmark.pedantic(
        _experiment.run_centralized_point, args=(num_users,), rounds=3, iterations=1
    )
    benchmark.extra_info["figure"] = "fig4"
    benchmark.extra_info["series"] = point.series
    benchmark.extra_info["users"] = num_users
    benchmark.extra_info["model_seconds"] = point.elapsed_seconds
    assert not point.aborted


@pytest.mark.parametrize("num_users", N_VALUES)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig4_distributed(benchmark, num_users, k):
    point = benchmark.pedantic(
        _experiment.run_distributed_point, args=(num_users, k), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = "fig4"
    benchmark.extra_info["series"] = point.series
    benchmark.extra_info["users"] = num_users
    benchmark.extra_info["model_seconds"] = point.elapsed_seconds
    benchmark.extra_info["messages"] = point.messages
    benchmark.extra_info["bytes"] = point.bytes_transferred
    assert not point.aborted
    # Shape check vs the paper: the distributed round costs more than the
    # centralised one, but remains well under a second of modelled time.
    central = _experiment.run_centralized_point(num_users)
    assert point.elapsed_seconds > central.elapsed_seconds
    assert point.elapsed_seconds < 2.0


def test_fig4_overhead_grows_with_users_and_k():
    """The two monotonicity claims of §6.2, checked end-to-end in one go."""
    small_k1 = _experiment.run_distributed_point(100, 1)
    large_k1 = _experiment.run_distributed_point(1000, 1)
    large_k3 = _experiment.run_distributed_point(1000, 3)
    assert large_k1.elapsed_seconds > small_k1.elapsed_seconds
    assert large_k3.elapsed_seconds > large_k1.elapsed_seconds
    assert large_k3.messages > large_k1.messages
