"""Simulator-core throughput — the net layer's messages/sec trajectory.

The event-queue rewrite made every delivered message O(log M) instead of O(M)
(deliverable rebuild + ``min`` scan + ``list.remove`` in the seed core), with
schedules locked bit-identical by ``tests/net/test_event_queue_differential.py``
— so this benchmark only tracks wall-clock throughput of the standard workload:
one distributed double-auction round, 40 users / 8 providers, ``wan`` latency.

The export test writes ``BENCH_net.json`` — the simulator-layer counterpart of
``BENCH_sweep.json``, carrying messages/sec and steps/sec next to the frozen
pre-event-queue baseline so the speedup stays visible in the artifact.  CI runs
this file in quick mode (``--benchmark-disable``) and greps the summary line.
"""

import json
import os

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.bench.harness import (
    default_latency_model,
    export_net_artifact,
    run_net_benchmark,
)
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.runtime.auction_run import AuctionRun

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

NUM_USERS = 40
NUM_PROVIDERS = 8


def _execute_round():
    run = AuctionRun(
        DoubleAuctionWorkload(seed=0).generate(NUM_USERS, NUM_PROVIDERS),
        DoubleAuction(),
        config=FrameworkConfig(k=2),
        latency_model=default_latency_model(),
        seed=0,
    )
    return run.execute()


def test_bench_net_core_distributed_double_auction(benchmark):
    result = benchmark.pedantic(_execute_round, rounds=3, iterations=1)
    stats = result.stats
    benchmark.extra_info["messages_delivered"] = stats.messages_delivered
    benchmark.extra_info["model_seconds"] = stats.elapsed_time
    assert not result.aborted
    assert stats.messages_delivered > 500  # the workload floods real traffic


def _measure_seed_core(repeats: int = 2):
    """Time the same round on the seed list-based core (differential oracle).

    ``AuctionRun`` resolves ``SimNetwork`` through its module global, so the
    faithful seed port from the differential test can stand in for it — giving
    a *same-host* baseline next to the frozen reference-host one, so the
    speedup in the artifact is meaningful wherever it is regenerated.
    """
    import time

    import repro.runtime.auction_run as auction_run_module
    from tests.net.seed_reference import SeedSimNetwork

    original = auction_run_module.SimNetwork
    auction_run_module.SimNetwork = SeedSimNetwork
    best = float("inf")
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = _execute_round()
            best = min(best, time.perf_counter() - start)
    finally:
        auction_run_module.SimNetwork = original
    return result.stats.messages_delivered, best


def test_bench_net_artifact_export():
    """One uniform artifact per net bench: BENCH_net.json with the summary line."""
    payload = run_net_benchmark(
        num_users=NUM_USERS, num_providers=NUM_PROVIDERS, repeats=2
    )
    seed_messages, seed_wall = _measure_seed_core()
    assert seed_messages == payload["messages_delivered"]  # same schedule
    seed_rate = seed_messages / seed_wall
    payload["baseline_seed_core_same_host"] = {
        "messages_per_sec": seed_rate,
        "wall_seconds": seed_wall,
        "core": "seed list-based oracle (tests/net/seed_reference.py)",
    }
    speedup = payload["messages_per_sec"] / seed_rate
    payload["speedup_same_host"] = speedup
    payload["summary"] = (
        f"BENCH_net: {payload['messages_per_sec']:,.0f} messages/sec "
        f"({speedup:.1f}x the seed core on this host) on the distributed "
        f"double auction, {NUM_USERS} users / {NUM_PROVIDERS} providers, "
        f"wan latency"
    )
    path = export_net_artifact(payload, "BENCH_net.json")
    assert os.path.basename(path) == "BENCH_net.json"
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    assert stored["bench"] == "net-core"
    assert stored["messages_delivered"] == stored["steps"] > 500
    assert stored["messages_per_sec"] > 0
    assert "messages/sec" in stored["summary"]
    # The artifact keeps both perf origins visible next to the measurement.
    assert stored["baseline_pre_event_queue"]["messages_per_sec"] > 0
    assert stored["baseline_seed_core_same_host"]["messages_per_sec"] > 0
