"""Results-plane throughput — append and scan across the store backends.

The same deterministic synthetic record stream (``store_bench_records``)
written through both :data:`~repro.scenarios.store.STORE_BACKENDS` formats,
then scanned: the jsonl *full parse* (``read()``) against the columnar
*streaming summary* (``summary()`` over memory-mapped chunks).  Record
equivalence between the backends is locked by
``tests/scenarios/test_store_backends.py``, so this module only tracks wall
clock and file size.

The export test writes ``BENCH_store.json`` — the results-plane counterpart
of ``BENCH_net.json`` / ``BENCH_resilience.json``.  CI runs this file in
quick mode (``--benchmark-disable``) and greps the summary line.  The >=5x
scan-speedup assertion is the columnar backend's acceptance bar: if a change
drags the memory-mapped scan to within 5x of parsing JSON text, the backend
has lost its reason to exist.
"""

import json
import os

import pytest

from repro.bench.harness import (
    export_store_artifact,
    run_store_benchmark,
    store_bench_records,
)
from repro.scenarios.spec import ScenarioSpec, SweepSpec
from repro.scenarios.store import ResultsStore

pytestmark = pytest.mark.bench

RECORDS = 10_000


def _journal(tmp_path, fmt, rows):
    sweep = SweepSpec(
        base=ScenarioSpec(name="store-bench", mechanism="double", users=40, seed=0),
        name="store-bench",
    )
    path = tmp_path / f"bench.{fmt}"
    with ResultsStore(path, format=fmt) as store:
        store.begin(sweep, total_rounds=len(rows))
        for index, record in enumerate(rows):
            store.append(index, 0, record)
    return path


@pytest.mark.parametrize("fmt", ["jsonl", "columnar"])
def test_bench_store_append(benchmark, tmp_path, fmt):
    rows = store_bench_records(RECORDS)
    result = benchmark.pedantic(
        lambda: _journal(tmp_path / fmt, fmt, rows), rounds=1, iterations=1
    )
    benchmark.extra_info["records"] = RECORDS
    benchmark.extra_info["file_bytes"] = os.path.getsize(result)


def test_bench_store_jsonl_full_parse(benchmark, tmp_path):
    path = _journal(tmp_path, "jsonl", store_bench_records(RECORDS))
    _manifest, completed = benchmark.pedantic(
        lambda: ResultsStore(path).read(), rounds=1, iterations=1
    )
    assert len(completed) == RECORDS


def test_bench_store_columnar_summarize(benchmark, tmp_path):
    path = _journal(tmp_path, "columnar", store_bench_records(RECORDS))
    summary = benchmark.pedantic(
        lambda: ResultsStore(path).summary(), rounds=1, iterations=1
    )
    assert summary["records"] == RECORDS


def test_bench_store_artifact():
    payload = run_store_benchmark(records=RECORDS)
    path = export_store_artifact(payload)
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["records"] == RECORDS
    assert data["summaries_identical"] is True
    assert data["jsonl"]["appends_per_sec"] > 0
    assert data["columnar"]["appends_per_sec"] > 0
    # Columnar journals are meaningfully smaller than the JSON text…
    assert data["size_ratio_jsonl_over_columnar"] >= 1.5, data["summary"]
    # …and the streaming scan beats the full parse by the acceptance bar.
    assert data["speedup_scan_summarize"] >= 5.0, data["summary"]
    print(data["summary"])
