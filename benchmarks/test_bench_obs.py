"""Observability-plane overhead — disabled-mode tracing must be free.

The obs plane's bargain (DESIGN.md, "The observability plane") is that every
instrument site costs one cached ``is None`` check when no observation is
installed.  This benchmark holds the plane to it on the net-core workload —
one distributed double-auction round, 40 users / 8 providers, ``wan``
latency — by interleaving identical uninstrumented runs (A/B, whose median
delta is the host's noise bound) with fully observed runs.

The export test writes ``BENCH_obs.json`` with both numbers:
``overhead_disabled_pct`` (the A/B noise bound, asserted < 5 %) and
``overhead_enabled_pct`` (the honest price of live tracing + metrics).  CI
runs this file in quick mode (``--benchmark-disable``) and greps the summary
line.
"""

import json
import os

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.bench.harness import (
    default_latency_model,
    export_obs_artifact,
    run_obs_benchmark,
)
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.obs import observe
from repro.runtime.auction_run import AuctionRun

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

NUM_USERS = 40
NUM_PROVIDERS = 8


def _execute_round():
    run = AuctionRun(
        DoubleAuctionWorkload(seed=0).generate(NUM_USERS, NUM_PROVIDERS),
        DoubleAuction(),
        config=FrameworkConfig(k=2),
        latency_model=default_latency_model(),
        seed=0,
    )
    return run.execute()


def test_bench_observed_round(benchmark):
    """Wall time of the round with a live observation installed."""

    def observed_round():
        with observe() as observation:
            result = _execute_round()
        return result, observation

    result, observation = benchmark.pedantic(observed_round, rounds=3, iterations=1)
    benchmark.extra_info["spans"] = len(observation.tracer.spans)
    benchmark.extra_info["instruments"] = len(observation.metrics)
    assert not result.aborted
    assert observation.tracer.spans  # the hooks actually fired


def test_bench_obs_artifact_export():
    """One uniform artifact: BENCH_obs.json with the overhead summary line."""
    payload = run_obs_benchmark(
        num_users=NUM_USERS, num_providers=NUM_PROVIDERS, repeats=3
    )
    path = export_obs_artifact(payload, "BENCH_obs.json")
    assert os.path.basename(path) == "BENCH_obs.json"
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    assert stored["bench"] == "obs-overhead"
    # The acceptance number: with no observation installed, the instrumented
    # build is indistinguishable from uninstrumented to within host noise.
    assert stored["overhead_disabled_pct"] < 5.0
    assert stored["spans_per_round"] > 100  # deliveries dominate
    assert stored["instruments"] >= 8
    assert "disabled-mode overhead" in stored["summary"]
    assert stored["median_off_a_seconds"] > 0
    assert stored["median_observed_seconds"] > 0
