"""Resilience-audit throughput — the game-theory layer's parallel trajectory.

One audit of the paper's headline claim — every coalition of size <= 2 out of
5 providers (15 coalitions) x the four-deviation library x three seeds (180
cells), honest baseline memoised per (schedule, seed) — timed sequentially and
under the default worker resolution (``workers="auto"``).  Verdicts are locked
bit-identical by ``tests/gametheory/test_resilience_parallel.py``, so this
benchmark only tracks wall clock.

The export test writes ``BENCH_resilience.json`` — the game-theory counterpart
of ``BENCH_sweep.json`` / ``BENCH_net.json``.  CI runs this file in quick mode
(``--benchmark-disable``) and greps the summary line.  The >=2x speedup
assertion is gated on host parallelism; on hosts where ``"auto"`` resolves to
the sequential path no pool is launched at all, so the default configuration
records a 1.0x speedup by construction instead of a sub-1x pool-overhead
reading.
"""

import json
import os

import pytest

from repro.bench.harness import (
    export_resilience_artifact,
    resilience_bench_spec,
    run_resilience_benchmark,
)
from repro.common import available_cpus
from repro.scenarios.resilience import run_resilience

pytestmark = pytest.mark.bench

NUM_USERS = 120
NUM_PROVIDERS = 5
AUDIT_K = 2
SEEDS = (0, 1, 2)


def _audit_spec():
    # The artifact export times exactly this spec too (single source of truth).
    return resilience_bench_spec(
        num_users=NUM_USERS, num_providers=NUM_PROVIDERS, k=AUDIT_K, seeds=SEEDS
    )


def test_bench_resilience_sequential(benchmark):
    spec = _audit_spec()
    result = benchmark.pedantic(lambda: run_resilience(spec), rounds=1, iterations=1)
    benchmark.extra_info["cells"] = len(result.records)
    assert result.is_resilient()
    assert len(spec.coalition_selectors()) >= 8  # the audit is coalition-rich


def test_bench_resilience_workers_auto(benchmark):
    # The shipping default: auto-resolved workers, sequential on one CPU,
    # a real pool on multi-core hosts — never an oversubscribed one.
    spec = _audit_spec()
    result = benchmark.pedantic(
        lambda: run_resilience(spec, workers="auto"), rounds=1, iterations=1
    )
    benchmark.extra_info["available_cpus"] = available_cpus()
    assert result.is_resilient()


def test_bench_resilience_artifact():
    payload = run_resilience_benchmark(
        num_users=NUM_USERS,
        num_providers=NUM_PROVIDERS,
        k=AUDIT_K,
        workers="auto",
        seeds=SEEDS,
    )
    path = export_resilience_artifact(payload)
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["coalitions"] >= 8
    assert data["verdicts_identical"] is True
    assert data["resilient"] is True
    assert data["workers_requested"] == "auto"
    assert 1 <= data["workers_resolved"] <= data["cpu_count"]
    # The default configuration never reports pool overhead as a slowdown:
    # either a real pool ran on real cores, or no pool ran and speedup is 1.0.
    assert data["speedup"] >= 1.0 or data["workers_resolved"] > 1, data["summary"]
    if data["workers_resolved"] == 1:
        assert data["speedup"] == 1.0
        assert data["backend"] == "serial"
        assert data["wall_seconds_parallel"] is None
    # The 2x target needs real cores; on smaller hosts the artifact still
    # records the honest measurement next to the resolved worker count.
    if data["workers_resolved"] >= 4:
        assert data["speedup"] >= 2.0, data["summary"]
    print(data["summary"])
