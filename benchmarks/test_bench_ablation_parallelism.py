"""Ablation — speed-up of the parallel allocator vs the level of parallelism p.

Supports the §6.3 discussion: the payment phase of the standard auction is
embarrassingly parallel, so with m = 8 providers the modelled running time should
drop as p grows (p = ⌊m/(k+1)⌋), while the result stays identical.  Also measures the
price of resilience: for a fixed provider pool, larger k means fewer groups and less
parallelism.
"""

import pytest

from repro.auctions.standard_auction import StandardAuction
from repro.bench.harness import Figure5Experiment, default_latency_model
from repro.community.workload import StandardAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

PROVIDERS = [f"p{i:02d}" for i in range(8)]
NUM_USERS = 60
EPSILON = 0.25

_experiment = Figure5Experiment(epsilon=EPSILON, seed=11)


def run_parallel(num_groups, k):
    bids = StandardAuctionWorkload(seed=11).generate(
        NUM_USERS, len(PROVIDERS), provider_ids=PROVIDERS
    )
    auctioneer = DistributedAuctioneer(
        StandardAuction(epsilon=EPSILON),
        providers=PROVIDERS,
        config=FrameworkConfig(k=k, parallel=True, num_groups=num_groups),
        latency_model=default_latency_model(),
        seed=3,
        measure_compute=True,
    )
    return auctioneer.run_from_bids(bids)


class TestParallelismSweep:
    @pytest.mark.parametrize("num_groups,k", [(1, 7), (2, 3), (4, 1), (8, 0)])
    def test_group_count(self, benchmark, num_groups, k):
        if k == 7:
            # m > 2k fails for k=7; this configuration is the "no parallelism but
            # still replicated" corner, run without the quorum guard.
            config = FrameworkConfig(k=k, parallel=True, num_groups=num_groups, require_quorum=False)
            bids = StandardAuctionWorkload(seed=11).generate(
                NUM_USERS, len(PROVIDERS), provider_ids=PROVIDERS
            )
            auctioneer = DistributedAuctioneer(
                StandardAuction(epsilon=EPSILON),
                providers=PROVIDERS,
                config=config,
                latency_model=default_latency_model(),
                seed=3,
                measure_compute=True,
            )
            report = benchmark.pedantic(
                auctioneer.run_from_bids, args=(bids,), rounds=1, iterations=1
            )
        else:
            report = benchmark.pedantic(
                run_parallel, args=(num_groups, k), rounds=1, iterations=1
            )
        benchmark.extra_info["groups"] = num_groups
        benchmark.extra_info["k"] = k
        benchmark.extra_info["model_seconds"] = report.outcome.elapsed_time
        assert not report.aborted

    def test_more_groups_is_faster_and_result_invariant(self):
        one = run_parallel(1, 3)
        two = run_parallel(2, 3)
        four = run_parallel(4, 1)
        assert four.outcome.elapsed_time < one.outcome.elapsed_time
        assert two.outcome.elapsed_time < one.outcome.elapsed_time
        assert one.result == two.result == four.result

    def test_resilience_costs_parallelism(self):
        """For the same provider pool, tolerating bigger coalitions reduces the
        achievable parallelism and therefore increases modelled running time.

        measure_compute=True folds real wall-clock into the model, and on a
        busy single-core host the scheduling noise is one-sided (upward), so
        compare the minimum over a few runs rather than a single sample.
        """
        k1 = min(run_parallel(4, 1).outcome.elapsed_time for _ in range(3))
        k3 = min(run_parallel(2, 3).outcome.elapsed_time for _ in range(3))
        assert k1 < k3   # p = 4 with k = 1 beats p = 2 with k = 3
