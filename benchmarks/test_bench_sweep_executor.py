"""Sweep executor — sequential vs parallel wall-clock, and the artifact export.

The parallel executor's contract is *correctness first*: records are
bit-identical to a sequential run on every deterministic field (locked in
``tests/scenarios/test_sweep_parallel.py``), so this benchmark only tracks
the wall-clock cost of the two dispatch modes on one grid.  On multi-core
hardware the pool amortises across chunks; on a single core it measures the
pool's overhead, which must stay small.

The export test writes ``BENCH_sweep.json`` — the uniform sweep artifact
(the same shape as ``repro-auction sweep --json`` and as a rehydrated
results journal) that downstream tooling consumes.
"""

import json
import os

import pytest

from repro.bench.harness import export_sweep_artifact
from repro.scenarios import ResultsStore, SweepSpec, run_sweep, spec_from_dict

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench


def _bench_sweep() -> SweepSpec:
    base = spec_from_dict(
        {
            "name": "bench-sweep",
            "mechanism": "double",
            "users": 40,
            "providers": 8,
            "latency": "wan",
            "measure_compute": True,
        }
    )
    return SweepSpec(
        base=base,
        name="bench-sweep",
        axes=(("users", (20, 30, 40)), ("config.k", (1, 2))),
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_sweep_executor(benchmark, workers):
    result = benchmark.pedantic(
        run_sweep, args=(_bench_sweep(),), kwargs={"workers": workers},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["grid_rounds"] = len(result.records)
    assert len(result.records) == 6
    assert not any(record.aborted for record in result.records)


def test_bench_sweep_artifact_export(tmp_path):
    """The harness exports one uniform artifact per sweep: BENCH_sweep.json."""
    sweep = _bench_sweep()
    journal = tmp_path / "bench_sweep.jsonl"
    result = run_sweep(sweep, workers=2, store=journal)

    path = export_sweep_artifact(result, "BENCH_sweep.json")
    assert os.path.basename(path) == "BENCH_sweep.json"
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["sweep"] == "bench-sweep"
    assert len(payload["records"]) == 6
    # The artifact is exactly the journal's content, reassembled in grid order.
    _manifest, completed = ResultsStore(journal).read()
    assert len(completed) == 6
    assert payload["records"] == [record.to_dict() for record in result.records]
