"""Ablation — where does the framework's overhead go? (supports the §6.2 discussion).

The paper attributes the distributed double auction's overhead to communication, and
notes that it grows with the number of users because more bid data is exchanged.
These benchmarks decompose one simulated round into its building blocks (bid
agreement, input validation, common coin) by message count and bytes, and compare the
cost of the three bid-agreement modes.
"""

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.bench.harness import default_latency_model
from repro.community.workload import DoubleAuctionWorkload
from repro.core.config import FrameworkConfig
from repro.core.framework import DistributedAuctioneer

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

PROVIDERS = [f"p{i:02d}" for i in range(8)]


def run_round(num_users, agreement_mode="batched", use_common_coin=True, k=1):
    bids = DoubleAuctionWorkload(seed=7).generate(num_users, len(PROVIDERS), provider_ids=PROVIDERS)
    auctioneer = DistributedAuctioneer(
        DoubleAuction(),
        providers=PROVIDERS[: 2 * k + 1],
        config=FrameworkConfig(
            k=k, agreement_mode=agreement_mode, use_common_coin=use_common_coin
        ),
        latency_model=default_latency_model(),
        seed=1,
        measure_compute=True,
    )
    return auctioneer.run_from_bids(bids)


def blocks_breakdown(report):
    """Aggregate per-block message counts from the tag statistics."""
    breakdown = {"bid_agreement": 0, "input_validation": 0, "common_coin": 0, "other": 0}
    for path, count in report.stats.messages_by_tag.items():
        if "/ba" in path or path.endswith("ba"):
            breakdown["bid_agreement"] += count
        elif "iv" in path:
            breakdown["input_validation"] += count
        elif "coin" in path:
            breakdown["common_coin"] += count
        else:
            breakdown["other"] += count
    return breakdown


class TestBlockBreakdown:
    @pytest.mark.parametrize("num_users", (50, 200, 800))
    def test_bid_agreement_dominates_traffic(self, benchmark, num_users):
        report = benchmark.pedantic(run_round, args=(num_users,), rounds=1, iterations=1)
        breakdown = blocks_breakdown(report)
        benchmark.extra_info["users"] = num_users
        benchmark.extra_info["model_seconds"] = report.outcome.elapsed_time
        benchmark.extra_info["messages_by_block"] = breakdown
        benchmark.extra_info["bytes"] = report.outcome.bytes_transferred
        assert not report.aborted
        # The bid agreement carries the bid vectors; validation and the coin are
        # constant-size.  It must dominate the byte volume-driven message pattern.
        assert breakdown["bid_agreement"] >= breakdown["input_validation"]
        assert breakdown["bid_agreement"] >= breakdown["common_coin"]

    def test_traffic_grows_with_users(self):
        small = run_round(50)
        large = run_round(800)
        assert large.outcome.bytes_transferred > 4 * small.outcome.bytes_transferred


class TestCommonCoinCost:
    def test_skipping_the_coin_saves_a_round(self, benchmark):
        with_coin = run_round(100, use_common_coin=True)
        without_coin = benchmark.pedantic(
            run_round, args=(100,), kwargs={"use_common_coin": False}, rounds=1, iterations=1
        )
        benchmark.extra_info["model_seconds"] = without_coin.outcome.elapsed_time
        assert not without_coin.aborted
        assert without_coin.outcome.messages < with_coin.outcome.messages
        assert without_coin.result == with_coin.result  # deterministic mechanism


class TestAgreementModes:
    @pytest.mark.parametrize("mode", ("batched", "per_label"))
    def test_mode_cost(self, benchmark, mode):
        report = benchmark.pedantic(
            run_round, args=(20,), kwargs={"agreement_mode": mode}, rounds=1, iterations=1
        )
        benchmark.extra_info["mode"] = mode
        benchmark.extra_info["messages"] = report.outcome.messages
        benchmark.extra_info["model_seconds"] = report.outcome.elapsed_time
        assert not report.aborted

    def test_batched_mode_sends_far_fewer_messages(self):
        batched = run_round(20, agreement_mode="batched")
        per_label = run_round(20, agreement_mode="per_label")
        assert batched.outcome.messages * 5 < per_label.outcome.messages
        # Both modes agree on the same outcome.
        assert batched.result == per_label.result
