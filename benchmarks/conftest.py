"""Shared configuration for the benchmark suite.

Every benchmark reports two times:

* the *wall-clock* time pytest-benchmark measures for running the whole simulation
  (useful to track the cost of the simulator itself), and
* the *modelled elapsed time* of the simulated execution (critical-path virtual time),
  stored in ``benchmark.extra_info["model_seconds"]`` — this is the quantity that
  corresponds to the y-axis of the paper's figures and the one recorded in
  EXPERIMENTS.md.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything collected under benchmarks/ with the ``bench`` marker.

    ``pytest -m "not bench"`` then gives a fast dev loop, while the plain tier-1
    command still collects and runs the benchmarks unchanged.
    """
    for item in items:
        try:
            path = pathlib.Path(str(item.fspath)).resolve()
        except OSError:  # pragma: no cover - exotic collectors
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="run the full-size user sweeps of the paper (slower); default runs a "
        "reduced but shape-preserving sweep",
    )


@pytest.fixture(scope="session")
def full_figures(request):
    return request.config.getoption("--full-figures")
