"""Shared configuration for the benchmark suite.

Every benchmark reports two times:

* the *wall-clock* time pytest-benchmark measures for running the whole simulation
  (useful to track the cost of the simulator itself), and
* the *modelled elapsed time* of the simulated execution (critical-path virtual time),
  stored in ``benchmark.extra_info["model_seconds"]`` — this is the quantity that
  corresponds to the y-axis of the paper's figures and the one recorded in
  EXPERIMENTS.md.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="run the full-size user sweeps of the paper (slower); default runs a "
        "reduced but shape-preserving sweep",
    )


@pytest.fixture(scope="session")
def full_figures(request):
    return request.config.getoption("--full-figures")
