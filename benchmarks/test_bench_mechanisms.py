"""Micro-benchmarks of the allocation algorithms themselves (no distribution).

These quantify the premise of the paper's two case studies: the double auction is
cheap (sorting + a linear scan) while the standard auction is expensive and dominated
by the per-user VCG payment re-solves — which is what makes distributing/parallelising
it worthwhile.
"""

import random

import pytest

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.greedy import GreedyStandardAuction
from repro.auctions.standard_auction import StandardAuction
from repro.auctions.vcg import ExactVCGAuction
from repro.community.workload import DoubleAuctionWorkload, StandardAuctionWorkload

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench


class TestDoubleAuctionMicro:
    @pytest.mark.parametrize("num_users", (100, 1000))
    def test_double_auction_run(self, benchmark, num_users):
        bids = DoubleAuctionWorkload(seed=0).generate(num_users, 8)
        result = benchmark(DoubleAuction().run, bids)
        benchmark.extra_info["users"] = num_users
        assert result.payments.is_budget_balanced()


class TestStandardAuctionMicro:
    @pytest.mark.parametrize("num_users", (25, 50))
    def test_standard_auction_run(self, benchmark, num_users):
        bids = StandardAuctionWorkload(seed=0).generate(num_users, 8)
        mechanism = StandardAuction(epsilon=0.25)
        result = benchmark.pedantic(
            mechanism.run, args=(bids, random.Random(0)), rounds=1, iterations=1
        )
        benchmark.extra_info["users"] = num_users
        assert not result.allocation.is_empty()

    def test_allocation_phase_alone(self, benchmark):
        bids = StandardAuctionWorkload(seed=0).generate(50, 8)
        mechanism = StandardAuction(epsilon=0.25)
        allocation, welfare = benchmark(mechanism.solve_allocation, bids, 1234)
        assert welfare > 0

    def test_payment_phase_is_the_dominant_cost(self):
        """The per-user pivots cost far more than the single allocation solve."""
        import time

        bids = StandardAuctionWorkload(seed=0).generate(40, 8)
        mechanism = StandardAuction(epsilon=0.25)
        start = time.perf_counter()
        allocation, welfare = mechanism.solve_allocation(bids, 99)
        alloc_time = time.perf_counter() - start
        start = time.perf_counter()
        mechanism.payments_for_users(bids, bids.user_ids, allocation, welfare, 99)
        payment_time = time.perf_counter() - start
        assert payment_time > 2 * alloc_time


class TestBaselines:
    def test_greedy_baseline(self, benchmark):
        bids = StandardAuctionWorkload(seed=0).generate(200, 8)
        result = benchmark(GreedyStandardAuction().run, bids)
        assert not result.allocation.is_empty()

    def test_exact_vcg_small_instance(self, benchmark):
        bids = StandardAuctionWorkload(seed=0).generate(9, 3)
        result = benchmark(ExactVCGAuction().run, bids)
        assert result is not None
