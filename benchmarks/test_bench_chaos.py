"""Chaos-audit throughput — the fault plane's parallel trajectory.

One audit of the protocol under the six-model default fault grid — loss at two
rates, duplication, reordering, a latency spike and a crash-restart x three
seeds (18 cells, each simulated twice for the replay invariant) — timed
sequentially and under the default worker resolution (``workers="auto"``).
Records are locked bit-identical across the process boundary by
``tests/scenarios/test_chaos.py``, so this benchmark only tracks wall clock.

The export test writes ``BENCH_chaos.json`` — the fault plane's counterpart of
``BENCH_resilience.json``.  CI runs this file in quick mode
(``--benchmark-disable``) and greps the summary line.  The >=2x speedup
assertion is gated on host parallelism; on hosts where ``"auto"`` resolves to
the sequential path no pool is launched at all, so the default configuration
records a 1.0x speedup by construction instead of a sub-1x pool-overhead
reading.
"""

import json
import os

import pytest

from repro.bench.harness import (
    chaos_bench_spec,
    export_chaos_artifact,
    run_chaos_benchmark,
)
from repro.common import available_cpus
from repro.scenarios.chaos import run_chaos

pytestmark = pytest.mark.bench

NUM_USERS = 80
NUM_PROVIDERS = 5
SEEDS = (0, 1, 2)


def _audit_spec():
    # The artifact export times exactly this spec too (single source of truth).
    return chaos_bench_spec(
        num_users=NUM_USERS, num_providers=NUM_PROVIDERS, seeds=SEEDS
    )


def test_bench_chaos_sequential(benchmark):
    spec = _audit_spec()
    result = benchmark.pedantic(lambda: run_chaos(spec), rounds=1, iterations=1)
    benchmark.extra_info["cells"] = len(result.records)
    assert result.is_clean()
    assert len(spec.faults) >= 6  # the audit covers the fault-model library


def test_bench_chaos_workers_auto(benchmark):
    # The shipping default: auto-resolved workers, sequential on one CPU,
    # a real pool on multi-core hosts — never an oversubscribed one.
    spec = _audit_spec()
    result = benchmark.pedantic(
        lambda: run_chaos(spec, workers="auto"), rounds=1, iterations=1
    )
    benchmark.extra_info["available_cpus"] = available_cpus()
    assert result.is_clean()


def test_bench_chaos_artifact():
    payload = run_chaos_benchmark(
        num_users=NUM_USERS,
        num_providers=NUM_PROVIDERS,
        workers="auto",
        seeds=SEEDS,
    )
    path = export_chaos_artifact(payload)
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["faults"] >= 6
    assert data["records_identical"] is True
    assert data["clean"] is True
    assert data["workers_requested"] == "auto"
    assert 1 <= data["workers_resolved"] <= data["cpu_count"]
    # The default configuration never reports pool overhead as a slowdown:
    # either a real pool ran on real cores, or no pool ran and speedup is 1.0.
    assert data["speedup"] >= 1.0 or data["workers_resolved"] > 1, data["summary"]
    if data["workers_resolved"] == 1:
        assert data["speedup"] == 1.0
        assert data["backend"] == "serial"
        assert data["wall_seconds_parallel"] is None
    # The 2x target needs real cores; on smaller hosts the artifact still
    # records the honest measurement next to the resolved worker count.
    if data["workers_resolved"] >= 4:
        assert data["speedup"] >= 2.0, data["summary"]
    print(data["summary"])
