"""Figure 5 — running time of the standard auction vs number of users (§6.3).

Series: p = 1 (centralised), p = 2 (distributed, k = 3) and p = 4 (distributed,
k = 1), with m = 8 providers.  The paper's qualitative findings that must hold:

* running time grows quickly with n (the allocation + per-user VCG payments are the
  dominant cost);
* for compute-dominated instances the distributed, parallelised execution is *faster*
  than the centralised one, and more parallelism (p = 4) beats less (p = 2);
* the communication overhead of the framework is negligible compared to the
  computation in this regime.

The user counts are smaller than Figure 4's because the mechanism is expensive —
exactly as in the paper.
"""

import pytest

from repro.auctions.engine import ENGINES, clear_solve_cache
from repro.bench.harness import Figure5Experiment

#: Defense in depth next to the conftest auto-marker: the bench marker
#: must survive this file being run from outside the benchmarks rootdir.
pytestmark = pytest.mark.bench

N_VALUES = (25, 50, 75, 100, 125)
P_VALUES = (1, 2, 4)

_experiments = {
    engine: Figure5Experiment(
        n_values=N_VALUES, p_values=P_VALUES, epsilon=0.25, engine=engine, seed=42
    )
    for engine in ENGINES
}
_experiment = _experiments["reference"]


@pytest.mark.parametrize("num_users", N_VALUES)
@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize("engine", ENGINES)
def test_fig5_running_time(benchmark, engine, num_users, p):
    """Both engines, cold-cache per point, so their mean times compare honestly."""
    point = benchmark.pedantic(
        _experiments[engine].run_distributed_point,
        args=(num_users, p),
        setup=clear_solve_cache,
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["figure"] = "fig5"
    benchmark.extra_info["series"] = point.series
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["users"] = num_users
    benchmark.extra_info["model_seconds"] = point.elapsed_seconds
    benchmark.extra_info["messages"] = point.messages
    assert not point.aborted


def test_fig5_parallelisation_beats_centralised_at_scale():
    """The crossover of Figure 5: for large enough n, p=4 < p=2 < p=1."""
    n = 100
    central = _experiment.run_distributed_point(n, 1)
    p2 = _experiment.run_distributed_point(n, 2)
    p4 = _experiment.run_distributed_point(n, 4)
    assert p4.elapsed_seconds < p2.elapsed_seconds < central.elapsed_seconds
    # The speed-up of the fully parallel configuration is substantial (the paper
    # reports roughly 4x at n=125; require at least 1.5x here).
    assert central.elapsed_seconds / p4.elapsed_seconds > 1.5


def test_fig5_running_time_grows_quickly_with_n():
    small = _experiment.run_distributed_point(25, 1)
    large = _experiment.run_distributed_point(100, 1)
    assert large.elapsed_seconds > 2 * small.elapsed_seconds
