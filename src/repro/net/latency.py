"""Latency models for the simulated network.

A latency model maps a (sender, recipient, message size) triple to a one-way delay in
(virtual) seconds.  Models are deliberately simple — the evaluation of the paper only
needs the *relative* cost of communication versus computation, not packet-level
fidelity.  The defaults are calibrated to the paper's testbed: community-network
nodes connected over a wireless mesh / WAN with a few milliseconds of latency between
sites and sub-millisecond latency inside a site.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "LatencyModel",
    "ZeroLatencyModel",
    "ConstantLatencyModel",
    "UniformLatencyModel",
    "BandwidthLatencyModel",
    "LanWanLatencyModel",
]


class LatencyModel(abc.ABC):
    """Strategy interface: one-way message delay between two nodes."""

    @abc.abstractmethod
    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        """Return the delay in seconds for a message of ``size_bytes`` bytes."""

    def local_delay(self) -> float:
        """Delay for self-addressed messages (timers, loopback); zero by default."""
        return 0.0


@dataclass
class ZeroLatencyModel(LatencyModel):
    """All messages arrive instantaneously.  Useful for pure-logic unit tests."""

    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        return 0.0


@dataclass
class ConstantLatencyModel(LatencyModel):
    """Every message experiences the same fixed delay."""

    seconds: float = 0.001

    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        return self.seconds


@dataclass
class UniformLatencyModel(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` per message."""

    low: float = 0.0005
    high: float = 0.002

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("require 0 <= low <= high")

    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class BandwidthLatencyModel(LatencyModel):
    """Base propagation delay plus a size-proportional transmission term.

    ``delay = base + size_bytes / bandwidth_bytes_per_s (+ jitter)``

    This is the model used by the benchmark harness: it reproduces the paper's
    observation that the double-auction overhead grows with the number of users
    because more bid data has to be exchanged between providers (Section 6.2).
    """

    base: float = 0.002
    bandwidth_bytes_per_s: float = 12.5e6  # ~100 Mbit/s
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.bandwidth_bytes_per_s <= 0 or self.jitter < 0:
            raise ValueError("invalid bandwidth latency parameters")

    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        transmission = size_bytes / self.bandwidth_bytes_per_s
        noise = rng.uniform(0.0, self.jitter) if self.jitter > 0 else 0.0
        return self.base + transmission + noise


@dataclass
class LanWanLatencyModel(LatencyModel):
    """Two-tier model: cheap intra-site links, expensive inter-site links.

    Mirrors the paper's deployment, where several OpenVZ containers live on the same
    physical host (LAN) while hosts are spread across community-network sites (WAN).

    Attributes:
        site_of: mapping from node id to a site label; nodes missing from the map
            are assumed to be on their own site.
        lan: latency model applied when both endpoints share a site.
        wan: latency model applied otherwise.
    """

    site_of: Mapping[str, str] = field(default_factory=dict)
    lan: LatencyModel = field(default_factory=lambda: ConstantLatencyModel(0.0002))
    wan: LatencyModel = field(
        default_factory=lambda: BandwidthLatencyModel(base=0.004, bandwidth_bytes_per_s=6.25e6)
    )

    def delay(self, sender: str, recipient: str, size_bytes: int, rng: random.Random) -> float:
        sender_site = self.site_of.get(sender, f"__solo__{sender}")
        recipient_site = self.site_of.get(recipient, f"__solo__{recipient}")
        model = self.lan if sender_site == recipient_site else self.wan
        return model.delay(sender, recipient, size_bytes, rng)
