"""Deterministic fault injection: the ``FAULTS`` registry and :class:`FaultPlan`.

The paper's model assumes a perfectly reliable substrate — channels never lose,
duplicate or reorder, and nodes never crash.  This module supplies the *other*
half of a robustness story: seeded, spec-declared fault models that SimNetwork
applies on its enqueue/pop path, so a protocol run under injected failures is
exactly as reproducible as one without them.

Determinism contract
--------------------

Every fault decision is drawn from the plan's own ``random.Random``, seeded via
:func:`repro.common.stable_hash` — never from the network RNG, so arming a plan
does not perturb latency jitter or scheduler draws, and an *empty* plan is a
behavioural no-op (the network skips every hook when ``fault_plan is None`` or
the plan has no network-level models).  Each injected event is journaled as a
plain JSON-shaped dict; :meth:`FaultPlan.digest` hashes the sorted-key
canonical encoding, which is what the chaos audit compares across
``PYTHONHASHSEED`` values to prove the injected schedule is bit-reproducible.

The registry
------------

``FAULTS`` is the same :class:`~repro.scenarios.registry.Registry` that backs
``MECHANISMS`` and ``STORE_BACKENDS``: a fault model is reachable from spec
files by string kind with no new plumbing.  Shipped kinds:

==============  ==============================================================
kind            effect
==============  ==============================================================
``loss``        drop each matching message with probability ``rate``
``duplicate``   inject ``copies`` duplicates with probability ``rate``
``reorder``     add a random extra delay (a per-message latency spike that
                reorders the message relative to its peers)
``latency_spike``  add ``extra`` seconds to every message sent in a window
``partition``   drop every message crossing the ``nodes`` boundary while the
                window is open (checked against *arrival* time, so backed-off
                retransmits escape a healed partition)
``crash``       drop every delivery to ``node`` inside the window; the first
                delivery after it triggers a restart with full state loss
                (``on_start`` runs again on a fresh protocol host)
``torn_append``  store-level: truncate ``drop_bytes`` from the journal tail
                after a cell's append (exercised by the chaos audit's
                resume-repair invariant, ignored by the network)
==============  ==============================================================
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common import stable_hash
from repro.net.message import Message
from repro.obs.context import current_observation

__all__ = [
    "FAULTS",
    "FaultModel",
    "FaultPlan",
    "RecoveryPolicy",
    "SendEffect",
    "make_fault",
]

#: No-op send effect shared by every clean pass through the gauntlet.
_CLEAN_SEND: "SendEffect"


@dataclass(frozen=True)
class SendEffect:
    """What the fault gauntlet decided about one outgoing message."""

    drop: bool = False
    extra_delay: float = 0.0
    duplicates: int = 0
    injected: int = 0


_CLEAN_SEND = SendEffect()


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded retransmission with deterministic sim-clock exponential backoff.

    ``max_retries`` is a *literal* bound (the RPA009 contract: retry loops in
    deterministic paths terminate by construction), and backoff is computed
    from virtual time — never ``time.sleep`` — so recovery is as reproducible
    as the faults it answers.
    """

    enabled: bool = True
    max_retries: int = 3
    base_backoff: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff < 0:
            raise ValueError("base_backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Virtual-time delay before retransmission ``attempt`` (1-based)."""
        return self.base_backoff * self.backoff_factor ** (attempt - 1)


class FaultModel:
    """Base class: a seeded, windowed perturbation of the message substrate.

    Subclasses override :meth:`on_send` and/or :meth:`on_deliver`.  Both hooks
    receive the plan's RNG — a model must draw *only* from it (and only when
    its predicate matches), so the injected schedule is a pure function of
    ``(plan seed, message trace)``.
    """

    kind: str = ""
    #: Store-level models (torn_append) set this False; the network skips them.
    network_level: bool = True

    def on_send(
        self, message: Message, rng: random.Random
    ) -> Optional[Dict[str, Any]]:
        """Effect on an outgoing message: None, or a dict with any of
        ``drop``/``extra_delay``/``duplicates`` plus journal fields."""
        return None

    def on_deliver(
        self, message: Message, rng: random.Random
    ) -> Optional[Dict[str, Any]]:
        """Effect at delivery time: None, or ``{"drop": True}`` /
        ``{"restart": True}`` plus journal fields."""
        return None

    def reset(self) -> None:
        """Clear per-run state (crash models track their restart here)."""


class LossFault(FaultModel):
    """Drop each matching message with probability ``rate``."""

    kind = "loss"

    def __init__(self, rate: float = 0.1, tag_substring: str = "") -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self.rate = rate
        self.tag_substring = tag_substring

    def on_send(self, message, rng):
        if self.tag_substring and self.tag_substring not in message.tag:
            return None
        if rng.random() < self.rate:
            return {"drop": True, "cause": "loss"}
        return None


class DuplicateFault(FaultModel):
    """Inject ``copies`` duplicates of a message with probability ``rate``."""

    kind = "duplicate"

    def __init__(self, rate: float = 0.1, copies: int = 1) -> None:
        rate = float(rate)
        copies = int(copies)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        if copies < 1:
            raise ValueError("duplicate copies must be >= 1")
        self.rate = rate
        self.copies = copies

    def on_send(self, message, rng):
        if rng.random() < self.rate:
            return {"duplicates": self.copies, "cause": "duplicate"}
        return None


class ReorderFault(FaultModel):
    """Add a random extra delay to a message with probability ``rate``.

    A per-message latency spike: the delayed message arrives after traffic it
    was sent before, which is exactly a reordering under earliest-arrival
    schedulers.
    """

    kind = "reorder"

    def __init__(self, rate: float = 0.1, magnitude: float = 0.05) -> None:
        rate = float(rate)
        magnitude = float(magnitude)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("reorder rate must be in [0, 1]")
        if magnitude <= 0:
            raise ValueError("reorder magnitude must be > 0")
        self.rate = rate
        self.magnitude = magnitude

    def on_send(self, message, rng):
        if rng.random() < self.rate:
            return {
                "extra_delay": rng.uniform(0.0, self.magnitude),
                "cause": "reorder",
            }
        return None


class LatencySpikeFault(FaultModel):
    """Add ``extra`` seconds to every message *sent* inside the window."""

    kind = "latency_spike"

    def __init__(self, at: float = 0.0, duration: float = 0.1, extra: float = 0.1) -> None:
        self.at = float(at)
        self.duration = float(duration)
        self.extra = float(extra)
        if self.duration <= 0:
            raise ValueError("latency_spike duration must be > 0")
        if self.extra <= 0:
            raise ValueError("latency_spike extra must be > 0")

    def on_send(self, message, rng):
        if self.at <= message.send_time < self.at + self.duration:
            return {"extra_delay": self.extra, "cause": "latency_spike"}
        return None


class PartitionFault(FaultModel):
    """Drop messages crossing the ``nodes`` boundary while the window is open.

    The window is checked against *arrival* time: a retransmission backed off
    past the healing instant crosses the healed link and is delivered — which
    is what lets the recovery layer demonstrate progress through a partition.
    """

    kind = "partition"

    def __init__(
        self, nodes: Sequence[str] = (), at: float = 0.0, duration: float = 0.1
    ) -> None:
        if isinstance(nodes, str):
            nodes = (nodes,)
        self.nodes = frozenset(nodes)
        self.at = float(at)
        self.duration = float(duration)
        if not self.nodes:
            raise ValueError("partition needs a non-empty 'nodes' side")
        if self.duration <= 0:
            raise ValueError("partition duration must be > 0")

    def on_send(self, message, rng):
        crosses = (message.sender in self.nodes) != (message.recipient in self.nodes)
        if crosses and self.at <= message.arrival_time < self.at + self.duration:
            return {"drop": True, "cause": "partition"}
        return None


class CrashFault(FaultModel):
    """Crash ``node`` for a window of virtual time, then restart it with state loss.

    Deliveries whose arrival falls inside the window are lost (the process is
    down).  The first delivery after the window triggers a *restart*: the
    network re-runs the node's ``on_start``, which for protocol nodes rebuilds
    a fresh block host — all in-progress protocol state is gone, exactly the
    crash-with-state-loss failure mode.
    """

    kind = "crash"

    def __init__(self, node: str = "", at: float = 0.0, duration: float = 0.1) -> None:
        if not node:
            raise ValueError("crash needs a target 'node'")
        self.node = node
        self.at = float(at)
        self.duration = float(duration)
        if self.duration <= 0:
            raise ValueError("crash duration must be > 0")
        self._restarted = False

    def on_deliver(self, message, rng):
        if message.recipient != self.node:
            return None
        arrival = message.arrival_time
        if self.at <= arrival < self.at + self.duration:
            return {"drop": True, "cause": "crash"}
        if arrival >= self.at + self.duration and not self._restarted:
            self._restarted = True
            return {"restart": True, "cause": "restart"}
        return None

    def reset(self) -> None:
        self._restarted = False


class TornAppendFault(FaultModel):
    """Store-level: tear ``drop_bytes`` off the journal tail after an append.

    The network ignores this model (``network_level = False``); the chaos
    audit uses it to exercise the store's torn-tail repair + resume path.
    """

    kind = "torn_append"
    network_level = False

    def __init__(self, drop_bytes: int = 7) -> None:
        drop_bytes = int(drop_bytes)
        if drop_bytes < 1:
            raise ValueError("torn_append drop_bytes must be >= 1")
        self.drop_bytes = drop_bytes


class FaultPlan:
    """An ordered set of fault models plus the recovery policy, seeded once.

    The plan owns the fault RNG (derived from ``seed`` via ``stable_hash``, so
    it is independent of the network RNG stream) and the event journal.  One
    plan serves one network run; build a fresh plan (or call :meth:`reset`)
    per run.
    """

    def __init__(
        self,
        models: Sequence[FaultModel] = (),
        seed: int = 0,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.models: List[FaultModel] = list(models)
        self.seed = seed
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self._network_models = [m for m in self.models if m.network_level]
        self._rng = random.Random(stable_hash(seed, "fault-plan"))
        self.events: List[Dict[str, Any]] = []

    # -- lifecycle -----------------------------------------------------------
    @property
    def armed(self) -> bool:
        """True when the plan carries at least one network-level model."""
        return bool(self._network_models)

    def reset(self) -> None:
        """Rewind to the freshly built state (same seed, empty journal)."""
        self._rng = random.Random(stable_hash(self.seed, "fault-plan"))
        self.events = []
        for model in self.models:
            model.reset()

    # -- the injection hooks (called by SimNetwork) --------------------------
    def apply_send(self, message: Message) -> SendEffect:
        """Run one outgoing message through every model's send hook.

        The first ``drop`` wins (later models are still *not* consulted, so
        their RNG draws stay conditional on the message surviving — a dropped
        message never perturbs the downstream stream); delays and duplicate
        counts accumulate.
        """
        drop = False
        extra_delay = 0.0
        duplicates = 0
        injected = 0
        for model in self._network_models:
            effect = model.on_send(message, self._rng)
            if effect is None:
                continue
            injected += 1
            self.record(
                effect.get("cause", model.kind),
                msg_id=message.msg_id,
                origin=message.origin,
                tag=message.tag,
                sender=message.sender,
                recipient=message.recipient,
                at=message.arrival_time,
            )
            if effect.get("drop"):
                drop = True
                break
            extra_delay += effect.get("extra_delay", 0.0)
            duplicates += effect.get("duplicates", 0)
        if not injected:
            return _CLEAN_SEND
        return SendEffect(
            drop=drop, extra_delay=extra_delay, duplicates=duplicates, injected=injected
        )

    def apply_deliver(self, message: Message) -> Tuple[bool, bool]:
        """Run one arriving message through every model's deliver hook.

        Returns ``(lost, restart)``: ``lost`` means the delivery never reaches
        the node (crash window, counted against ``messages_lost``), ``restart``
        means the recipient must re-run ``on_start`` before this delivery.
        """
        lost = False
        restart = False
        for model in self._network_models:
            effect = model.on_deliver(message, self._rng)
            if effect is None:
                continue
            self.record(
                effect.get("cause", model.kind),
                msg_id=message.msg_id,
                origin=message.origin,
                tag=message.tag,
                sender=message.sender,
                recipient=message.recipient,
                at=message.arrival_time,
            )
            if effect.get("drop"):
                lost = True
                break
            if effect.get("restart"):
                restart = True
        return lost, restart

    # -- journaling ----------------------------------------------------------
    def record(self, event: str, **details: Any) -> None:
        """Append one journal entry (plain JSON-shaped values only)."""
        entry: Dict[str, Any] = {"event": event}
        entry.update(details)
        self.events.append(entry)
        # Observability hook: record() only runs on actual injections, so the
        # ambient lookup costs nothing on the fault-free path.  The instant's
        # timestamp is the injection's modelled time when the detail carries
        # one, else 0 — never the wall clock.
        obs = current_observation()
        if obs is not None:
            if obs.metrics is not None:
                obs.metrics.counter(f"faults.{event}").inc()
            tracer = obs.tracer
            if tracer is not None and tracer.active:
                at = details.get("at")
                tracer.instant(
                    f"fault.{event}",
                    "fault",
                    ts=float(at) if at is not None else 0.0,
                    **details,
                )

    def digest(self) -> str:
        """SHA-256 over the canonical (sorted-key) JSON of the event journal.

        Stable across processes and ``PYTHONHASHSEED`` values — the chaos
        audit's replay invariant compares this digest between runs.
        """
        payload = json.dumps(self.events, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- store-level models --------------------------------------------------
    def torn_appends(self) -> List[TornAppendFault]:
        """The store-level torn-append models of this plan (often empty)."""
        return [m for m in self.models if isinstance(m, TornAppendFault)]


# ------------------------------------------------------------------ registry --
#: Fault-model factories by kind — the extension contract for new failure
#: modes: register a factory and it is reachable from every chaos spec.
#: Materialised lazily (PEP 562 module ``__getattr__``): building the registry
#: imports ``repro.scenarios.registry``, whose package ``__init__`` imports the
#: chaos module, which imports back into this module — constructing it at
#: import time would make ``import repro.net.faults`` order-dependent.
_FAULTS = None


def _registry():
    global _FAULTS
    if _FAULTS is None:
        from repro.scenarios.registry import Registry

        # The import above can re-enter this function (scenarios.__init__ ->
        # chaos -> FAULTS); if that inner call already built the singleton,
        # keep it rather than shadowing it with a second instance.
        if _FAULTS is None:
            registry = Registry("fault model")
            registry.register("loss", LossFault)
            registry.register("duplicate", DuplicateFault)
            registry.register("reorder", ReorderFault)
            registry.register("latency_spike", LatencySpikeFault)
            registry.register("partition", PartitionFault)
            registry.register("crash", CrashFault)
            registry.register("torn_append", TornAppendFault)
            _FAULTS = registry
    return _FAULTS


def __getattr__(name: str) -> Any:
    if name == "FAULTS":
        return _registry()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_fault(kind: str, params: Optional[Dict[str, Any]] = None, path: str = "faults") -> FaultModel:
    """Build one fault model from ``(kind, params)`` with path-precise errors."""
    from repro.scenarios.spec import ComponentSpec

    return _registry().create(ComponentSpec(kind, dict(params or {})), path)
