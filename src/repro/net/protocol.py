"""Protocol-block composition machinery.

The distributed auctioneer is described in the paper as a *chain of building blocks*
(bid agreement, input validation, data transfer, common coin, allocator), each of
which is itself a small message-passing protocol with an input and a single output
(a valid value or ⊥).  This module provides the plumbing to express blocks that way
and to multiplex many concurrent blocks over a single node's channel:

* :class:`ProtocolBlock` — a sub-protocol: ``on_start`` / ``on_message`` handlers plus
  a one-shot ``complete(value)``.
* :class:`BlockContext` — the scoped view a block gets of its host node: send/broadcast
  to the block's participants (tags are namespaced automatically), spawn child blocks,
  access the clock and RNG.
* :class:`BlockHost` — owned by a host node; routes incoming messages to the right
  block by tag prefix, buffering traffic that arrives before the local node has
  activated the corresponding block (this is where the model's asynchrony shows up).
* :class:`ProtocolNode` — a :class:`~repro.net.node.Node` that runs one root block and
  finishes with its result.

Tag format: ``"<block-path>|<subtag>"`` where the block path is ``/``-joined from the
root (for example ``"ba/u3|echo"``).
"""

from __future__ import annotations

import abc
import random
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.message import Message
from repro.net.node import Node, NodeContext

__all__ = ["ProtocolBlock", "BlockContext", "BlockHost", "ProtocolNode", "TAG_SEPARATOR"]

TAG_SEPARATOR = "|"

_UNSET = object()


class ProtocolBlock(abc.ABC):
    """A sub-protocol with message handlers and a single output value.

    A block completes exactly once, by calling :meth:`complete`.  Outputting the
    special ⊥ value is expressed by completing with :data:`repro.core.outcome.ABORT`
    (any sentinel chosen by the caller works; the base class does not interpret the
    value).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._result: Any = _UNSET

    # -- to be implemented by subclasses -------------------------------------
    @abc.abstractmethod
    def on_start(self, ctx: "BlockContext") -> None:
        """Called once when the block becomes active at this node."""

    @abc.abstractmethod
    def on_message(self, ctx: "BlockContext", sender: str, subtag: str, payload: Any) -> None:
        """Called for every message addressed to this block."""

    def on_timer(self, ctx: "BlockContext", subtag: str) -> None:
        """Called when a timer set via :meth:`BlockContext.set_timer` fires.

        The default ignores timers — only blocks that opt into timeouts (the
        batched consensus round timeout) override this.
        """

    # -- completion ------------------------------------------------------------
    def complete(self, value: Any) -> None:
        """Record the block's output.  Subsequent calls are ignored (first wins)."""
        if self._result is _UNSET:
            self._result = value

    @property
    def done(self) -> bool:
        return self._result is not _UNSET

    @property
    def result(self) -> Any:
        if self._result is _UNSET:
            raise RuntimeError(f"block {self.name!r} has not completed yet")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = repr(self._result) if self.done else "running"
        return f"{type(self).__name__}({self.name!r}, {state})"


class BlockContext:
    """Scoped capabilities handed to a protocol block by its host.

    Attributes:
        participants: the node ids taking part in this block (defaults to the
            provider set of the host).  ``broadcast`` targets exactly this set.
    """

    def __init__(
        self,
        host: "BlockHost",
        node_ctx: NodeContext,
        path: str,
        participants: Sequence[str],
    ) -> None:
        self._host = host
        self._node_ctx = node_ctx
        self.path = path
        self.participants = list(participants)

    # -- identity and environment -----------------------------------------------
    @property
    def node_id(self) -> str:
        return self._node_ctx.node_id

    @property
    def rng(self) -> random.Random:
        return self._node_ctx.rng

    def now(self) -> float:
        return self._node_ctx.now()

    def charge(self, seconds: float) -> None:
        self._node_ctx.charge(seconds)

    # -- messaging ----------------------------------------------------------------
    def send(self, recipient: str, payload: Any, subtag: str = "") -> None:
        """Send ``payload`` to one participant, namespaced under this block."""
        tag = f"{self.path}{TAG_SEPARATOR}{subtag}"
        self._node_ctx.send(recipient, payload, tag=tag)

    def broadcast(self, payload: Any, subtag: str = "", include_self: bool = False) -> None:
        """Send ``payload`` to every participant of this block."""
        tag = f"{self.path}{TAG_SEPARATOR}{subtag}"
        # Delegating to the node context lets the simulator amortise the
        # per-message wire-size estimate over the whole fan-out.
        self._node_ctx.broadcast(
            self.participants, payload, tag=tag, include_self=include_self
        )

    def send_to(self, recipients: Sequence[str], payload: Any, subtag: str = "") -> None:
        """Send ``payload`` to an explicit set of recipients (subset of the network)."""
        tag = f"{self.path}{TAG_SEPARATOR}{subtag}"
        self._node_ctx.broadcast(recipients, payload, tag=tag)

    def set_timer(self, delay: float, subtag: str = "") -> None:
        """Arm a virtual-time timer for this block.

        After ``delay`` simulated seconds the block's
        :meth:`ProtocolBlock.on_timer` fires with ``subtag``.  Timers for
        blocks that completed in the meantime are dropped by the host.
        """
        self._node_ctx.set_timer(delay, f"{self.path}{TAG_SEPARATOR}{subtag}")

    # -- composition ----------------------------------------------------------------
    def spawn(
        self,
        name: str,
        block: ProtocolBlock,
        on_done: Callable[[ProtocolBlock], None],
        participants: Optional[Sequence[str]] = None,
    ) -> ProtocolBlock:
        """Activate a child block under ``<this path>/<name>``.

        The child is started immediately; ``on_done`` fires (once) when it completes.
        """
        child_path = f"{self.path}/{name}"
        return self._host.activate(
            child_path,
            block,
            on_done,
            participants=participants if participants is not None else self.participants,
        )


class BlockHost:
    """Routes a node's incoming messages to its active protocol blocks.

    Messages whose block path is not active yet are buffered and replayed when the
    block is activated; messages for blocks that already completed are dropped.
    """

    def __init__(self, node_ctx_provider: Callable[[], NodeContext], participants: Sequence[str]) -> None:
        self._node_ctx_provider = node_ctx_provider
        self._default_participants = list(participants)
        self._blocks: Dict[str, Tuple[ProtocolBlock, BlockContext, Callable[[ProtocolBlock], None]]] = {}
        self._completed_paths: set = set()
        self._buffered: Dict[str, List[Tuple[str, str, Any]]] = defaultdict(list)

    # -- activation ----------------------------------------------------------------
    def activate(
        self,
        path: str,
        block: ProtocolBlock,
        on_done: Callable[[ProtocolBlock], None],
        participants: Optional[Sequence[str]] = None,
    ) -> ProtocolBlock:
        if path in self._blocks or path in self._completed_paths:
            raise ValueError(f"block path {path!r} already in use")
        node_ctx = self._node_ctx_provider()
        ctx = BlockContext(
            self,
            node_ctx,
            path,
            participants if participants is not None else self._default_participants,
        )
        self._blocks[path] = (block, ctx, on_done)
        block.on_start(ctx)
        self._sweep()
        if path in self._blocks:
            # Replay any traffic that arrived before activation.
            for sender, subtag, payload in self._buffered.pop(path, []):
                current = self._blocks.get(path)
                if current is None:
                    break
                current[0].on_message(current[1], sender, subtag, payload)
                self._sweep()
        else:
            self._buffered.pop(path, None)
        return block

    # -- dispatch --------------------------------------------------------------------
    def dispatch(self, node_ctx: NodeContext, message: Message) -> bool:
        """Route ``message`` to its block.  Returns True if it was consumed."""
        tag = message.tag
        if message.is_timer():
            return self._dispatch_timer(tag[len("__timer__/") :])
        if TAG_SEPARATOR not in tag:
            return False
        path, subtag = tag.split(TAG_SEPARATOR, 1)
        if path in self._completed_paths:
            return True
        entry = self._blocks.get(path)
        if entry is None:
            self._buffered[path].append((message.sender, subtag, message.payload))
            return True
        block, ctx, _ = entry
        block.on_message(ctx, message.sender, subtag, message.payload)
        self._sweep()
        return True

    def _dispatch_timer(self, tag: str) -> bool:
        """Route a block timer (tag already stripped of the timer prefix).

        Timers never buffer: a timer for a completed block — or for a block of
        a previous incarnation after a crash restart — is stale and dropped.
        Timers without a block-path separator belong to the host node itself
        and are left to ``on_other_message``.
        """
        if TAG_SEPARATOR not in tag:
            return False
        path, subtag = tag.split(TAG_SEPARATOR, 1)
        entry = self._blocks.get(path)
        if entry is None:
            return True
        block, ctx, _ = entry
        block.on_timer(ctx, subtag)
        self._sweep()
        return True

    def _sweep(self) -> None:
        """Finalise every completed block, cascading to parents that complete in callbacks.

        A block may complete not only while handling its own traffic but also inside
        the ``on_done`` callback of one of its children (that is how composite blocks
        such as the bid agreement chain their sub-protocols), so a single pass is not
        enough — keep sweeping until no active block is done.
        """
        changed = True
        while changed:
            changed = False
            for path in list(self._blocks.keys()):
                entry = self._blocks.get(path)
                if entry is None:
                    continue
                block, _, on_done = entry
                if block.done:
                    del self._blocks[path]
                    self._completed_paths.add(path)
                    self._buffered.pop(path, None)
                    on_done(block)
                    changed = True

    # -- introspection ------------------------------------------------------------------
    @property
    def active_paths(self) -> List[str]:
        return list(self._blocks.keys())

    def is_active(self, path: str) -> bool:
        return path in self._blocks


class ProtocolNode(Node):
    """A node whose whole behaviour is to run one root protocol block.

    Subclasses (or callers) provide a factory for the root block; the node finishes
    with the root block's result.  Messages that are not block traffic are passed to
    :meth:`on_other_message`, which defaults to ignoring them.
    """

    def __init__(
        self,
        node_id: str,
        participants: Sequence[str],
        root_name: str,
        root_factory: Callable[[], ProtocolBlock],
    ) -> None:
        super().__init__(node_id)
        self.participants = list(participants)
        self._root_name = root_name
        self._root_factory = root_factory
        self._host: Optional[BlockHost] = None
        self._current_ctx: Optional[NodeContext] = None
        #: True when the root block closed a round by timeout quorum instead of
        #: a full view (see FrameworkConfig.round_timeout).
        self.degraded = False

    # -- Node interface ---------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        self._current_ctx = ctx
        self.degraded = False  # a (re)start begins a fresh, fully-quorate run
        self._host = BlockHost(lambda: self._current_ctx, self.participants)
        self._host.activate(self._root_name, self._root_factory(), self._on_root_done)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        self._current_ctx = ctx
        if self._host is not None and self._host.dispatch(ctx, message):
            return
        self.on_other_message(ctx, message)

    def on_other_message(self, ctx: NodeContext, message: Message) -> None:
        """Hook for non-block traffic (e.g. bid submissions); default: ignore."""

    # -- completion ----------------------------------------------------------------
    def _on_root_done(self, block: ProtocolBlock) -> None:
        if getattr(block, "degraded", False):
            self.degraded = True
        self.finish(block.result)
