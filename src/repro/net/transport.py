"""Threaded in-process transport.

:class:`ThreadedNetwork` runs every node on its own thread with a real queue as its
mailbox.  The node code is exactly the same as under the discrete-event simulator —
only the :class:`~repro.net.node.NodeContext` implementation changes — so integration
tests can confirm that the protocols behave identically under genuine (preemptive)
concurrency, delivery jitter and wall-clock timers.

This backend intentionally measures *wall-clock* time; the Python GIL means CPU-bound
tasks do not truly run in parallel here, which is why the benchmark harness uses the
discrete-event backend's critical-path accounting for Figure 5 (see DESIGN.md).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.common import stable_hash
from repro.net.message import Message
from repro.net.network import QuiescenceError
from repro.net.node import Node, NodeContext

__all__ = ["ThreadedNetwork"]


class _ThreadedContext(NodeContext):
    def __init__(self, network: "ThreadedNetwork", node_id: str) -> None:
        self._network = network
        self._node_id = node_id
        self._rng = random.Random(stable_hash(network.seed, node_id))

    @property
    def node_id(self) -> str:
        return self._node_id

    @property
    def peers(self) -> Sequence[str]:
        return self._network.node_ids

    @property
    def rng(self) -> random.Random:
        return self._rng

    def now(self) -> float:
        # ThreadedNetwork is the real-time transport: its clock IS the wall
        # clock; determinism is SimNetwork's job.
        return time.perf_counter() - self._network.start_time  # repro: noqa[RPA001] real-time transport clock

    def send(self, recipient: str, payload: Any, tag: str = "") -> None:
        self._network.post(self._node_id, recipient, payload, tag)

    def set_timer(self, delay: float, tag: str) -> None:
        timer = threading.Timer(
            delay,
            self._network.post,
            args=(self._node_id, self._node_id, None, f"__timer__/{tag}"),
        )
        timer.daemon = True
        timer.start()
        self._network.register_timer(timer)

    def charge(self, seconds: float) -> None:
        # Real time already elapses while handlers run; modelled charges are ignored.
        return None


class ThreadedNetwork:
    """Thread-per-node transport sharing the Node/NodeContext interface.

    Args:
        seed: seed used to derive per-node RNGs.
        poll_interval: how often worker threads check for shutdown, in seconds.
    """

    def __init__(self, seed: int = 0, poll_interval: float = 0.02) -> None:
        self.seed = seed
        self.poll_interval = poll_interval
        self._nodes: Dict[str, Node] = {}
        self._mailboxes: Dict[str, "queue.Queue[Message]"] = {}
        self._threads: List[threading.Thread] = []
        self._timers: List[threading.Timer] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.start_time = 0.0
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # -- topology --------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._mailboxes[node.node_id] = queue.Queue()

    def add_nodes(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes.keys())

    def outputs(self) -> Dict[str, Any]:
        return {nid: node.output for nid, node in self._nodes.items() if node.finished}

    # -- plumbing ---------------------------------------------------------------
    def post(self, sender: str, recipient: str, payload: Any, tag: str) -> None:
        if recipient not in self._mailboxes:
            raise KeyError(f"unknown recipient {recipient!r}")
        now = time.perf_counter() - self.start_time  # repro: noqa[RPA001] real-time transport timestamps messages off the wall clock
        message = Message.create(
            sender=sender,
            recipient=recipient,
            payload=payload,
            tag=tag,
            send_time=now,
            arrival_time=now,
        )
        with self._lock:
            self.messages_delivered += 1
            self.bytes_delivered += message.size_bytes
        self._mailboxes[recipient].put(message)

    def register_timer(self, timer: threading.Timer) -> None:
        with self._lock:
            self._timers.append(timer)

    # -- execution ---------------------------------------------------------------
    def _worker(self, node: Node) -> None:
        ctx = _ThreadedContext(self, node.node_id)
        try:
            node.on_start(ctx)
            mailbox = self._mailboxes[node.node_id]
            while not node.finished and not self._stop.is_set():
                try:
                    message = mailbox.get(timeout=self.poll_interval)
                except queue.Empty:
                    continue
                node.on_message(ctx, message)
        except Exception as exc:  # pragma: no cover - surfaced via run()
            with self._lock:
                self._errors.append((node.node_id, exc))

    def run(self, timeout: float = 60.0) -> Dict[str, Any]:
        """Start all nodes and block until they all finish (or ``timeout``).

        Returns the outputs of the finished nodes.  Raises the first worker
        exception, if any, so test failures are not silently swallowed; a run
        that is still not quiescent at ``timeout`` raises
        :class:`~repro.net.network.QuiescenceError` naming the stuck nodes
        and the undelivered mailbox backlog — the threaded counterpart of
        ``SimNetwork``'s step-budget exhaustion, instead of silently
        returning a partial output set.
        """
        self._errors: List[tuple] = []
        self.start_time = time.perf_counter()  # repro: noqa[RPA001] wall-clock run epoch of the threaded transport
        self._threads = [
            threading.Thread(target=self._worker, args=(node,), daemon=True)
            for node in self._nodes.values()
        ]
        for thread in self._threads:
            thread.start()
        deadline = time.perf_counter() + timeout  # repro: noqa[RPA001] real timeout for real threads
        while time.perf_counter() < deadline:  # repro: noqa[RPA001] real timeout for real threads
            if all(node.finished for node in self._nodes.values()):
                break
            if self._errors:
                break
            time.sleep(self.poll_interval)  # repro: noqa[RPA009] real-time transport really sleeps between polls
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=1.0)
        for timer in self._timers:
            timer.cancel()
        if self._errors:
            node_id, exc = self._errors[0]
            raise RuntimeError(f"node {node_id!r} failed: {exc!r}") from exc
        stuck = sorted(nid for nid, node in self._nodes.items() if not node.finished)
        if stuck:
            undelivered = sum(box.qsize() for box in self._mailboxes.values())
            raise QuiescenceError(
                f"threaded network did not quiesce within {timeout}s: "
                f"{len(stuck)} node{'s' if len(stuck) != 1 else ''} still "
                f"running ({', '.join(stuck)}), {undelivered} message"
                f"{'s' if undelivered != 1 else ''} undelivered"
            )
        return self.outputs()
