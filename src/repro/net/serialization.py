"""Canonical encoding and wire-size estimation for protocol payloads.

The distributed auctioneer needs two serialisation services:

* ``canonical_encode`` — a *deterministic* byte encoding of a payload, used to hash
  values for commitments (common coin) and to compare values exchanged by the
  input-validation and data-transfer blocks.  Two structurally equal payloads always
  encode to the same bytes, regardless of dict insertion order.
* ``estimate_size`` — a cheap estimate of the number of bytes a payload would occupy
  on the wire, used by bandwidth-aware latency models and traffic accounting.

Only plain data (numbers, strings, bytes, bools, None, tuples/lists, dicts, and
dataclasses composed of those) is supported; this keeps the encoding portable and
prevents accidentally shipping live objects between nodes.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

__all__ = ["canonical_encode", "estimate_size", "UnsupportedPayloadError"]


class UnsupportedPayloadError(TypeError):
    """Raised when a payload contains a type that cannot be canonically encoded."""


def _encode_float(value: float) -> bytes:
    # Canonical IEEE-754 big-endian encoding; avoids repr() instability.
    return b"f" + struct.pack(">d", float(value))


def canonical_encode(value: Any) -> bytes:
    """Return a deterministic byte encoding of ``value``.

    Supported types: None, bool, int, float, str, bytes, list, tuple, dict (with
    sortable keys), sets (sorted), and dataclasses (encoded as a tagged dict of
    their fields).

    Raises:
        UnsupportedPayloadError: if the value (or a nested element) has an
            unsupported type.
    """
    if value is None:
        return b"n"
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        data = str(value).encode("ascii")
        return b"i" + len(data).to_bytes(4, "big") + data
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, str):
        data = value.encode("utf-8")
        return b"s" + len(data).to_bytes(4, "big") + data
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        return b"y" + len(data).to_bytes(4, "big") + data
    if isinstance(value, (list, tuple)):
        parts = [canonical_encode(item) for item in value]
        body = b"".join(parts)
        return b"l" + len(parts).to_bytes(4, "big") + body
    if isinstance(value, (set, frozenset)):
        encoded = sorted(canonical_encode(item) for item in value)
        body = b"".join(encoded)
        return b"e" + len(encoded).to_bytes(4, "big") + body
    if isinstance(value, dict):
        items = [(canonical_encode(k), canonical_encode(v)) for k, v in value.items()]
        items.sort(key=lambda kv: kv[0])
        body = b"".join(k + v for k, v in items)
        return b"d" + len(items).to_bytes(4, "big") + body
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return b"c" + canonical_encode(name) + canonical_encode(fields)
    raise UnsupportedPayloadError(
        f"cannot canonically encode value of type {type(value).__name__!r}"
    )


def estimate_size(value: Any) -> int:
    """Estimate the wire size, in bytes, of a payload.

    The estimate mirrors ``canonical_encode`` but never raises: unsupported types
    fall back to the length of their ``repr``.  It is intentionally cheap and
    approximate — it is only used for latency modelling and traffic statistics.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8) + 1
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 4
    if isinstance(value, (bytes, bytearray)):
        return len(value) + 4
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in value.items())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return 4 + sum(
            estimate_size(getattr(value, f.name)) for f in dataclasses.fields(value)
        )
    return len(repr(value))
