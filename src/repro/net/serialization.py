"""Canonical encoding and wire-size estimation for protocol payloads.

The distributed auctioneer needs two serialisation services:

* ``canonical_encode`` — a *deterministic* byte encoding of a payload, used to hash
  values for commitments (common coin) and to compare values exchanged by the
  input-validation and data-transfer blocks.  Two structurally equal payloads always
  encode to the same bytes, regardless of dict insertion order.
* ``estimate_size`` — a cheap estimate of the number of bytes a payload would occupy
  on the wire, used by bandwidth-aware latency models and traffic accounting.

Only plain data (numbers, strings, bytes, bools, None, tuples/lists, dicts, and
dataclasses composed of those) is supported; this keeps the encoding portable and
prevents accidentally shipping live objects between nodes.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Dict, Tuple

__all__ = ["canonical_encode", "estimate_size", "UnsupportedPayloadError"]

#: Per-type cache of (field names, frozen?) — ``dataclasses.fields`` is expensive
#: and payload types are few, while payload *instances* number in the hundreds of
#: thousands per simulated round.
_DATACLASS_INFO: Dict[type, Tuple[Tuple[str, ...], bool]] = {}

#: Attribute under which an instance's computed wire size is memoised.
_SIZE_ATTR = "_repro_wire_size"


def _dataclass_info(cls: type) -> Tuple[Tuple[str, ...], bool]:
    info = _DATACLASS_INFO.get(cls)
    if info is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        frozen = bool(getattr(cls, "__dataclass_params__").frozen)
        info = (names, frozen)
        _DATACLASS_INFO[cls] = info
    return info


class UnsupportedPayloadError(TypeError):
    """Raised when a payload contains a type that cannot be canonically encoded."""


def _encode_float(value: float) -> bytes:
    # Canonical IEEE-754 big-endian encoding; avoids repr() instability.
    return b"f" + struct.pack(">d", float(value))


def _encode_number(value) -> bytes:
    """Encode numbers by numeric value, not representation.

    Payloads are compared structurally with ``==``, under which ``False == 0 ==
    0.0`` — so numerically equal values must encode to the same bytes or the
    validation blocks would flag equal payloads as disagreeing.  Bools collapse
    to ints; ints exactly representable as a double use the float encoding (so
    ``1 == 1.0`` agrees); ``-0.0`` normalises to ``0.0``.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        try:
            as_float = float(value)
        except OverflowError:
            as_float = None
        if as_float is not None and as_float == value:
            return _encode_float(as_float)
        data = str(value).encode("ascii")
        return b"i" + len(data).to_bytes(4, "big") + data
    if value == 0.0:
        value = 0.0  # collapse -0.0, which compares equal to 0.0
    return _encode_float(value)


def canonical_encode(value: Any) -> bytes:
    """Return a deterministic byte encoding of ``value``.

    Supported types: None, bool, int, float, str, bytes, list, tuple, dict (with
    sortable keys), sets (sorted), and dataclasses (encoded as a tagged dict of
    their fields).

    Raises:
        UnsupportedPayloadError: if the value (or a nested element) has an
            unsupported type.
    """
    if value is None:
        return b"n"
    if isinstance(value, (bool, int, float)):
        return _encode_number(value)
    if isinstance(value, str):
        data = value.encode("utf-8")
        return b"s" + len(data).to_bytes(4, "big") + data
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        return b"y" + len(data).to_bytes(4, "big") + data
    if isinstance(value, (list, tuple)):
        parts = [canonical_encode(item) for item in value]
        body = b"".join(parts)
        return b"l" + len(parts).to_bytes(4, "big") + body
    if isinstance(value, (set, frozenset)):
        encoded = sorted(canonical_encode(item) for item in value)
        body = b"".join(encoded)
        return b"e" + len(encoded).to_bytes(4, "big") + body
    if isinstance(value, dict):
        items = [(canonical_encode(k), canonical_encode(v)) for k, v in value.items()]
        items.sort(key=lambda kv: kv[0])
        body = b"".join(k + v for k, v in items)
        return b"d" + len(items).to_bytes(4, "big") + body
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return b"c" + canonical_encode(name) + canonical_encode(fields)
    raise UnsupportedPayloadError(
        f"cannot canonically encode value of type {type(value).__name__!r}"
    )


def estimate_size(value: Any) -> int:
    """Estimate the wire size, in bytes, of a payload.

    The estimate mirrors ``canonical_encode`` but never raises: unsupported types
    fall back to the length of their ``repr``.  It is intentionally cheap and
    approximate — it is only used for latency modelling and traffic statistics.

    Sizes of *deep-immutable* frozen dataclass instances are memoised on the
    instance: protocol payloads (bid vectors, allocations, payments) are
    broadcast and echoed many times per round, and re-walking a 100-user vector
    per message dominated the simulator's wall time.  ``frozen=True`` alone is
    only shallow, so the recursion tracks whether every nested value is itself
    immutable and skips the memo otherwise (a frozen dataclass holding a dict
    that later grows must keep being re-measured).
    """
    return _estimate(value)[0]


def _estimate(value: Any) -> Tuple[int, bool]:
    """Return ``(size, deep_immutable)`` — the latter gates instance memoisation."""
    # Memoised instances answer before the type dispatch below — payload
    # dataclasses are by far the hottest case in simulated rounds.
    cached = getattr(value, _SIZE_ATTR, None)
    if cached is not None:
        return cached, True
    if value is None or isinstance(value, bool):
        return 1, True
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8) + 1, True
    if isinstance(value, float):
        return 8, True
    if isinstance(value, str):
        return len(value.encode("utf-8")) + 4, True
    if isinstance(value, bytearray):
        return len(value) + 4, False
    if isinstance(value, bytes):
        return len(value) + 4, True
    if isinstance(value, (tuple, frozenset)):
        size = 4
        immutable = True
        for item in value:
            item_size, item_immutable = _estimate(item)
            size += item_size
            immutable = immutable and item_immutable
        return size, immutable
    if isinstance(value, (list, set)):
        return 4 + sum(_estimate(item)[0] for item in value), False
    if isinstance(value, dict):
        return (
            4 + sum(_estimate(k)[0] + _estimate(v)[0] for k, v in value.items()),
            False,
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        names, frozen = _dataclass_info(type(value))
        size = 4
        immutable = frozen
        for name in names:
            field_size, field_immutable = _estimate(getattr(value, name))
            size += field_size
            immutable = immutable and field_immutable
        if immutable:
            try:
                object.__setattr__(value, _SIZE_ATTR, size)
            except (AttributeError, TypeError):
                pass  # __slots__ without room for the memo
        return size, immutable
    return len(repr(value)), False
