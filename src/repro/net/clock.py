"""Virtual clocks for critical-path time accounting.

Each node of the simulated network owns a :class:`VirtualClock`.  The clock advances
in two ways:

* when the node processes a message, the clock first jumps forward to the message's
  arrival time (it cannot process what has not arrived yet);
* the node is *charged* compute time for the handler it runs — either the measured
  wall-clock time of the handler (default) or an explicit amount passed by the
  protocol code.

The maximum clock value across nodes at the end of a run is the critical-path elapsed
time of the distributed execution: computation that happens in parallel on different
nodes overlaps, while messages serialise the dependent parts.  This is the quantity
reported by the benchmark harness as "running time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualClock"]


@dataclass
class VirtualClock:
    """A per-node monotone virtual clock.

    Attributes:
        now: current virtual time in seconds.
        busy: total compute time charged so far (excludes waiting).
        compute_scale: multiplier applied to charged compute time.  The paper's
            prototype ran under PyPy on Xeon-class machines; a scale < 1 can be used
            to approximate a faster interpreter, and 1.0 (default) reports raw
            CPython time.
    """

    now: float = 0.0
    busy: float = 0.0
    compute_scale: float = 1.0

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self.now:
            self.now = timestamp

    def charge(self, seconds: float) -> None:
        """Charge ``seconds`` of compute time to this node."""
        if seconds < 0:
            raise ValueError("cannot charge negative compute time")
        scaled = seconds * self.compute_scale
        self.now += scaled
        self.busy += scaled

    def copy(self) -> "VirtualClock":
        return VirtualClock(now=self.now, busy=self.busy, compute_scale=self.compute_scale)
