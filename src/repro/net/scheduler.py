"""Schedulers: who moves next, and which message do they receive.

The paper models asynchrony through *schedules*: an adversarially chosen but fair
order in which providers move and receive messages (Section 3.3).  The simulator
externalises that choice into a :class:`Scheduler` strategy so tests can run the same
protocol under round-robin, random, and adversarial (but fair) schedules and check
that outputs are unaffected — which is exactly the "ex post" part of the paper's
equilibrium notion.

All schedulers must be *fair*: every in-flight message is eventually selected.  The
:class:`AdversarialScheduler` enforces this with a deferral budget per message.

The queue-strategy protocol
---------------------------

A scheduler is an *indexed event queue*, not a function over a flat sequence: the
network pushes every message exactly once (:meth:`Scheduler.push`), pops the next
message to deliver (:meth:`Scheduler.pop`) and retires recipients as they finish
(:meth:`Scheduler.retire_recipient`).  Messages addressed to retired recipients are
*lazily* discarded — they stay inside the queue structures until a pop walks past
them, which is what keeps every operation O(log M) instead of the former O(M)
rebuild-filter-scan per delivered message.  ``pop`` returning ``None`` means no
deliverable message remains (the network then drains and drops the rest).

Every queue implementation is **bit-identical** to the historical
``select(in_flight, rng)`` semantics: same delivered message per step, same RNG
consumption, same tie-breaks.  The differential test
(``tests/net/test_event_queue_differential.py``) locks the full delivery trace
against a faithful port of the seed list-based core.

Backwards compatibility: third-party schedulers that only implement ``select``
keep working — the base class provides push/pop/retire implementations that
replay the legacy algorithm (build the deliverable list, call ``select``,
remove the choice).  Objects that merely duck-type the old protocol (``select``
+ ``reset`` without subclassing) are wrapped by the network in
:class:`LegacySchedulerAdapter`.  A scheduler instance serves one network run
at a time (sequential reuse across runs is fine; ``begin_run`` clears state).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.net.message import Message

__all__ = [
    "Scheduler",
    "FairScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "AdversarialScheduler",
    "LegacySchedulerAdapter",
]


def _arrival_key(message: Message) -> Tuple[float, int]:
    return (message.arrival_time, message.msg_id)


class Scheduler(abc.ABC):
    """Queue strategy that decides the next in-flight message to deliver.

    Subclasses either override the queue protocol (``push`` / ``pop`` /
    ``retire_recipient`` / ``reset``) or just implement the legacy ``select``
    hook, in which case the default implementations below replay the historical
    list-based algorithm on their behalf.
    """

    # -- queue-strategy protocol ---------------------------------------------
    def push(self, message: Message) -> None:
        """Enqueue a freshly sent message."""
        pending, _retired = self._legacy_state()
        pending.append(message)

    def pop(self, rng: random.Random) -> Optional[Message]:
        """Remove and return the next deliverable message, or ``None`` if there
        is none (every queued message is addressed to a retired recipient)."""
        pending, retired = self._legacy_state()
        deliverable = [m for m in pending if m.recipient not in retired]
        if not deliverable:
            # Whatever is left can never be delivered (retirement is permanent
            # within a run) — forget it, mirroring the seed core's drain.
            pending.clear()
            return None
        chosen = self.select(deliverable, rng)
        pending.remove(chosen)
        return chosen

    def retire_recipient(self, node_id: str) -> None:
        """The recipient finished: its queued messages are no longer deliverable."""
        self._legacy_state()[1].add(node_id)

    def begin_run(self) -> None:
        """Called by the network once per run, before any message is pushed.

        Clears the adapter state of legacy schedulers and then invokes the
        subclass :meth:`reset` hook.  Not meant to be overridden.
        """
        state = self.__dict__.get("_select_adapter_state")
        if state is not None:
            state[0].clear()
            state[1].clear()
        self.reset()

    def reset(self) -> None:  # pragma: no cover - default no-op
        """Clear any internal state before a new run."""

    # -- legacy API -----------------------------------------------------------
    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        """Choose one message from the non-empty ``in_flight`` sequence.

        Historical protocol, kept as the extension point for simple schedulers
        (and for tests that drive a scheduler by hand over an external pool).
        Queue-native schedulers may leave it unimplemented.
        """
        raise NotImplementedError(
            f"{type(self).__name__} implements the queue protocol only"
        )

    def _legacy_state(self) -> Tuple[List[Message], Set[str]]:
        # Lazily initialised so select-only subclasses that never call
        # super().__init__() still work.
        state = self.__dict__.get("_select_adapter_state")
        if state is None:
            state = self.__dict__["_select_adapter_state"] = ([], set())
        return state


class LegacySchedulerAdapter(Scheduler):
    """Wrap an object that duck-types the old protocol (``select``/``reset``).

    The network applies this automatically, so pre-queue scheduler objects that
    never subclassed :class:`Scheduler` keep working unchanged.
    """

    def __init__(self, inner) -> None:
        self.inner = inner

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return self.inner.select(in_flight, rng)

    def reset(self) -> None:
        reset = getattr(self.inner, "reset", None)
        if reset is not None:
            reset()


class FairScheduler(Scheduler):
    """Deliver the message with the earliest arrival time (deterministic).

    Ties are broken by message id, so two runs with identical seeds and latencies are
    bit-for-bit reproducible.  This is the scheduler used by the benchmark harness
    because earliest-arrival order is what a real network with those latencies would
    do.

    Implementation: a lazy-deletion binary heap keyed on ``(arrival_time,
    msg_id)`` — push and pop are O(log M); traffic to retired recipients is
    skipped (and permanently discarded) as the pops walk past it.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Message]] = []
        self._retired: Set[str] = set()

    def push(self, message: Message) -> None:
        if message.recipient in self._retired:
            return  # never deliverable; the network drops it at quiescence
        heappush(self._heap, (message.arrival_time, message.msg_id, message))

    def pop(self, rng: random.Random) -> Optional[Message]:
        heap = self._heap
        retired = self._retired
        while heap:
            message = heappop(heap)[2]
            if message.recipient in retired:
                continue  # lazy deletion
            return message
        return None

    def retire_recipient(self, node_id: str) -> None:
        self._retired.add(node_id)

    def reset(self) -> None:
        self._heap.clear()
        self._retired.clear()

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return min(in_flight, key=_arrival_key)


class RoundRobinScheduler(Scheduler):
    """Rotate over recipients, delivering each one's earliest pending message.

    This matches the turn-based presentation of the execution model: node 1 moves,
    then node 2, and so on, with every node scheduled infinitely often.

    Implementation: one binary heap per recipient plus a rotation cursor.
    Recipients are discovered in message-arrival order (the order their first
    in-flight message was sent), which makes the rotation independent of
    ``PYTHONHASHSEED`` — the seed implementation iterated a ``set`` here and
    silently depended on string hashing.
    """

    def __init__(self, order: Optional[Iterable[str]] = None) -> None:
        self._order: List[str] = list(order) if order is not None else []
        self._known: Set[str] = set(self._order)
        self._cursor = 0
        self._heaps: Dict[str, List[Tuple[float, int, Message]]] = {}
        self._undiscovered: List[str] = []
        self._retired: Set[str] = set()

    def push(self, message: Message) -> None:
        recipient = message.recipient
        if recipient in self._retired:
            return
        heap = self._heaps.get(recipient)
        if heap is None:
            heap = self._heaps[recipient] = []
        heappush(heap, (message.arrival_time, message.msg_id, message))
        if recipient not in self._known:
            self._known.add(recipient)
            self._undiscovered.append(recipient)

    def pop(self, rng: random.Random) -> Optional[Message]:
        # Discovery happens at pop time (as it did at select time in the seed
        # core): recipients whose first message arrived since the last pop join
        # the rotation now, unless they already retired — a recipient that never
        # had a deliverable message never gets a turn.
        if self._undiscovered:
            for recipient in self._undiscovered:
                if recipient not in self._retired:
                    self._order.append(recipient)
            self._undiscovered.clear()
        order = self._order
        if not order:
            return None
        for _ in range(len(order)):
            candidate = order[self._cursor % len(order)]
            self._cursor += 1
            if candidate in self._retired:
                continue
            heap = self._heaps.get(candidate)
            if heap:
                return heappop(heap)[2]
        return None

    def retire_recipient(self, node_id: str) -> None:
        self._retired.add(node_id)

    def reset(self) -> None:
        # The seed implementation kept discovered recipients across runs and
        # only rewound the cursor; preserve that.
        self._cursor = 0
        self._heaps.clear()
        self._undiscovered.clear()
        self._known = set(self._order)
        self._retired.clear()

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        # Legacy path (shares _order/_cursor with the queue path; drive a given
        # instance through one protocol only).  Discovery uses first-occurrence
        # order, not set iteration order — see the class docstring.
        for known in dict.fromkeys(m.recipient for m in in_flight):
            if known not in self._order:
                self._order.append(known)
                self._known.add(known)
        for _ in range(len(self._order)):
            candidate = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            pending = [m for m in in_flight if m.recipient == candidate]
            if pending:
                return min(pending, key=_arrival_key)
        # All pending recipients are unknown (cannot happen after the loop above,
        # kept as a safe fallback).
        return min(in_flight, key=_arrival_key)


class _IndexedLiveList:
    """Insertion-ordered list with O(log n) k-th-live selection and lazy removal.

    Backs :class:`RandomScheduler`.  A Fenwick tree over alive flags supports
    "give me the k-th live element in insertion order" without materialising the
    live list, which is what keeps the random schedule *bit-identical* to the
    seed implementation: the seed drew ``rng.randrange(len(deliverable))`` and
    indexed the deliverable list in insertion order, so both the draw bound and
    the index→message mapping must be preserved exactly.  (A plain index-swap
    array would be O(1) but permutes the order after every removal, silently
    changing every random schedule.)

    Dead slots are reclaimed by compaction — which preserves insertion order —
    once they outnumber the live ones.
    """

    __slots__ = ("_cap", "_tree", "_items", "_alive", "_size", "_live", "_by_key")

    def __init__(self, capacity: int = 64) -> None:
        self._cap = capacity
        self._tree = [0] * (capacity + 1)  # 1-indexed Fenwick tree of alive counts
        self._items: List[Optional[Message]] = [None] * capacity
        self._alive = [False] * capacity
        self._size = 0  # next free slot
        self._live = 0
        self._by_key: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return self._live

    def append(self, item: Message) -> None:
        if self._size == self._cap:
            self._rebuild()
        index = self._size
        self._size = index + 1
        self._items[index] = item
        self._alive[index] = True
        self._live += 1
        self._tree_add(index + 1, 1)
        self._by_key.setdefault(item.recipient, []).append(index)

    def pop_kth(self, k: int) -> Message:
        """Remove and return the k-th (0-based) live element in insertion order."""
        index = self._kth(k)
        item = self._items[index]
        assert item is not None
        self._kill(index)
        return item

    def kill_key(self, key: str) -> None:
        """Lazily remove every live element appended under ``key``."""
        for index in self._by_key.pop(key, ()):
            if self._alive[index]:
                self._kill(index)

    def _kill(self, index: int) -> None:
        self._alive[index] = False
        self._items[index] = None
        self._live -= 1
        self._tree_add(index + 1, -1)

    def _tree_add(self, pos: int, delta: int) -> None:
        tree = self._tree
        cap = self._cap
        while pos <= cap:
            tree[pos] += delta
            pos += pos & -pos

    def _kth(self, k: int) -> int:
        """Smallest 0-based index whose prefix holds k+1 live elements."""
        remaining = k + 1
        pos = 0
        bit = 1 << (self._cap.bit_length() - 1)
        tree = self._tree
        cap = self._cap
        while bit:
            nxt = pos + bit
            if nxt <= cap and tree[nxt] < remaining:
                remaining -= tree[nxt]
                pos = nxt
            bit >>= 1
        return pos  # pos is 1-indexed position - 1 == 0-based index

    def _rebuild(self) -> None:
        # Compact in place if at least half the slots are dead, else double.
        capacity = self._cap if self._live * 2 <= self._cap else self._cap * 2
        survivors = [item for item in self._items[: self._size] if item is not None]
        self._cap = capacity
        self._tree = [0] * (capacity + 1)
        self._items = survivors + [None] * (capacity - len(survivors))
        self._alive = [True] * len(survivors) + [False] * (capacity - len(survivors))
        self._size = len(survivors)
        self._live = len(survivors)
        self._by_key = {}
        for index, item in enumerate(survivors):
            self._tree_add(index + 1, 1)
            self._by_key.setdefault(item.recipient, []).append(index)

    def clear(self) -> None:
        self.__init__()


class RandomScheduler(Scheduler):
    """Deliver a uniformly random in-flight message.

    Because the set of in-flight messages is finite and every step removes the
    selected one, every message is eventually delivered — the schedule is fair with
    probability 1.

    Implementation: an :class:`_IndexedLiveList`; retiring a recipient kills its
    queued messages immediately so the ``randrange`` bound (and therefore the
    RNG stream) matches the seed deliverable-list semantics draw for draw.
    """

    def __init__(self) -> None:
        self._queue = _IndexedLiveList()
        self._retired: Set[str] = set()

    def push(self, message: Message) -> None:
        if message.recipient in self._retired:
            return
        self._queue.append(message)

    def pop(self, rng: random.Random) -> Optional[Message]:
        live = len(self._queue)
        if live == 0:
            return None
        return self._queue.pop_kth(rng.randrange(live))

    def retire_recipient(self, node_id: str) -> None:
        self._retired.add(node_id)
        self._queue.kill_key(node_id)

    def reset(self) -> None:
        self._queue.clear()
        self._retired.clear()

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return in_flight[rng.randrange(len(in_flight))]


@dataclass
class AdversarialScheduler(Scheduler):
    """Delay messages to/from targeted nodes as much as fairness allows.

    Each message may be passed over at most ``max_deferrals`` times; after that it is
    delivered even if it involves a targeted node.  This models a worst-case (but
    fair) asynchronous adversary and is used by the resilience tests to confirm that
    protocol outputs do not depend on scheduling.

    Implementation: separate targeted / non-targeted heaps keyed on
    ``(arrival_time, msg_id)``.  The per-message deferral count of the seed
    implementation is equivalent to "number of non-targeted deliveries since
    this message was pushed" (every such delivery deferred every deliverable
    targeted message by one), so it is tracked *incrementally*: an era counter
    increments per non-targeted delivery, targeted messages are bucketed by
    their entry era, and the bucket whose budget just expired is promoted into
    a third "forced" heap — no per-step re-sort, no per-message dict updates.
    """

    targets: frozenset = frozenset()
    max_deferrals: int = 16
    # Legacy ``select`` state only; the queue path tracks deferrals via eras.
    _deferrals: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._clear_queue_state()

    def _clear_queue_state(self) -> None:
        self._targeted: List[Tuple[float, int, Message]] = []
        self._clean: List[Tuple[float, int, Message]] = []
        self._forced: List[Tuple[float, int, Message]] = []
        self._era = 0
        self._buckets: Dict[int, List[Message]] = {}
        # msg_ids delivered from one heap while a twin entry remains in another
        # (targeted messages live in ``_targeted`` plus a bucket or ``_forced``).
        self._delivered: Set[int] = set()
        self._retired: Set[str] = set()
        # With a non-positive budget every message is immediately "forced": the
        # seed semantics degenerate to earliest-arrival-first over everything.
        self._all_forced = self.max_deferrals <= 0

    def _is_targeted(self, message: Message) -> bool:
        return message.sender in self.targets or message.recipient in self.targets

    # -- queue protocol -------------------------------------------------------
    def push(self, message: Message) -> None:
        if message.recipient in self._retired:
            return
        entry = (message.arrival_time, message.msg_id, message)
        if self._all_forced:
            heappush(self._forced, entry)
        elif self._is_targeted(message):
            heappush(self._targeted, entry)
            self._buckets.setdefault(self._era, []).append(message)
        else:
            heappush(self._clean, entry)

    def pop(self, rng: random.Random) -> Optional[Message]:
        retired = self._retired
        delivered = self._delivered
        # 1. Forced deliveries first: messages whose deferral budget expired
        #    (earliest-arrival order, exactly like the seed's ordered scan).
        forced = self._forced
        while forced:
            message = heappop(forced)[2]
            if message.msg_id in delivered:
                delivered.discard(message.msg_id)  # twin already delivered
                continue
            if message.recipient in retired:
                continue
            if not self._all_forced:
                delivered.add(message.msg_id)  # twin remains in _targeted
            return message
        # 2. Prefer non-targeted traffic; its delivery defers every deliverable
        #    targeted message by one (tracked via the era counter).
        clean = self._clean
        while clean:
            message = heappop(clean)[2]
            if message.recipient in retired:
                continue
            self._era += 1
            expired = self._buckets.pop(self._era - self.max_deferrals, None)
            if expired:
                for victim in expired:
                    if victim.msg_id in delivered:
                        delivered.discard(victim.msg_id)
                    elif victim.recipient not in retired:
                        heappush(
                            self._forced,
                            (victim.arrival_time, victim.msg_id, victim),
                        )
            return message
        # 3. Only targeted traffic left — fairness forces a delivery.
        targeted = self._targeted
        while targeted:
            message = heappop(targeted)[2]
            if message.msg_id in delivered:
                delivered.discard(message.msg_id)
                continue
            if message.recipient in retired:
                continue
            delivered.add(message.msg_id)  # twin remains in a bucket / _forced
            return message
        return None

    def retire_recipient(self, node_id: str) -> None:
        self._retired.add(node_id)

    def reset(self) -> None:
        self._deferrals.clear()
        self._clear_queue_state()

    # -- legacy path ----------------------------------------------------------
    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        ordered = sorted(in_flight, key=_arrival_key)
        # Forced deliveries first: messages that exhausted their deferral budget.
        for message in ordered:
            if self._deferrals.get(message.msg_id, 0) >= self.max_deferrals:
                return message
        # Prefer non-targeted traffic; defer targeted traffic.
        for message in ordered:
            if not self._is_targeted(message):
                for other in ordered:
                    if self._is_targeted(other):
                        self._deferrals[other.msg_id] = self._deferrals.get(other.msg_id, 0) + 1
                return message
        # Only targeted traffic left — fairness forces a delivery.
        return ordered[0]
