"""Schedulers: who moves next, and which message do they receive.

The paper models asynchrony through *schedules*: an adversarially chosen but fair
order in which providers move and receive messages (Section 3.3).  The simulator
externalises that choice into a :class:`Scheduler` strategy so tests can run the same
protocol under round-robin, random, and adversarial (but fair) schedules and check
that outputs are unaffected — which is exactly the "ex post" part of the paper's
equilibrium notion.

All schedulers must be *fair*: every in-flight message is eventually selected.  The
:class:`AdversarialScheduler` enforces this with a deferral budget per message.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.net.message import Message

__all__ = [
    "Scheduler",
    "FairScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "AdversarialScheduler",
]


class Scheduler(abc.ABC):
    """Strategy that picks the next in-flight message to deliver."""

    @abc.abstractmethod
    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        """Choose one message from the non-empty ``in_flight`` sequence."""

    def reset(self) -> None:  # pragma: no cover - default no-op
        """Clear any internal state before a new run."""


class FairScheduler(Scheduler):
    """Deliver the message with the earliest arrival time (deterministic).

    Ties are broken by message id, so two runs with identical seeds and latencies are
    bit-for-bit reproducible.  This is the scheduler used by the benchmark harness
    because earliest-arrival order is what a real network with those latencies would
    do.
    """

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return min(in_flight, key=lambda m: (m.arrival_time, m.msg_id))


class RoundRobinScheduler(Scheduler):
    """Rotate over recipients, delivering each one's earliest pending message.

    This matches the turn-based presentation of the execution model: node 1 moves,
    then node 2, and so on, with every node scheduled infinitely often.
    """

    def __init__(self, order: Optional[Iterable[str]] = None) -> None:
        self._order: List[str] = list(order) if order is not None else []
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        recipients = {m.recipient for m in in_flight}
        for known in recipients:
            if known not in self._order:
                self._order.append(known)
        for _ in range(len(self._order)):
            candidate = self._order[self._cursor % len(self._order)]
            self._cursor += 1
            pending = [m for m in in_flight if m.recipient == candidate]
            if pending:
                return min(pending, key=lambda m: (m.arrival_time, m.msg_id))
        # All pending recipients are unknown (cannot happen after the loop above,
        # kept as a safe fallback).
        return min(in_flight, key=lambda m: (m.arrival_time, m.msg_id))


class RandomScheduler(Scheduler):
    """Deliver a uniformly random in-flight message.

    Because the set of in-flight messages is finite and every step removes the
    selected one, every message is eventually delivered — the schedule is fair with
    probability 1.
    """

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        return in_flight[rng.randrange(len(in_flight))]


@dataclass
class AdversarialScheduler(Scheduler):
    """Delay messages to/from targeted nodes as much as fairness allows.

    Each message may be passed over at most ``max_deferrals`` times; after that it is
    delivered even if it involves a targeted node.  This models a worst-case (but
    fair) asynchronous adversary and is used by the resilience tests to confirm that
    protocol outputs do not depend on scheduling.
    """

    targets: frozenset = frozenset()
    max_deferrals: int = 16
    _deferrals: Dict[int, int] = field(default_factory=dict)

    def reset(self) -> None:
        self._deferrals.clear()

    def _is_targeted(self, message: Message) -> bool:
        return message.sender in self.targets or message.recipient in self.targets

    def select(self, in_flight: Sequence[Message], rng: random.Random) -> Message:
        ordered = sorted(in_flight, key=lambda m: (m.arrival_time, m.msg_id))
        # Forced deliveries first: messages that exhausted their deferral budget.
        for message in ordered:
            if self._deferrals.get(message.msg_id, 0) >= self.max_deferrals:
                return message
        # Prefer non-targeted traffic; defer targeted traffic.
        for message in ordered:
            if not self._is_targeted(message):
                for other in ordered:
                    if self._is_targeted(other):
                        self._deferrals[other.msg_id] = self._deferrals.get(other.msg_id, 0) + 1
                return message
        # Only targeted traffic left — fairness forces a delivery.
        return ordered[0]
