"""Message type exchanged between nodes of the simulated runtime.

A message is an immutable record of *who* sent *what* to *whom*, together with the
virtual time at which it was sent and the arrival time assigned by the latency model.
The ``tag`` field is a routing string used by layered protocols (for instance
``"ba/consensus/u3/bit07/echo"``) so that a single node can multiplex many concurrent
protocol blocks over one channel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.serialization import estimate_size

_MESSAGE_COUNTER = itertools.count()


@dataclass(frozen=True)
class Message:
    """A single message in transit between two nodes.

    Attributes:
        sender: identifier of the sending node.
        recipient: identifier of the receiving node.
        payload: arbitrary (picklable) protocol payload.
        tag: routing tag used by protocol blocks to dispatch the payload.
        send_time: virtual time at which the sender emitted the message.
        arrival_time: virtual time at which the message becomes deliverable.
        size_bytes: estimated wire size, used by bandwidth-aware latency models
            and by the benchmark harness to report traffic volume.
        msg_id: globally unique, monotonically increasing identifier; used for
            deterministic tie-breaking in schedulers.
    """

    sender: str
    recipient: str
    payload: Any
    tag: str = ""
    send_time: float = 0.0
    arrival_time: float = 0.0
    size_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    @staticmethod
    def create(
        sender: str,
        recipient: str,
        payload: Any,
        tag: str = "",
        send_time: float = 0.0,
        arrival_time: float = 0.0,
    ) -> "Message":
        """Build a message, estimating its wire size from the payload."""
        return Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            tag=tag,
            send_time=send_time,
            arrival_time=arrival_time,
            size_bytes=estimate_size((tag, payload)),
        )

    def is_timer(self) -> bool:
        """True if this is a self-addressed timer event (see NodeContext.set_timer)."""
        return self.sender == self.recipient and self.tag.startswith("__timer__")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.recipient} "
            f"tag={self.tag!r} t={self.send_time:.4f}->{self.arrival_time:.4f})"
        )
