"""Message type exchanged between nodes of the simulated runtime.

A message is an immutable record of *who* sent *what* to *whom*, together with the
virtual time at which it was sent and the arrival time assigned by the latency model.
The ``tag`` field is a routing string used by layered protocols (for instance
``"ba/consensus/u3/bit07/echo"``) so that a single node can multiplex many concurrent
protocol blocks over one channel.

Distributed runs create hundreds of thousands of messages, so the dataclass is
``slots=True``: no per-instance ``__dict__``, faster field access on the
simulator's hot path, roughly half the memory per instance.

Message ids
-----------

``msg_id`` is the deterministic tie-breaker of every scheduler.  A network
allocates ids from its own counter (see ``SimNetwork``), so the ids — and with
them tie-breaks, schedules and delivery traces — do not depend on how many
other networks ran earlier in the process.  Messages created outside a network
(unit tests, hand-driven channels) fall back to a process-global counter, which
keeps ids unique and monotone per process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, Optional

from repro.net.serialization import estimate_size

_MESSAGE_COUNTER = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """A single message in transit between two nodes.

    Attributes:
        sender: identifier of the sending node.
        recipient: identifier of the receiving node.
        payload: arbitrary (picklable) protocol payload.
        tag: routing tag used by protocol blocks to dispatch the payload.
        send_time: virtual time at which the sender emitted the message.
        arrival_time: virtual time at which the message becomes deliverable.
        size_bytes: estimated wire size, used by bandwidth-aware latency models
            and by the benchmark harness to report traffic volume.
        msg_id: unique, monotonically increasing identifier — per network when
            allocated by one, process-global otherwise; used for deterministic
            tie-breaking in schedulers.
        origin: the msg_id of the logical send this message is a copy of, when
            it is an injected duplicate or a retransmission (see
            :mod:`repro.net.faults`); ``None`` for ordinary first sends.  The
            recipient-side duplicate suppression keys on the origin, so a
            payload is processed exactly once however many copies arrive.
    """

    sender: str
    recipient: str
    payload: Any
    tag: str = ""
    send_time: float = 0.0
    arrival_time: float = 0.0
    size_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    origin: Optional[int] = None

    @staticmethod
    def create(
        sender: str,
        recipient: str,
        payload: Any,
        tag: str = "",
        send_time: float = 0.0,
        arrival_time: float = 0.0,
        msg_id: Optional[int] = None,
    ) -> "Message":
        """Build a message, estimating its wire size from the payload.

        ``msg_id=None`` (the default) draws from the process-global counter;
        networks pass their own per-network ids explicitly.
        """
        if msg_id is None:
            msg_id = next(_MESSAGE_COUNTER)
        return Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            tag=tag,
            send_time=send_time,
            arrival_time=arrival_time,
            size_bytes=estimate_size((tag, payload)),
            msg_id=msg_id,
        )

    def is_timer(self) -> bool:
        """True if this is a self-addressed timer event (see NodeContext.set_timer)."""
        return self.sender == self.recipient and self.tag.startswith("__timer__")

    # Frozen slots dataclasses only pickle out of the box from Python 3.11 on;
    # spell the state protocol out so 3.10 round-trips too.
    def __getstate__(self):
        return tuple(getattr(self, f.name) for f in fields(self))

    def __setstate__(self, state) -> None:
        for f, value in zip(fields(self), state):
            object.__setattr__(self, f.name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.recipient} "
            f"tag={self.tag!r} t={self.send_time:.4f}->{self.arrival_time:.4f})"
        )
