"""Discrete-event simulator for asynchronous message passing.

:class:`SimNetwork` executes a set of :class:`~repro.net.node.Node` state machines
under the execution model of the paper: reliable channels, fair (but otherwise
arbitrary) schedules, and per-node virtual clocks.  The simulator is deterministic
given (nodes, seed, scheduler, latency model, and — if enabled — measured compute
time), which makes protocol behaviour reproducible in tests.

The event-queue core
--------------------

Delivery runs through the scheduler's queue protocol
(:meth:`~repro.net.scheduler.Scheduler.push` /
:meth:`~repro.net.scheduler.Scheduler.pop` /
:meth:`~repro.net.scheduler.Scheduler.retire_recipient`): every delivered
message costs O(log M) in the number of in-flight messages, where the seed core
paid O(M) three times over (deliverable-list rebuild, ``min`` scan, ``list.remove``).
The network keeps the authoritative in-flight set as an insertion-ordered dict;
traffic addressed to finished recipients stays in it (lazily skipped by the
queues) until quiescence, at which point it is drained and counted as dropped —
exactly the seed semantics, including the final :class:`NetworkStats`.
Schedules are bit-identical to the seed implementation; the differential test
``tests/net/test_event_queue_differential.py`` locks the full delivery trace.

Time accounting
---------------

Each node owns a :class:`~repro.net.clock.VirtualClock`.  Sending stamps the message
with the sender's current time; the latency model assigns an arrival time; processing
a message advances the recipient's clock to at least the arrival time and then charges
compute time.  Compute time can be *measured* (wall-clock of the handler, used by the
benchmark harness) or purely *modelled* (only explicit ``ctx.charge`` calls count,
used by deterministic tests).  The run's ``elapsed_time`` is the maximum clock value —
the critical path of the distributed execution.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set

from repro.common import stable_hash
from repro.net.channel import ReliableChannel
from repro.obs.context import current_observation
from repro.net.clock import VirtualClock
from repro.net.latency import LatencyModel, ZeroLatencyModel
from repro.net.message import Message
from repro.net.node import Node, NodeContext
from repro.net.scheduler import FairScheduler, LegacySchedulerAdapter, Scheduler
from repro.net.serialization import estimate_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> scenarios)
    from repro.net.faults import FaultPlan

__all__ = ["SimNetwork", "NetworkStats", "QuiescenceError"]


class QuiescenceError(RuntimeError):
    """Raised when the step budget is exhausted before the network quiesces."""


@dataclass
class NetworkStats:
    """Aggregate statistics of one simulated run."""

    elapsed_time: float = 0.0
    steps: int = 0
    messages_delivered: int = 0
    bytes_delivered: int = 0
    messages_dropped: int = 0
    # Fault-plane counters (see repro.net.faults).  On a fault-free run only
    # messages_sent moves.  The conservation invariant
    # ``messages_sent == messages_delivered + messages_dropped + messages_lost``
    # holds at the end of every ``run()``: quiescent runs drain stale traffic
    # in ``step()``, and armed runs additionally settle copies still in flight
    # when every node finished (a retransmission racing its original).
    messages_sent: int = 0
    messages_lost: int = 0
    faults_injected: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    node_busy: Dict[str, float] = field(default_factory=dict)
    node_finish_time: Dict[str, float] = field(default_factory=dict)
    messages_by_tag: Dict[str, int] = field(default_factory=dict)

    def record_delivery(self, message: Message) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        # Group traffic by protocol block path (the part of the tag before "|"),
        # which lets the benchmark harness attribute overhead to individual blocks.
        path = message.tag.split("|", 1)[0] if message.tag else ""
        self.messages_by_tag[path] = self.messages_by_tag.get(path, 0) + 1


class _SimContext(NodeContext):
    """NodeContext bound to one node of a :class:`SimNetwork`.

    One context is cached per node for the lifetime of the network (contexts are
    stateless views, and allocating one per delivery showed up in profiles).
    """

    __slots__ = ("_network", "_node_id")

    def __init__(self, network: "SimNetwork", node_id: str) -> None:
        self._network = network
        self._node_id = node_id

    @property
    def node_id(self) -> str:
        return self._node_id

    @property
    def peers(self) -> Sequence[str]:
        return self._network.node_ids

    @property
    def rng(self) -> random.Random:
        return self._network._node_rngs[self._node_id]

    def now(self) -> float:
        return self._network.clock_of(self._node_id).now

    def send(self, recipient: str, payload: Any, tag: str = "") -> None:
        self._network._enqueue(self._node_id, recipient, payload, tag)

    def broadcast(
        self,
        recipients,
        payload: Any,
        tag: str = "",
        include_self: bool = False,
    ) -> None:
        # Same observable behaviour as the default per-recipient send loop, but
        # the payload's wire size is measured once for the whole fan-out — the
        # object cannot be mutated between the sends, so the per-send estimates
        # were always identical.
        self._network._enqueue_many(self._node_id, recipients, payload, tag, include_self)

    def set_timer(self, delay: float, tag: str) -> None:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        self._network._enqueue_timer(self._node_id, delay, tag)

    def charge(self, seconds: float) -> None:
        self._network.clock_of(self._node_id).charge(seconds)


class SimNetwork:
    """Deterministic discrete-event network of :class:`Node` state machines.

    Args:
        latency_model: one-way delay model; defaults to zero latency.
        scheduler: delivery-order strategy; defaults to earliest-arrival-first.
            Objects that only duck-type the legacy ``select``/``reset`` protocol
            are wrapped in :class:`~repro.net.scheduler.LegacySchedulerAdapter`.
        seed: seed for the network-level RNG (latency jitter, random scheduler) and
            for deriving per-node RNGs.
        measure_compute: if True, the wall-clock duration of every handler invocation
            is charged to the node's virtual clock in addition to explicit
            ``ctx.charge`` calls.  Leave False for deterministic tests.
        compute_scale: multiplier applied to charged compute time (see VirtualClock).
        fault_plan: optional :class:`~repro.net.faults.FaultPlan` injecting
            seeded failures on the enqueue/pop path (and driving the bounded
            retransmission recovery).  ``None`` — or a plan with no
            network-level models — leaves every hot path exactly as before:
            the hooks are behavioural no-ops when unarmed.
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        measure_compute: bool = False,
        compute_scale: float = 1.0,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.latency_model = latency_model if latency_model is not None else ZeroLatencyModel()
        if scheduler is None:
            scheduler = FairScheduler()
        elif not hasattr(scheduler, "pop"):
            scheduler = LegacySchedulerAdapter(scheduler)
        self.scheduler = scheduler
        self.measure_compute = measure_compute
        self._rng = random.Random(seed)
        self._seed = seed
        self._nodes: Dict[str, Node] = {}
        self._clocks: Dict[str, VirtualClock] = {}
        self._node_rngs: Dict[str, random.Random] = {}
        self._contexts: Dict[str, _SimContext] = {}
        self._channels: Dict[tuple, ReliableChannel] = {}
        # Authoritative in-flight set, keyed by msg_id and insertion-ordered —
        # the scheduler queues hold the *delivery order*, this dict holds the
        # *membership* (and the drain order at quiescence).
        self._in_flight: Dict[int, Message] = {}
        # msg_ids are allocated per network so schedules never depend on how
        # many networks ran earlier in the process.
        self._next_msg_id = 0
        # Finished nodes are tracked incrementally (and retired from the
        # scheduler queues) instead of scanning every node per run() iteration.
        self._finished_nodes: Set[str] = set()
        self._compute_scale = compute_scale
        self.stats = NetworkStats()
        self._started = False
        # The public attribute keeps the whole plan (chaos audits read its
        # journal); the private one is None unless the plan is *armed*, so an
        # empty plan takes the exact fault-free code path.
        self.fault_plan = fault_plan
        self._fault_plan = (
            fault_plan if fault_plan is not None and fault_plan.armed else None
        )
        # Same armed-plan idiom for the observability plane: captured once at
        # construction, None when disabled, so the per-delivery hook is a
        # single is-None check on the hot path.  Delivery timestamps are the
        # message's modelled send/arrival times — never the wall clock — so
        # observed runs stay bit-identical (see repro.obs).
        self._obs = current_observation()
        obs = self._obs
        self._obs_latency = (
            obs.metrics.histogram("net.delivery_latency")
            if obs is not None and obs.metrics is not None
            else None
        )

    # -- topology ------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Register a node; ids must be unique and registration happens before run()."""
        if self._started:
            raise RuntimeError("cannot add nodes after the network has started")
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._clocks[node.node_id] = VirtualClock(compute_scale=self._compute_scale)
        self._node_rngs[node.node_id] = random.Random(
            stable_hash(self._seed, node.node_id)
        )
        self._contexts[node.node_id] = _SimContext(self, node.node_id)

    def add_nodes(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes.keys())

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def clock_of(self, node_id: str) -> VirtualClock:
        return self._clocks[node_id]

    def outputs(self) -> Dict[str, Any]:
        """Mapping node id -> output value for finished nodes."""
        return {nid: node.output for nid, node in self._nodes.items() if node.finished}

    # -- message plumbing ------------------------------------------------------
    def _channel(self, sender: str, recipient: str) -> ReliableChannel:
        key = (sender, recipient)
        channel = self._channels.get(key)
        if channel is None:
            channel = ReliableChannel(sender=sender, recipient=recipient)
            self._channels[key] = channel
        return channel

    def _enqueue(self, sender: str, recipient: str, payload: Any, tag: str) -> None:
        self._enqueue_sized(sender, recipient, payload, tag, estimate_size((tag, payload)))

    def _enqueue_many(
        self, sender: str, recipients, payload: Any, tag: str, include_self: bool
    ) -> None:
        size = None
        for recipient in recipients:
            if recipient == sender and not include_self:
                continue
            if size is None:
                size = estimate_size((tag, payload))
            self._enqueue_sized(sender, recipient, payload, tag, size)

    def _enqueue_sized(
        self, sender: str, recipient: str, payload: Any, tag: str, size: int
    ) -> None:
        if recipient not in self._nodes:
            raise KeyError(f"unknown recipient {recipient!r}")
        send_time = self._clocks[sender].now
        if sender != recipient:
            # Historical draw order: the seed core asked the latency model
            # twice (a size-0 probe, then the real call).  The probe's value
            # was always discarded, but jittered models consume RNG in it —
            # keep the call so every schedule stays bit-identical to the seed.
            self.latency_model.delay(sender, recipient, 0, self._rng)
            delay = self.latency_model.delay(sender, recipient, size, self._rng)
        else:
            delay = self.latency_model.local_delay()
        message = Message(
            sender=sender,
            recipient=recipient,
            payload=payload,
            tag=tag,
            send_time=send_time,
            arrival_time=send_time + delay,
            size_bytes=size,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        if self._fault_plan is not None and sender != recipient:
            self._send_through_faults(message)
            return
        self._push_message(message)

    def _enqueue_timer(self, node_id: str, delay: float, tag: str) -> None:
        now = self._clocks[node_id].now
        message = Message(
            sender=node_id,
            recipient=node_id,
            payload=None,
            tag=f"__timer__/{tag}",
            send_time=now,
            arrival_time=now + delay,
            size_bytes=0,
            msg_id=self._next_msg_id,
        )
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self._push_message(message)

    def _push_message(self, message: Message) -> None:
        self._channel(message.sender, message.recipient).push(message)
        self._in_flight[message.msg_id] = message
        self.scheduler.push(message)

    # -- fault plane (every method below only runs when a plan is armed) -------
    def _send_through_faults(self, message: Message) -> None:
        """Run one outgoing message through the fault gauntlet, then enqueue.

        A dropped message is counted lost and handed to the recovery layer;
        extra delay shifts the arrival time; injected duplicates are enqueued
        as copies carrying the logical origin so the recipient-side
        suppression processes the payload exactly once.
        """
        plan = self._fault_plan
        effect = plan.apply_send(message)
        stats = self.stats
        stats.faults_injected += effect.injected
        if effect.drop:
            stats.messages_lost += 1
            self._maybe_retransmit(message)
            return
        if effect.extra_delay:
            message = replace(
                message, arrival_time=message.arrival_time + effect.extra_delay
            )
        self._push_message(message)
        origin = message.origin if message.origin is not None else message.msg_id
        for _ in range(effect.duplicates):
            duplicate = replace(message, msg_id=self._next_msg_id, origin=origin)
            self._next_msg_id += 1
            stats.messages_sent += 1
            self._push_message(duplicate)

    def _maybe_retransmit(self, lost: Message) -> None:
        """Schedule a bounded, backed-off retransmission of a lost message.

        Event-driven recursion, not a loop: each retransmission re-enters the
        fault gauntlet and — if lost again — recurses with the next attempt
        number, bounded by the policy's literal ``max_retries``.
        """
        plan = self._fault_plan
        policy = plan.recovery
        if not policy.enabled:
            return
        origin = lost.origin if lost.origin is not None else lost.msg_id
        attempt = self._channel(lost.sender, lost.recipient).next_attempt(origin)
        if attempt > policy.max_retries:
            plan.record(
                "retransmit_exhausted",
                origin=origin,
                sender=lost.sender,
                recipient=lost.recipient,
                tag=lost.tag,
                attempts=policy.max_retries,
            )
            return
        retry = replace(
            lost,
            msg_id=self._next_msg_id,
            origin=origin,
            arrival_time=lost.arrival_time + policy.backoff(attempt),
        )
        self._next_msg_id += 1
        self.stats.messages_sent += 1
        self.stats.retransmissions += 1
        plan.record(
            "retransmit",
            origin=origin,
            msg_id=retry.msg_id,
            attempt=attempt,
            sender=retry.sender,
            recipient=retry.recipient,
            tag=retry.tag,
            at=retry.arrival_time,
        )
        self._send_through_faults(retry)

    def _restart_node(self, node: Node) -> None:
        """Re-run ``on_start`` after an injected crash: full state loss.

        Protocol nodes rebuild a fresh block host in ``on_start``, so every
        in-progress round is forgotten — exactly the crash-with-state-loss
        semantics the ``crash`` fault models.
        """
        self._dispatch(node, node.on_start, self._contexts[node.node_id])
        if node.finished:
            self._note_finished(node.node_id)

    # -- execution -------------------------------------------------------------
    def _dispatch(self, node: Node, handler, *args) -> None:
        clock = self._clocks[node.node_id]
        if self.measure_compute:
            # Opt-in wall-clock timing field: measure_compute deliberately
            # charges *real* handler time to the model clock, so elapsed
            # results are nondeterministic by construction when it is on.
            start = time.perf_counter()  # repro: noqa[RPA001] measure_compute timing field
            handler(*args)
            clock.charge(time.perf_counter() - start)  # repro: noqa[RPA001] measure_compute timing field
        else:
            handler(*args)

    def _note_finished(self, node_id: str) -> None:
        """Record a node's termination once: finish time, count, retirement."""
        if node_id in self._finished_nodes:
            return
        self._finished_nodes.add(node_id)
        self.stats.node_finish_time[node_id] = self._clocks[node_id].now
        self.scheduler.retire_recipient(node_id)

    def _deliver(self, message: Message, node: Node) -> None:
        del self._in_flight[message.msg_id]
        channel = self._channel(message.sender, message.recipient)
        channel.pop(message.msg_id)
        clock = self._clocks[message.recipient]
        clock.advance_to(message.arrival_time)
        if self._fault_plan is not None and message.sender != message.recipient:
            origin = message.origin if message.origin is not None else message.msg_id
            if channel.suppress_duplicate(origin):
                # A copy of an already-processed send (injected duplicate or a
                # retransmission racing its original): count the delivery,
                # skip the handler — exactly-once processing.
                self.stats.duplicates_suppressed += 1
                self.stats.record_delivery(message)
                if self._obs is not None:
                    self._observe_delivery(message, suppressed=True)
                return
        self._dispatch(node, node.on_message, self._contexts[message.recipient], message)
        self.stats.record_delivery(message)
        if self._obs is not None:
            self._observe_delivery(message, suppressed=False)
        if node.finished:
            self._note_finished(node.node_id)

    # -- observability hooks ---------------------------------------------------------
    def _observe_delivery(self, message: Message, suppressed: bool) -> None:
        """Emit the per-delivery span + latency observation (observed runs only)."""
        obs = self._obs
        latency = message.arrival_time - message.send_time
        if self._obs_latency is not None:
            self._obs_latency.observe(latency)
        tracer = obs.tracer
        if tracer is not None and tracer.active:
            tracer.emit(
                "deliver",
                "net",
                ts=message.send_time,
                dur=latency,
                tag=message.tag,
                sender=message.sender,
                recipient=message.recipient,
                msg_id=message.msg_id,
                suppressed=suppressed,
            )

    def _observe_run_end(self) -> None:
        """Fold the run's NetworkStats into the metrics hub (one call per run)."""
        metrics = self._obs.metrics
        if metrics is None:
            return
        stats = self.stats
        metrics.counter("net.runs").inc()
        metrics.counter("net.messages_sent").inc(stats.messages_sent)
        metrics.counter("net.messages_delivered").inc(stats.messages_delivered)
        metrics.counter("net.messages_dropped").inc(stats.messages_dropped)
        metrics.counter("net.messages_lost").inc(stats.messages_lost)
        metrics.counter("net.retransmissions").inc(stats.retransmissions)
        metrics.counter("net.duplicates_suppressed").inc(stats.duplicates_suppressed)
        metrics.counter("net.faults_injected").inc(stats.faults_injected)
        metrics.histogram("net.run_elapsed").observe(stats.elapsed_time)

    def start(self) -> None:
        """Invoke ``on_start`` on every node (in registration order)."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self.scheduler.begin_run()
        for node_id, node in self._nodes.items():
            self._dispatch(node, node.on_start, self._contexts[node_id])
            if node.finished:
                self._note_finished(node_id)

    def step(self) -> bool:
        """Deliver one message.  Returns False if nothing is deliverable."""
        while True:
            message = self.scheduler.pop(self._rng)
            if message is None:
                # Quiescence: everything still in flight is addressed to
                # finished nodes — drain it so the run can end.
                if self._in_flight:
                    for stale in self._in_flight.values():
                        self._channel(stale.sender, stale.recipient).pop(stale.msg_id)
                        self.stats.messages_dropped += 1
                    self._in_flight.clear()
                return False
            node = self._nodes[message.recipient]
            if node.finished:
                # The node was finished from *outside* a handler (finish() is
                # public), so the queue could not have retired it yet; do so
                # now.  The message stays in flight and is dropped at
                # quiescence.  Note: in this exotic case the seed core stopped
                # scheduling the node one step earlier than the lazy retire
                # does, so stateful schedulers (random / round-robin /
                # adversarial) may order the remaining traffic differently —
                # the bit-identity guarantee covers nodes that finish inside
                # their own handlers, which is the only way the runtime itself
                # ever finishes them.
                self._note_finished(message.recipient)
                continue
            if self._fault_plan is not None and message.sender != message.recipient:
                lost, restart = self._fault_plan.apply_deliver(message)
                if restart:
                    self.stats.faults_injected += 1
                    self._restart_node(node)
                    if node.finished:
                        # Restart finished the node immediately; the message is
                        # undeliverable and drains at quiescence.
                        continue
                if lost:
                    # The recipient is down (crash window): the delivery never
                    # happens.  The recovery layer may schedule a backed-off
                    # retransmission that lands after the restart.
                    self.stats.faults_injected += 1
                    self.stats.messages_lost += 1
                    del self._in_flight[message.msg_id]
                    self._channel(message.sender, message.recipient).pop(message.msg_id)
                    self._maybe_retransmit(message)
                    continue
            break
        self._deliver(message, node)
        self.stats.steps += 1
        return True

    def run(self, max_steps: int = 2_000_000) -> NetworkStats:
        """Run until quiescence (no deliverable messages) or all nodes finished.

        Raises:
            QuiescenceError: if ``max_steps`` deliveries happen without quiescence,
                which almost always indicates a protocol that livelocks.
        """
        if not self._started:
            self.start()
        steps = 0
        total = len(self._nodes)
        while True:
            if len(self._finished_nodes) >= total:
                break
            progressed = self.step()
            if not progressed:
                break
            steps += 1
            if steps > max_steps:
                raise QuiescenceError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
        if self._fault_plan is not None and self._in_flight:
            # Armed runs settle the books: copies still in flight when every
            # node finished (e.g. a retransmission racing its original) are
            # drained as dropped, so the conservation invariant
            # sent == delivered + dropped + lost holds at run end.  Fault-free
            # runs keep the historical behaviour (leftovers stay in flight).
            for stale in self._in_flight.values():
                self._channel(stale.sender, stale.recipient).pop(stale.msg_id)
                self.stats.messages_dropped += 1
            self._in_flight.clear()
        self.stats.elapsed_time = max(
            (clock.now for clock in self._clocks.values()), default=0.0
        )
        self.stats.node_busy = {nid: clock.busy for nid, clock in self._clocks.items()}
        if self._obs is not None:
            self._observe_run_end()
        return self.stats

    # -- introspection -----------------------------------------------------------
    @property
    def in_flight(self) -> List[Message]:
        """Messages sent but not yet delivered, in send order.

        Builds a fresh O(M) list on every access — fine for tests and debugging,
        but hot paths that only need the size should use :attr:`in_flight_count`.
        """
        return list(self._in_flight.values())

    @property
    def in_flight_count(self) -> int:
        """Number of undelivered messages (O(1), unlike :attr:`in_flight`)."""
        return len(self._in_flight)

    def unfinished_nodes(self) -> List[str]:
        return [nid for nid, node in self._nodes.items() if not node.finished]
