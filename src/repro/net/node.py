"""Node and execution-context abstractions.

A :class:`Node` is a deterministic event-driven state machine: the runtime calls
``on_start`` once and then ``on_message`` for every delivered message.  All
interaction with the outside world goes through the :class:`NodeContext` passed to the
handlers — sending messages, setting timers, reading the local virtual clock and
drawing local randomness.  Keeping the context explicit (rather than ambient) makes
protocol code trivially testable and keeps the two backends (discrete-event simulator
and threaded transport) interchangeable.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Iterable, Optional, Sequence

from repro.net.message import Message

__all__ = ["Node", "NodeContext"]


class NodeContext(abc.ABC):
    """Capabilities available to a node while it is scheduled to move."""

    @property
    @abc.abstractmethod
    def node_id(self) -> str:
        """Identifier of the node currently moving."""

    @property
    @abc.abstractmethod
    def peers(self) -> Sequence[str]:
        """Identifiers of all nodes in the network (including this one)."""

    @property
    @abc.abstractmethod
    def rng(self) -> random.Random:
        """Node-local pseudo-random generator (seeded by the runtime)."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current local (virtual or wall-clock) time in seconds."""

    @abc.abstractmethod
    def send(self, recipient: str, payload: Any, tag: str = "") -> None:
        """Send a message to ``recipient``."""

    @abc.abstractmethod
    def set_timer(self, delay: float, tag: str) -> None:
        """Deliver a timer message (self-addressed) after ``delay`` seconds."""

    @abc.abstractmethod
    def charge(self, seconds: float) -> None:
        """Charge explicit (modelled) compute time to the local virtual clock."""

    def broadcast(
        self,
        recipients: Iterable[str],
        payload: Any,
        tag: str = "",
        include_self: bool = False,
    ) -> None:
        """Send ``payload`` to every node in ``recipients``.

        Self-delivery is skipped unless ``include_self`` is set; protocol blocks that
        need their own contribution simply record it locally, which avoids a useless
        loopback hop.
        """
        for recipient in recipients:
            if recipient == self.node_id and not include_self:
                continue
            self.send(recipient, payload, tag=tag)


class Node(abc.ABC):
    """Base class for all processes that run on a network backend.

    Subclasses implement ``on_start`` and ``on_message``; they signal termination by
    calling :meth:`finish`, after which the runtime stops delivering messages to them
    (remaining traffic is drained silently, matching the "protocol module" notion of
    the paper where each block has a definite output).
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._output: Any = None
        self._finished = False

    # -- lifecycle ---------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:  # pragma: no cover - default no-op
        """Called exactly once before any message is delivered."""

    @abc.abstractmethod
    def on_message(self, ctx: NodeContext, message: Message) -> None:
        """Called for every message delivered to this node."""

    # -- termination and output --------------------------------------------
    def finish(self, output: Any = None) -> None:
        """Mark the node as finished with the given output value."""
        self._output = output
        self._finished = True

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def output(self) -> Any:
        return self._output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"{type(self).__name__}({self.node_id!r}, {state})"


class FunctionNode(Node):
    """Small adapter turning a pair of callables into a Node (handy in tests)."""

    def __init__(self, node_id: str, on_start=None, on_message=None) -> None:
        super().__init__(node_id)
        self._on_start = on_start
        self._on_message = on_message

    def on_start(self, ctx: NodeContext) -> None:
        if self._on_start is not None:
            self._on_start(self, ctx)

    def on_message(self, ctx: NodeContext, message: Message) -> None:
        if self._on_message is not None:
            self._on_message(self, ctx, message)


def node_ids(nodes: Iterable[Node]) -> list[str]:
    """Convenience: the ids of an iterable of nodes, in order."""
    return [node.node_id for node in nodes]
