"""Point-to-point channels.

The paper assumes *reliable* channels: every message sent is eventually delivered,
unmodified, exactly once.  :class:`ReliableChannel` implements that contract for the
discrete-event simulator.  The class is small but explicit so that tests (and
adversarial schedulers) can inspect in-flight traffic, and so that alternative channel
semantics (drop, duplicate) could be added for robustness experiments without touching
the rest of the runtime.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.net.message import Message

__all__ = ["Channel", "ReliableChannel"]


class Channel(abc.ABC):
    """A unidirectional channel between two nodes."""

    @abc.abstractmethod
    def push(self, message: Message) -> None:
        """Enqueue a message for delivery."""

    @abc.abstractmethod
    def pop(self, msg_id: int) -> Message:
        """Remove and return the in-flight message with the given id."""

    @abc.abstractmethod
    def pending(self) -> List[Message]:
        """Messages sent but not yet delivered."""

    def __len__(self) -> int:
        return len(self.pending())

    def __iter__(self) -> Iterator[Message]:
        return iter(self.pending())


@dataclass
class ReliableChannel(Channel):
    """FIFO-ordered reliable channel.

    Delivery order between two given endpoints is FIFO by send time (the simulator's
    schedulers may interleave messages from *different* senders arbitrarily, which is
    where the asynchrony of the model lives), and no message is ever lost.
    """

    sender: str
    recipient: str
    # Keyed by msg_id (insertion-ordered, so FIFO semantics are preserved):
    # the simulator pops one message per delivery, and a linear scan here was
    # O(queue) with a full dataclass comparison per probe.
    _in_flight: Dict[int, Message] = field(default_factory=dict)
    delivered_count: int = 0
    delivered_bytes: int = 0

    def push(self, message: Message) -> None:
        if message.sender != self.sender or message.recipient != self.recipient:
            raise ValueError(
                f"message {message!r} does not belong to channel "
                f"{self.sender}->{self.recipient}"
            )
        self._in_flight[message.msg_id] = message

    def pop(self, msg_id: int) -> Message:
        message = self._in_flight.pop(msg_id, None)
        if message is None:
            raise KeyError(
                f"message id {msg_id} not in flight on {self.sender}->{self.recipient}"
            )
        self.delivered_count += 1
        self.delivered_bytes += message.size_bytes
        return message

    def pending(self) -> List[Message]:
        return list(self._in_flight.values())

    def earliest_undelivered(self) -> Message | None:
        """The in-flight message with the smallest send time (FIFO head), if any."""
        if not self._in_flight:
            return None
        return min(self._in_flight.values(), key=lambda m: (m.send_time, m.msg_id))
