"""Point-to-point channels.

The paper assumes *reliable* channels: every message sent is eventually delivered,
unmodified, exactly once.  :class:`ReliableChannel` implements that contract for the
discrete-event simulator.  The class is small but explicit so that tests (and
adversarial schedulers) can inspect in-flight traffic.  Under an armed
:class:`~repro.net.faults.FaultPlan` the channel additionally carries the
recovery layer's per-link state: retransmission attempt counts and duplicate
suppression by logical origin — both untouched (and unallocated) on fault-free
runs, so the reliable contract's memory profile is unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.net.message import Message

__all__ = ["Channel", "ReliableChannel"]


class Channel(abc.ABC):
    """A unidirectional channel between two nodes."""

    @abc.abstractmethod
    def push(self, message: Message) -> None:
        """Enqueue a message for delivery."""

    @abc.abstractmethod
    def pop(self, msg_id: int) -> Message:
        """Remove and return the in-flight message with the given id."""

    @abc.abstractmethod
    def pending(self) -> List[Message]:
        """Messages sent but not yet delivered."""

    def __len__(self) -> int:
        return len(self.pending())

    def __iter__(self) -> Iterator[Message]:
        return iter(self.pending())


@dataclass
class ReliableChannel(Channel):
    """FIFO-ordered reliable channel.

    Delivery order between two given endpoints is FIFO by send time (the simulator's
    schedulers may interleave messages from *different* senders arbitrarily, which is
    where the asynchrony of the model lives), and no message is ever lost.
    """

    sender: str
    recipient: str
    # Keyed by msg_id (insertion-ordered, so FIFO semantics are preserved):
    # the simulator pops one message per delivery, and a linear scan here was
    # O(queue) with a full dataclass comparison per probe.
    _in_flight: Dict[int, Message] = field(default_factory=dict)
    delivered_count: int = 0
    delivered_bytes: int = 0
    # Recovery-layer state, touched only when a FaultPlan is armed (unarmed
    # runs never allocate into these): retransmission attempt counts and the
    # set of logical origins already processed by the recipient.
    _attempts: Dict[int, int] = field(default_factory=dict)
    _delivered_origins: Set[int] = field(default_factory=set)

    def push(self, message: Message) -> None:
        if message.sender != self.sender or message.recipient != self.recipient:
            raise ValueError(
                f"message {message!r} does not belong to channel "
                f"{self.sender}->{self.recipient}"
            )
        self._in_flight[message.msg_id] = message

    def pop(self, msg_id: int) -> Message:
        message = self._in_flight.pop(msg_id, None)
        if message is None:
            raise KeyError(
                f"message id {msg_id} not in flight on {self.sender}->{self.recipient}"
            )
        self.delivered_count += 1
        self.delivered_bytes += message.size_bytes
        return message

    def pending(self) -> List[Message]:
        return list(self._in_flight.values())

    # -- recovery layer (see repro.net.faults) ------------------------------
    def next_attempt(self, origin: int) -> int:
        """Claim the next retransmission attempt number for ``origin`` (1-based).

        The network consults the plan's :class:`~repro.net.faults
        .RecoveryPolicy` for the literal bound; the channel only counts.
        """
        attempt = self._attempts.get(origin, 0) + 1
        self._attempts[origin] = attempt
        return attempt

    def suppress_duplicate(self, origin: int) -> bool:
        """True when ``origin`` was already processed by the recipient.

        The first call for an origin records it and returns False (process the
        payload); every later call — an injected duplicate or a retransmission
        racing its original — returns True (count the delivery, skip the
        handler), giving exactly-once processing over at-least-once delivery.
        """
        if origin in self._delivered_origins:
            return True
        self._delivered_origins.add(origin)
        return False

    def earliest_undelivered(self) -> Message | None:
        """The in-flight message with the smallest send time (FIFO head), if any."""
        if not self._in_flight:
            return None
        return min(self._in_flight.values(), key=lambda m: (m.send_time, m.msg_id))
