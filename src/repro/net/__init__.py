"""Simulated asynchronous message-passing runtime.

The runtime follows the game-theoretic execution model of the paper (Section 3.3):
time is divided into turns; in each turn one node is scheduled to move — it first
receives messages previously sent to it, performs some computation, and sends
messages.  Channels are reliable and schedules are *fair* (every node moves
infinitely often), which the simulator enforces by construction.

Two execution backends share the same :class:`~repro.net.node.Node` interface:

* :class:`~repro.net.network.SimNetwork` — deterministic discrete-event simulation
  with pluggable :class:`~repro.net.scheduler.Scheduler` and
  :class:`~repro.net.latency.LatencyModel`; tracks per-node virtual clocks so the
  benchmark harness can report critical-path elapsed time.
* :class:`~repro.net.transport.ThreadedNetwork` — a thread-per-node in-process
  transport with real queues, used to exercise the protocols under real concurrency.
"""

from repro.net.channel import Channel, ReliableChannel
from repro.net.clock import VirtualClock
from repro.net.latency import (
    BandwidthLatencyModel,
    ConstantLatencyModel,
    LanWanLatencyModel,
    LatencyModel,
    UniformLatencyModel,
    ZeroLatencyModel,
)
from repro.net.message import Message
from repro.net.network import NetworkStats, SimNetwork
from repro.net.node import Node, NodeContext
from repro.net.protocol import BlockContext, BlockHost, ProtocolBlock, ProtocolNode
from repro.net.scheduler import (
    AdversarialScheduler,
    FairScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.net.serialization import canonical_encode, estimate_size
from repro.net.transport import ThreadedNetwork

__all__ = [
    "AdversarialScheduler",
    "BandwidthLatencyModel",
    "BlockContext",
    "BlockHost",
    "Channel",
    "ConstantLatencyModel",
    "FairScheduler",
    "LanWanLatencyModel",
    "LatencyModel",
    "Message",
    "NetworkStats",
    "Node",
    "NodeContext",
    "ProtocolBlock",
    "ProtocolNode",
    "RandomScheduler",
    "ReliableChannel",
    "RoundRobinScheduler",
    "Scheduler",
    "SimNetwork",
    "ThreadedNetwork",
    "UniformLatencyModel",
    "VirtualClock",
    "ZeroLatencyModel",
    "canonical_encode",
    "estimate_size",
]
