"""The ambient observation context: one module-level slot, zero dependencies.

The observability plane is *ambient* by design: instrumented code
(``SimNetwork``, the engine layer, the executors, the fault plane) asks
:func:`current_observation` for the active :class:`Observation` and does
nothing when there is none.  That keeps the hooks one attribute-load away
from free in the disabled case and spares every constructor in the
simulation stack an ``observation=`` parameter it would only ever thread
through.

This module is deliberately import-light — pure stdlib, no ``repro``
imports — because the deepest layers of the repo (``repro.net``,
``repro.auctions.engine``) import it at module scope.  Anything heavier
would recreate the import cycle the lazy ``FAULTS`` registry exists to
avoid (net -> obs -> scenarios -> core -> net).  The heavyweight pieces
(the tracer's journal, the metrics accumulators) live in sibling modules
that only the *installer* side (:func:`repro.obs.observe`, the CLI)
imports.

Installation is a swap, not a push: :func:`swap_observation` returns the
previous value so the installer can restore it in a ``finally`` block.
Nesting therefore works (the inner observation shadows the outer for its
extent), and an unhandled exception can never leave a stale observation
behind.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Observation", "current_observation", "swap_observation"]


class Observation:
    """The active tracer + metrics hub pair.

    Either half may be ``None``: ``--metrics`` without ``--trace`` installs
    an observation whose ``tracer`` is ``None`` and vice versa, so each
    hook guards the half it uses.  The fields are duck-typed (``Any``)
    precisely so this module needs no imports; the real types are
    :class:`repro.obs.trace.Tracer` and :class:`repro.obs.metrics.MetricsHub`.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Any = None, metrics: Any = None) -> None:
        self.tracer = tracer
        self.metrics = metrics


_CURRENT: Optional[Observation] = None


def current_observation() -> Optional[Observation]:
    """The installed :class:`Observation`, or ``None`` when the plane is off."""
    return _CURRENT


def swap_observation(observation: Optional[Observation]) -> Optional[Observation]:
    """Install ``observation`` and return the previous one (for restoring)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = observation
    return previous
