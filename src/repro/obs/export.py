"""Chrome-trace-format export: spans -> a Perfetto/``chrome://tracing`` JSON.

The target is the JSON Array Format of the Trace Event spec: a
``traceEvents`` list of complete events (``ph: "X"``) and instants
(``ph: "i"``), timestamps in *microseconds*.  Sim time is seconds, so
export scales by 1e6 — a 0.0125 s modelled delivery renders as a 12.5 µs
span, preserving relative proportions, which is all a timeline viewer
needs.

The mapping of the tracer's structure onto the viewer's process/thread
grid: a span's ``track`` (one lane per scenario round) becomes the
``pid``, and its category becomes the ``tid`` (one named row per
category, via ``thread_name`` metadata events).  Events are sorted by
``(ts, span_id)`` and serialised with sorted keys and compact
separators, so the export — like the journal it came from — is
byte-identical across reruns and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.obs.trace import SpanRecord

__all__ = ["chrome_trace", "render_chrome", "render_text"]

#: Sim seconds -> trace microseconds.
_SCALE = 1e6


def chrome_trace(spans: Iterable[SpanRecord]) -> Dict[str, Any]:
    """Build the Chrome-trace document (a JSON-ready dict) from ``spans``."""
    ordered = sorted(spans, key=lambda span: (span.ts, span.span_id))
    categories = sorted({span.cat for span in ordered})
    tids = {cat: index for index, cat in enumerate(categories)}
    tracks = sorted({span.track for span in ordered})

    events: List[Dict[str, Any]] = []
    for track in tracks:
        for cat in categories:
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": track,
                    "tid": tids[cat],
                    "args": {"name": cat},
                }
            )
    for span in ordered:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "pid": span.track,
            "tid": tids[span.cat],
            "ts": span.ts * _SCALE,
            "args": {"span_id": span.span_id, "parent": span.parent, **span.detail},
        }
        if span.dur > 0.0:
            event["ph"] = "X"
            event["dur"] = span.dur * _SCALE
        else:
            event["ph"] = "i"
            event["s"] = "t"
        events.append(event)

    return {"displayTimeUnit": "ms", "traceEvents": events}


def render_chrome(spans: Iterable[SpanRecord]) -> str:
    """Canonical JSON of :func:`chrome_trace` (the byte-identity surface)."""
    return json.dumps(chrome_trace(spans), sort_keys=True, separators=(",", ":"))


def render_text(spans: Iterable[SpanRecord]) -> str:
    """A human-readable span listing (indented by nesting, one line per span)."""
    ordered = sorted(spans, key=lambda span: span.span_id)
    depths: Dict[int, int] = {}
    lines = [f"trace: {len(ordered)} spans"]
    for span in ordered:
        depth = depths.get(span.parent, -1) + 1
        depths[span.span_id] = depth
        indent = "  " * depth
        detail = " ".join(f"{key}={span.detail[key]}" for key in sorted(span.detail))
        lines.append(
            f"[track {span.track}] {indent}{span.name} ({span.cat}) "
            f"ts={span.ts:.6f} dur={span.dur:.6f}"
            + (f" {detail}" if detail else "")
        )
    return "\n".join(lines)
