"""repro.obs — the deterministic observability plane.

Sim-time tracing (:mod:`repro.obs.trace`), the METRICS instrument registry
(:mod:`repro.obs.metrics`), Chrome-trace export (:mod:`repro.obs.export`)
and the ambient installation context (:mod:`repro.obs.context`).  See
DESIGN.md, "The observability plane".

This ``__init__`` is deliberately lazy (PEP 562): ``repro.net.network``
imports ``repro.obs.context`` at module scope, which executes this file —
eagerly importing the tracer here would drag the store plane (and numpy)
into every network import and recreate the import cycle the context
module exists to break.  ``observe`` is the one front-door helper worth
defining here, and it imports its machinery inside the function body.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.context import Observation, current_observation, swap_observation

__all__ = [
    "METRICS",
    "MetricsHub",
    "Observation",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "current_observation",
    "load_trace",
    "observe",
    "render_chrome",
    "render_metrics",
    "render_text",
    "swap_observation",
]

_LAZY = {
    "METRICS": ("repro.obs.metrics", "METRICS"),
    "MetricsHub": ("repro.obs.metrics", "MetricsHub"),
    "render_metrics": ("repro.obs.metrics", "render_metrics"),
    "SpanRecord": ("repro.obs.trace", "SpanRecord"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "load_trace": ("repro.obs.trace", "load_trace"),
    "chrome_trace": ("repro.obs.export", "chrome_trace"),
    "render_chrome": ("repro.obs.export", "render_chrome"),
    "render_text": ("repro.obs.export", "render_text"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


@contextmanager
def observe(
    trace: Optional[str] = None,
    trace_format: Optional[str] = None,
    metrics: bool = True,
    name: str = "run",
):
    """Install an observation for the extent of the ``with`` block.

    ``trace`` names a journal path (``.rcol`` infers the columnar format
    unless ``trace_format`` says otherwise); ``metrics=False`` installs a
    tracer-only observation.  The previous observation — usually ``None`` —
    is restored on exit, and the tracer's journal is closed even on error,
    so a crashed run still leaves a valid (torn-tail-repairable) trace.

    Yields the :class:`Observation`, whose ``tracer``/``metrics`` halves
    the caller reads afterwards (spans for export, the hub for a snapshot).
    """
    from repro.obs.metrics import MetricsHub
    from repro.obs.trace import Tracer

    tracer = Tracer()
    if trace is not None:
        tracer.begin_journal(trace, format=trace_format, name=name)
    observation = Observation(
        tracer=tracer, metrics=MetricsHub() if metrics else None
    )
    previous = swap_observation(observation)
    try:
        yield observation
    finally:
        swap_observation(previous)
        tracer.finish()
