"""Sim-time span tracing over the results-store plane.

A :class:`Tracer` records :class:`SpanRecord` rows — auction solves, pivot
re-solves, message deliveries, grid-point executions, fault injections —
into the same append-only journal formats as sweep results (jsonl or
columnar, through :data:`~repro.scenarios.store.STORE_BACKENDS`), so the
trace artifact inherits the store plane's whole toolbox: sniffed formats,
O(1) appends, torn-tail repair, ``results convert``.

**The sim-time-only rule.**  Every timestamp in a span is *modelled* time:
``SimNetwork``'s virtual clock for network spans, grid/sequence indices
for executor and engine spans.  The wall clock never appears (this package
is in the linter's deterministic set, so ``time.perf_counter`` and friends
are RPA001 findings by construction), which is what makes a trace
byte-identical across reruns, hosts and ``PYTHONHASHSEED`` values — a
trace diff is therefore a *behaviour* diff, never noise.

**Timelines.**  Spans carry a ``track``: a small integer lane that keeps
logically concurrent timelines apart (each scenario round starts its sim
clock at 0, so two rounds' delivery spans would otherwise overlap).
Opening a span with ``new_track=True`` allocates the next lane; child
spans inherit the lane of the innermost open span.  The Chrome-trace
exporter (:mod:`repro.obs.export`) maps tracks to ``pid`` values, so
Perfetto shows one process-row per round.

Parent/child nesting is positional: :meth:`Tracer.open` pushes, and
:meth:`Tracer.close` pops and emits; :meth:`Tracer.emit` records a leaf
span under the innermost open span without touching the stack.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["SpanRecord", "Tracer", "load_trace", "trace_fingerprint"]


@dataclass(frozen=True)
class SpanRecord:
    """One span: a named interval (or instant, ``dur == 0``) in sim time.

    The field types are deliberately column-stable (always the same Python
    type for every row) so the columnar backend can infer a typed schema
    from the first record: ``detail`` is always a dict (possibly empty) and
    lands in a JSON column; ``parent`` is ``-1`` for roots rather than
    ``None`` so the column stays integer.
    """

    span_id: int
    parent: int
    track: int
    name: str
    cat: str
    ts: float
    dur: float
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": int(self.span_id),
            "parent": int(self.parent),
            "track": int(self.track),
            "name": str(self.name),
            "cat": str(self.cat),
            "ts": float(self.ts),
            "dur": float(self.dur),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            span_id=int(data["span_id"]),
            parent=int(data["parent"]),
            track=int(data["track"]),
            name=str(data["name"]),
            cat=str(data["cat"]),
            ts=float(data["ts"]),
            dur=float(data["dur"]),
            detail=dict(data.get("detail", {})),
        )


@dataclass(frozen=True)
class _TraceRun:
    """The manifest owner for a trace journal (``begin`` wants a ``.name``)."""

    name: str


def trace_fingerprint(name: str) -> str:
    """The manifest fingerprint of a trace journal named ``name``."""
    payload = json.dumps(
        {"kind": "trace", "version": 1, "name": name},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Tracer:
    """Collects spans in memory and (optionally) journals them as they close.

    A tracer with no journal is still useful — the in-memory ``spans`` list
    feeds the Chrome exporter directly — but the journal is what survives
    the process and what ``repro-auction trace`` reads back.  ``active`` is
    the cheap guard instrumentation sites check before building span
    detail.
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.active = True
        self._journal: Any = None
        self._stack: List[Tuple[int, int, str, str, float]] = []
        self._next_id = 0
        self._next_track = 0
        self._seq = 0

    # -- journal lifecycle -----------------------------------------------------------
    def begin_journal(self, path: str, format: Optional[str] = None, name: str = "trace") -> None:
        """Attach an on-disk journal; every span emitted from now on is appended.

        ``format`` picks the backend for a fresh path; ``None`` infers
        ``columnar`` for ``.rcol`` paths and the jsonl interchange default
        otherwise (existing files are sniffed by the store plane either way).
        """
        # Imported lazily: the store plane (and its numpy surface) must not
        # load just because something imported repro.obs.
        from repro.scenarios.store import ResultsStore

        if format is None and str(path).endswith(".rcol"):
            format = "columnar"
        self._journal = ResultsStore(path, record_type=SpanRecord, format=format)
        self._journal.begin(
            _TraceRun(name), total_rounds=0, fingerprint=trace_fingerprint(name)
        )

    def finish(self) -> None:
        """Close any open spans (zero-length tails) and the journal."""
        while self._stack:
            self.close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- span emission ---------------------------------------------------------------
    def seq(self) -> float:
        """The next logical timestamp, for spans with no sim clock (engine work)."""
        value = float(self._seq)
        self._seq += 1
        return value

    @property
    def current_track(self) -> int:
        return self._stack[-1][1] if self._stack else 0

    def open(self, name: str, cat: str, ts: float, *, new_track: bool = False) -> int:
        """Open a nesting span; children emitted before :meth:`close` nest under it."""
        span_id = self._next_id
        self._next_id += 1
        if new_track:
            self._next_track += 1
            track = self._next_track
        else:
            track = self.current_track
        self._stack.append((span_id, track, name, cat, float(ts)))
        return span_id

    def close(
        self,
        end_ts: Optional[float] = None,
        dur: Optional[float] = None,
        **detail: Any,
    ) -> SpanRecord:
        """Close the innermost open span.

        Duration comes from ``dur`` if given, else ``end_ts - open_ts``,
        else 0 (an instant-like span).
        """
        span_id, track, name, cat, ts = self._stack.pop()
        if dur is None:
            dur = (float(end_ts) - ts) if end_ts is not None else 0.0
        parent = self._stack[-1][0] if self._stack else -1
        return self._record(
            SpanRecord(span_id, parent, track, name, cat, ts, float(dur), detail)
        )

    def emit(self, name: str, cat: str, ts: float, dur: float = 0.0, **detail: Any) -> SpanRecord:
        """Record a leaf span under the innermost open span (no stack push)."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1][0] if self._stack else -1
        return self._record(
            SpanRecord(
                span_id, parent, self.current_track, name, cat, float(ts), float(dur), detail
            )
        )

    def instant(self, name: str, cat: str, ts: float, **detail: Any) -> SpanRecord:
        """Record an instant event (a zero-duration span; exported as ``ph: i``)."""
        return self.emit(name, cat, ts, 0.0, **detail)

    def _record(self, record: SpanRecord) -> SpanRecord:
        self.spans.append(record)
        if self._journal is not None:
            self._journal.append(record.span_id, 0, record)
        return record


def load_trace(path: str) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    """Read a trace journal back: ``(manifest, spans in span-id order)``.

    The format is sniffed by the store plane, so this reads jsonl and
    columnar trace journals alike (and journals converted between them).
    """
    from repro.scenarios.store import ResultsStore

    with ResultsStore(path, record_type=SpanRecord) as store:
        manifest, completed = store.read()
    spans = [completed[key] for key in sorted(completed)]
    return manifest, spans
