"""The METRICS registry: deterministic counters, gauges and histograms.

Three instrument kinds, registered in the same :class:`Registry` class that
serves ``MECHANISMS`` and ``FAULTS``, so spec files and extensions name them
by string literal and get path-precise errors for typos:

``counter``
    A monotonically increasing integer (messages sent, faults injected,
    memo hits).  Snapshot: ``{"kind": "counter", "value": N}``.

``gauge``
    A last-write-wins value (solve-memo hit rate of the latest round).
    Snapshot: ``{"kind": "gauge", "value": v}`` with ``None`` before the
    first ``set``.

``histogram``
    A distribution backed by the store plane's signed-log
    :class:`~repro.scenarios.aggregate.MetricAccumulator` (delivery
    latency, per-point modelled elapsed).  Snapshot: the accumulator's
    ``count``/``mean``/``min``/``max``/``p50``/``p90``/``p99`` dict — and
    therefore exactly the *empty snapshot* contract the store plane pins
    (``count=0``, everything else ``None``) when nothing was observed.

A :class:`MetricsHub` is a named-instrument namespace: ``hub.counter("x")``
creates on first use and returns the same instrument afterwards.  The
snapshot is sorted by name and built from each instrument's ``to_dict``,
so its canonical JSON is byte-identical across reruns and
``PYTHONHASHSEED`` values — the hub is part of the repo's bit-identity
surface, which is why this module lives in the linter's deterministic
``obs`` package (no wall clock, no unordered iteration).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.scenarios.aggregate import MetricAccumulator
from repro.scenarios.registry import Registry
from repro.scenarios.spec import ComponentSpec, SpecError

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "render_metrics",
]

#: Registry of instrument kinds; extensions register their own with
#: ``@METRICS.register("my-kind")``.
METRICS = Registry("metric instrument")


class Counter:
    """A monotonically increasing integer instrument."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += int(amount)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": int(self.value)}


class Gauge:
    """A last-write-wins value instrument (``None`` until first set)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """A distribution instrument over the signed-log accumulator.

    Observations are buffered and flushed through
    :meth:`MetricAccumulator.update` in batches, so per-event cost is one
    list append; the accumulator's vectorised binning runs only every
    ``BATCH`` observations and at snapshot time.
    """

    kind = "histogram"

    BATCH = 4096

    __slots__ = ("_accumulator", "_pending")

    def __init__(self) -> None:
        self._accumulator = MetricAccumulator()
        self._pending: List[float] = []

    def observe(self, value: float) -> None:
        self._pending.append(float(value))
        if len(self._pending) >= self.BATCH:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._accumulator.update(self._pending)
            self._pending = []

    @property
    def count(self) -> int:
        return self._accumulator.count + len(self._pending)

    def to_dict(self) -> Dict[str, Any]:
        self._flush()
        snapshot = self._accumulator.to_dict()
        snapshot["kind"] = "histogram"
        return snapshot


METRICS.register("counter", Counter)
METRICS.register("gauge", Gauge)
METRICS.register("histogram", Histogram)


class MetricsHub:
    """A named-instrument namespace with a deterministic snapshot.

    Instruments are created through :data:`METRICS` on first use and cached
    by name; asking for an existing name as a different kind is a
    name-precise :class:`SpecError` (two subsystems silently sharing
    ``"latency"`` as a counter *and* a histogram is a bug, not a merge).
    """

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _instrument(self, name: str, kind: str) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = METRICS.create(ComponentSpec(kind), f"metrics[{name}]")
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise SpecError(
                f"metrics[{name}]",
                f"instrument already exists as a {instrument.kind}, "
                f"requested as a {kind}",
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._instrument(name, "histogram")

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshot ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The full state, sorted by instrument name (rerun-stable)."""
        return {
            "kind": "metrics-snapshot",
            "version": 1,
            "instruments": {
                name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)
            },
        }

    def snapshot_json(self) -> str:
        """Canonical (sorted, compact) JSON of :meth:`snapshot` — the
        byte-identity surface the determinism suite pins."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        return hashlib.sha256(self.snapshot_json().encode("utf-8")).hexdigest()

    def summary_line(self) -> str:
        """One greppable line: ``metrics: C counters, G gauges, H histograms``."""
        kinds = {"counter": 0, "gauge": 0, "histogram": 0}
        for instrument in self._instruments.values():
            kinds[instrument.kind] = kinds.get(instrument.kind, 0) + 1
        return (
            f"metrics: {kinds['counter']} counters, {kinds['gauge']} gauges, "
            f"{kinds['histogram']} histograms"
        )


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a :meth:`MetricsHub.snapshot` document."""
    instruments = snapshot.get("instruments", {})
    lines = [f"metrics snapshot: {len(instruments)} instruments"]
    if not instruments:
        return lines[0]
    width = max(len(name) for name in instruments)

    def _cell(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    for name in sorted(instruments):
        data = instruments[name]
        kind = data.get("kind", "?")
        if kind == "histogram":
            detail = " ".join(
                f"{field}={_cell(data.get(field))}"
                for field in ("count", "mean", "min", "max", "p50", "p90", "p99")
            )
        else:
            detail = f"value={_cell(data.get('value'))}"
        lines.append(f"{name:<{width}s}  {kind:<9s} {detail}")
    return "\n".join(lines)
