"""Text rendering of experiment results.

The paper's figures plot running time (seconds) against the number of users, one line
per configuration.  :func:`points_to_series` groups experiment points the same way,
and :func:`format_points` renders them as a fixed-width table suitable for terminals
and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.bench.harness import ExperimentPoint

__all__ = ["points_to_series", "format_points", "format_series"]


def points_to_series(points: Iterable[ExperimentPoint]) -> Dict[str, List[Tuple[int, float]]]:
    """Group points by series name: series -> sorted list of (users, seconds)."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for point in points:
        series.setdefault(point.series, []).append((point.num_users, point.elapsed_seconds))
    for values in series.values():
        values.sort()
    return series


def format_points(points: Iterable[ExperimentPoint]) -> str:
    """Render points as a fixed-width table (one row per measurement)."""
    rows = [p.as_row() for p in points]
    if not rows:
        return "(no data)"
    headers = ["figure", "series", "users", "seconds", "messages", "bytes", "aborted"]
    widths = {h: max(len(h), *(len(_cell(r.get(h))) for r in rows)) for h in headers}
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(_cell(row.get(h)).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def format_series(points: Iterable[ExperimentPoint]) -> str:
    """Render points as one block per series: ``users -> seconds`` pairs."""
    series = points_to_series(points)
    lines: List[str] = []
    for name in sorted(series):
        lines.append(f"{name}:")
        for users, seconds in series[name]:
            lines.append(f"  n={users:>5d}  {seconds:8.3f} s")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
