"""Experiment runners for the paper's two evaluation figures.

Figure 4 (§6.2): running time of the *double auction* as a function of the number of
users (up to 1000), for a centralised auctioneer and for the distributed simulation
with m = 8 providers and k ∈ {1, 2, 3} — i.e. 3, 5 and 8 providers executing the
protocol (the minimum 2k+1).

Figure 5 (§6.3): running time of the *standard auction* as a function of the number of
users (up to 125), for p ∈ {1, 2, 4} where p is the level of parallelism of the
parallel allocator (p = 1 is the centralised execution, p = 2 corresponds to k = 3 and
p = 4 to k = 1 with m = 8 providers).

Since the scenario API redesign both experiments are thin wrappers over the
built-in sweep specs of :mod:`repro.scenarios.builtin`: the grid is pure data
(``figure4_sweep()`` / ``figure5_sweep()``) and every point executes through
:func:`repro.scenarios.runner.run_scenario` — the same code path as
``repro-auction sweep --spec fig4.json``, so the two can never drift apart
(locked by ``tests/scenarios/test_differential.py``).  The classes survive as
the stable, object-style API used by the benchmarks and tests.

Timing model: the simulation charges measured handler CPU time to each provider's
virtual clock and adds modelled message latencies; the reported ``elapsed`` value is
the critical path (max over providers of their final clock), which is what a
stopwatch at the paper's client node would approximately observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.auctions.double_auction import DoubleAuction
from repro.auctions.engine import DEFAULT_ENGINE, resolve_engine
from repro.auctions.standard_auction import StandardAuction
from repro.community.workload import (
    DoubleAuctionWorkload,
    StandardAuctionWorkload,
    default_provider_ids,
)
from repro.core.config import FrameworkConfig
from repro.net.latency import LatencyModel
from repro.runtime.batch import BatchAuctionRunner, BatchSummary
from repro.scenarios.builtin import figure4_sweep, figure5_sweep
from repro.scenarios.runner import RunRecord, run_scenario
from repro.scenarios.spec import SweepSpec, spec_with_overrides
from repro.scenarios.sweep import SweepResult, run_sweep

__all__ = [
    "ExperimentPoint",
    "Figure4Experiment",
    "Figure5Experiment",
    "chaos_bench_spec",
    "default_latency_model",
    "export_chaos_artifact",
    "export_net_artifact",
    "export_obs_artifact",
    "export_resilience_artifact",
    "export_store_artifact",
    "export_sweep_artifact",
    "record_to_point",
    "resilience_bench_spec",
    "run_chaos_benchmark",
    "run_net_benchmark",
    "run_obs_benchmark",
    "run_resilience_benchmark",
    "run_store_benchmark",
    "store_bench_records",
]


def export_sweep_artifact(result: SweepResult, path="BENCH_sweep.json") -> str:
    """Write a sweep's uniform artifact: the full ``SweepResult.to_dict`` payload.

    This is the bench harness's durable export — the same shape as
    ``repro-auction sweep --json`` and as a rehydrated results journal
    (:class:`~repro.scenarios.store.ResultsStore`), so downstream tooling
    consumes one format whichever way the sweep ran.  Returns the path
    written.
    """
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.to_json(indent=2) + "\n")
    return path


# Pre-event-queue throughput of the same workload (seed list-based core: O(M)
# deliverable rebuild + min scan + list.remove per delivered message), measured
# on the PR's reference host.  A fixed origin for the net layer's perf
# trajectory — cross-host ratios against it are indicative only; the bench
# suite additionally measures the seed core live on the current host
# (``benchmarks/test_bench_net_core.py``) for a true same-host speedup.
_NET_BASELINE = {
    "messages_per_sec": 14_544,
    "wall_seconds": 0.0671,
    "core": "pre-event-queue seed (list-based in-flight store)",
    "note": "frozen reference-host measurement; see baseline_seed_core_same_host "
    "for the ratio measured on the exporting host",
}


def run_net_benchmark(
    num_users: int = 40,
    num_providers: int = 8,
    k: int = 2,
    seed: int = 0,
    repeats: int = 3,
    latency_model: Optional[LatencyModel] = None,
) -> Dict[str, object]:
    """Measure the simulator core on one distributed double-auction round.

    Runs the full round (bidders, providers, consensus blocks) ``repeats``
    times on the ``wan`` latency model and reports best-of wall time plus the
    derived messages/sec and steps/sec — the net layer's headline throughput
    numbers (see ``BENCH_net.json``).  The round is deterministic, so every
    repeat delivers the identical message trace.
    """
    import time

    from repro.auctions.double_auction import DoubleAuction
    from repro.community.workload import DoubleAuctionWorkload
    from repro.core.config import FrameworkConfig
    from repro.runtime.auction_run import AuctionRun

    if latency_model is None:
        latency_model = default_latency_model()
        latency_label = "wan"
    else:
        latency_label = type(latency_model).__name__
    bids = DoubleAuctionWorkload(seed=seed).generate(num_users, num_providers)

    stats = None
    best = float("inf")
    for _ in range(max(1, repeats)):
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=k),
            latency_model=latency_model,
            seed=seed,
        )
        start = time.perf_counter()
        result = run.execute()
        best = min(best, time.perf_counter() - start)
        stats = result.stats

    messages_per_sec = stats.messages_delivered / best
    steps_per_sec = stats.steps / best
    speedup = messages_per_sec / _NET_BASELINE["messages_per_sec"]
    return {
        "bench": "net-core",
        "workload": "distributed double auction",
        "users": num_users,
        "providers": num_providers,
        "k": k,
        "latency": latency_label,
        "scheduler": "fair",
        "repeats": repeats,
        "messages_delivered": stats.messages_delivered,
        "steps": stats.steps,
        "bytes_delivered": stats.bytes_delivered,
        "wall_seconds": best,
        "messages_per_sec": messages_per_sec,
        "steps_per_sec": steps_per_sec,
        "baseline_pre_event_queue": dict(_NET_BASELINE),
        "speedup_vs_baseline": speedup,
        "summary": (
            f"BENCH_net: {messages_per_sec:,.0f} messages/sec "
            f"({speedup:.1f}x reference-host baseline) on the distributed "
            f"double auction, {num_users} users / {num_providers} providers, "
            f"{latency_label} latency"
        ),
    }


def export_net_artifact(payload: Dict[str, object], path="BENCH_net.json") -> str:
    """Write the net-core bench artifact (see :func:`run_net_benchmark`).

    The durable counterpart of ``BENCH_sweep.json`` for the simulator layer;
    CI regenerates it in quick mode and greps the ``summary`` line.  Returns
    the path written.
    """
    import json
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def run_obs_benchmark(
    num_users: int = 40,
    num_providers: int = 8,
    k: int = 2,
    seed: int = 0,
    repeats: int = 5,
) -> Dict[str, object]:
    """Measure the observability plane's overhead on the net-core workload.

    Three modes over the identical distributed double-auction round:

    ``off`` (twice, A and B)
        No observation installed — the production default.  The instrument
        sites reduce to one cached ``is None`` check, so the A/B median
        delta is the *noise bound* of this host: ``overhead_disabled_pct``
        proves disabled-mode tracing is free to within measurement noise
        (the artifact contract is < 5 %).

    ``observed``
        A live in-memory observation (tracer + metrics hub, no journal):
        every span and counter the round can emit, which is the honest
        upper bound a ``--trace``/``--metrics`` run pays before journal I/O.

    Modes are interleaved off-A / observed / off-B so drift (thermal, cache,
    scheduler) lands across modes rather than inside the comparison.
    """
    import statistics
    import time

    from repro.obs import observe
    from repro.runtime.auction_run import AuctionRun

    latency_model = default_latency_model()
    bids = DoubleAuctionWorkload(seed=seed).generate(num_users, num_providers)

    def one_round() -> float:
        run = AuctionRun(
            bids,
            DoubleAuction(),
            config=FrameworkConfig(k=k),
            latency_model=latency_model,
            seed=seed,
        )
        start = time.perf_counter()
        result = run.execute()
        elapsed = time.perf_counter() - start
        assert not result.aborted
        return elapsed

    def sample_off() -> float:
        return statistics.median(one_round() for _ in range(max(1, repeats)))

    one_round()  # warm-up: imports, numpy kernels, allocator pools

    median_off_a = sample_off()
    observed_times = []
    spans = instruments = 0
    for _ in range(max(1, repeats)):
        with observe() as observation:
            observed_times.append(one_round())
        spans = len(observation.tracer.spans)
        instruments = len(observation.metrics)
    median_observed = statistics.median(observed_times)
    median_off_b = sample_off()

    baseline = min(median_off_a, median_off_b)
    overhead_disabled_pct = abs(median_off_b - median_off_a) / baseline * 100.0
    overhead_enabled_pct = (median_observed - baseline) / baseline * 100.0

    return {
        "bench": "obs-overhead",
        "workload": "distributed double auction (net-core)",
        "users": num_users,
        "providers": num_providers,
        "k": k,
        "latency": "wan",
        "repeats": repeats,
        "median_off_a_seconds": median_off_a,
        "median_off_b_seconds": median_off_b,
        "median_observed_seconds": median_observed,
        "overhead_disabled_pct": overhead_disabled_pct,
        "overhead_enabled_pct": overhead_enabled_pct,
        "spans_per_round": spans,
        "instruments": instruments,
        "summary": (
            f"BENCH_obs: disabled-mode overhead {overhead_disabled_pct:.2f}% "
            f"(A/B noise bound), live tracing+metrics "
            f"{overhead_enabled_pct:+.1f}% ({spans} spans, {instruments} "
            f"instruments per round) on the net-core double auction"
        ),
    }


def export_obs_artifact(payload: Dict[str, object], path="BENCH_obs.json") -> str:
    """Write the observability bench artifact (see :func:`run_obs_benchmark`).

    CI regenerates it in quick mode and greps the ``summary`` line; the
    ``overhead_disabled_pct`` field is the PR-10 acceptance number.  Returns
    the path written.
    """
    import json
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def resilience_bench_spec(
    num_users: int = 120,
    num_providers: int = 5,
    k: int = 2,
    seeds: Sequence[int] = (0, 1, 2),
):
    """The audit spec both resilience benchmarks time (single source of truth).

    Every coalition of size <= ``k`` (15 coalitions at the default m=5, k=2)
    x the four-deviation library x ``seeds``: 180 cells at the defaults.
    Shared by :func:`run_resilience_benchmark` and
    ``benchmarks/test_bench_resilience.py`` so the timed benchmarks and the
    exported artifact can never measure different audits.
    """
    from repro.scenarios.resilience import ResilienceSpec
    from repro.scenarios.spec import ScenarioSpec

    return ResilienceSpec(
        name="bench-resilience",
        base=ScenarioSpec(
            name="bench-resilience",
            mechanism="double",
            users=num_users,
            providers=num_providers,
            config={"k": min(k, (num_providers - 1) // 2)},
            latency="constant",
            seed=seeds[0],
            measure_compute=False,
        ),
        k=k,
        adversaries=(
            "equivocate",
            {"kind": "tamper_output", "bonus": 5.0},
            "drop_messages",
            {"kind": "crash", "max_sends": 4},
        ),
        schedules=("fair",),
        seeds=tuple(seeds),
    )


def run_resilience_benchmark(
    num_users: int = 120,
    num_providers: int = 5,
    k: int = 2,
    workers="auto",
    seeds: Sequence[int] = (0, 1, 2),
) -> Dict[str, object]:
    """Measure the resilience audit under the default worker resolution.

    Runs the :func:`resilience_bench_spec` audit once sequentially and once
    with the requested ``workers`` (default ``"auto"``), resolved through the
    worker policy (:func:`repro.scenarios.dispatch.resolve_workers`): on a
    single available CPU ``"auto"`` *is* the sequential path, so the default
    configuration can never pay pool overhead, and the artifact records a
    1.0x speedup by construction.  On multi-CPU hosts the resolved pool is
    timed against the sequential run and the verdicts are checked
    bit-identical.  ``workers_resolved``/``backend``/``cpu_count`` record
    both sides of the resolution next to the headline numbers of
    ``BENCH_resilience.json``.
    """
    import os
    import time

    from repro.common import available_cpus
    from repro.scenarios.dispatch import resolve_workers
    from repro.scenarios.resilience import run_resilience

    spec = resilience_bench_spec(
        num_users=num_users, num_providers=num_providers, k=k, seeds=seeds
    )
    coalitions = len(spec.coalition_selectors())
    cells = len(spec.cells()) * len(spec.effective_seeds())
    plan = resolve_workers(workers)

    start = time.perf_counter()
    sequential = run_resilience(spec)
    sequential_seconds = time.perf_counter() - start

    if plan.parallel:
        start = time.perf_counter()
        parallel = run_resilience(spec, workers=workers)
        parallel_seconds = time.perf_counter() - start
        speedup = (
            sequential_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
        )
        identical = sequential.records == parallel.records
        note = (
            f"workers={plan.requested!r} resolved to {plan.workers} processes "
            f"on {available_cpus()} available CPUs"
        )
    else:
        # The default configuration resolved to the sequential path: there is
        # no pool run to time, and the speedup is 1.0 by definition rather
        # than a sub-1x pool-overhead reading.
        parallel_seconds = None
        speedup = 1.0
        identical = True
        note = (
            f"workers={plan.requested!r} resolved to the sequential path "
            f"({available_cpus()} available CPU); no pool was launched"
        )
    return {
        "note": note,
        "bench": "resilience-audit",
        "workload": "double-auction coalition-deviation audit",
        "users": num_users,
        "providers": num_providers,
        "audit_k": k,
        "coalitions": coalitions,
        "cells": cells,
        "workers_requested": plan.requested,
        "workers_resolved": plan.workers,
        "backend": plan.backend,
        "cpu_count": available_cpus(),
        "cpu_count_logical": os.cpu_count(),
        "wall_seconds_sequential": sequential_seconds,
        "wall_seconds_parallel": parallel_seconds,
        "speedup": speedup,
        "verdicts_identical": identical,
        "resilient": sequential.is_resilient(),
        "summary": (
            f"BENCH_resilience: {cells} cells over {coalitions} coalitions, "
            f"workers={plan.requested!r} -> {plan.workers} ({plan.backend}): "
            f"{speedup:.1f}x vs sequential "
            f"({sequential_seconds:.2f}s sequential, {available_cpus()} "
            f"available CPU{'s' if available_cpus() != 1 else ''}), "
            f"verdicts identical={identical}"
        ),
    }


def export_resilience_artifact(
    payload: Dict[str, object], path="BENCH_resilience.json"
) -> str:
    """Write the resilience-audit bench artifact (see :func:`run_resilience_benchmark`).

    The durable counterpart of ``BENCH_sweep.json`` / ``BENCH_net.json`` for
    the game-theory layer; CI regenerates it in quick mode and greps the
    ``summary`` line.  Returns the path written.
    """
    import json
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def chaos_bench_spec(
    num_users: int = 80,
    num_providers: int = 5,
    seeds: Sequence[int] = (0, 1, 2),
):
    """The audit spec both chaos benchmarks time (single source of truth).

    A six-model fault grid — loss at two rates, duplication, reordering, a
    latency spike and a crash-restart — x ``seeds``: 18 cells at the
    defaults, each run twice (the replay invariant).  Shared by
    :func:`run_chaos_benchmark` and ``benchmarks/test_bench_chaos.py`` so the
    timed benchmarks and the exported artifact can never measure different
    audits.
    """
    from repro.scenarios.chaos import ChaosSpec
    from repro.scenarios.spec import ScenarioSpec

    return ChaosSpec(
        name="bench-chaos",
        base=ScenarioSpec(
            name="bench-chaos",
            mechanism="double",
            users=num_users,
            providers=num_providers,
            config={"k": min(2, (num_providers - 1) // 2)},
            latency="constant",
            seed=seeds[0],
            measure_compute=False,
        ),
        faults=(
            {"kind": "loss", "rate": 0.05},
            {"kind": "loss", "rate": 0.2, "label": "heavy-loss"},
            "duplicate",
            "reorder",
            {"kind": "latency_spike", "at": 0.001, "duration": 0.004, "extra": 0.05},
            {"kind": "crash", "node": "p01", "at": 0.001, "duration": 0.002},
        ),
        seeds=tuple(seeds),
    )


def run_chaos_benchmark(
    num_users: int = 80,
    num_providers: int = 5,
    workers="auto",
    seeds: Sequence[int] = (0, 1, 2),
) -> Dict[str, object]:
    """Measure the chaos audit under the default worker resolution.

    Runs the :func:`chaos_bench_spec` audit once sequentially and once with
    the requested ``workers`` (default ``"auto"``), resolved through the
    worker policy: on a single available CPU ``"auto"`` *is* the sequential
    path, so the default configuration can never pay pool overhead, and the
    artifact records a 1.0x speedup by construction.  On multi-CPU hosts the
    resolved pool is timed against the sequential run and the records are
    checked bit-identical — the chaos layer's own replay invariant, asserted
    once more across the process boundary.
    """
    import os
    import time

    from repro.common import available_cpus
    from repro.scenarios.chaos import run_chaos
    from repro.scenarios.dispatch import resolve_workers

    spec = chaos_bench_spec(
        num_users=num_users, num_providers=num_providers, seeds=seeds
    )
    cells = len(spec.cells()) * len(spec.effective_seeds())
    plan = resolve_workers(workers)

    start = time.perf_counter()
    sequential = run_chaos(spec)
    sequential_seconds = time.perf_counter() - start

    if plan.parallel:
        start = time.perf_counter()
        parallel = run_chaos(spec, workers=workers)
        parallel_seconds = time.perf_counter() - start
        speedup = (
            sequential_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
        )
        identical = sequential.records == parallel.records
        note = (
            f"workers={plan.requested!r} resolved to {plan.workers} processes "
            f"on {available_cpus()} available CPUs"
        )
    else:
        parallel_seconds = None
        speedup = 1.0
        identical = True
        note = (
            f"workers={plan.requested!r} resolved to the sequential path "
            f"({available_cpus()} available CPU); no pool was launched"
        )
    return {
        "note": note,
        "bench": "chaos-audit",
        "workload": "double-auction fault-injection audit",
        "users": num_users,
        "providers": num_providers,
        "faults": len(spec.faults),
        "cells": cells,
        "workers_requested": plan.requested,
        "workers_resolved": plan.workers,
        "backend": plan.backend,
        "cpu_count": available_cpus(),
        "cpu_count_logical": os.cpu_count(),
        "wall_seconds_sequential": sequential_seconds,
        "wall_seconds_parallel": parallel_seconds,
        "speedup": speedup,
        "records_identical": identical,
        "clean": sequential.is_clean(),
        "summary": (
            f"BENCH_chaos: {cells} cells over {len(spec.faults)} fault models, "
            f"workers={plan.requested!r} -> {plan.workers} ({plan.backend}): "
            f"{speedup:.1f}x vs sequential "
            f"({sequential_seconds:.2f}s sequential, {available_cpus()} "
            f"available CPU{'s' if available_cpus() != 1 else ''}), "
            f"clean={sequential.is_clean()}"
        ),
    }


def export_chaos_artifact(payload: Dict[str, object], path="BENCH_chaos.json") -> str:
    """Write the chaos-audit bench artifact (see :func:`run_chaos_benchmark`).

    The fault plane's durable counterpart of ``BENCH_resilience.json``; CI
    regenerates it in quick mode and greps the ``summary`` line.  Returns
    the path written.
    """
    import json
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def store_bench_records(count: int = 10_000, seed: int = 0) -> List[RunRecord]:
    """Deterministic synthetic records for the store-plane benchmark.

    Shaped like a real sweep's output — repeating strings (interning
    pressure), a nullable ``engine``, mixed ints/floats/bools — but built in
    memory so the benchmark times the *store*, not the simulator.  Pure
    function of ``(count, seed)``.
    """
    import random

    rng = random.Random(seed)
    records = []
    for index in range(count):
        records.append(
            RunRecord(
                name="store-bench",
                series=f"series-{index % 5}",
                runner="scenario",
                mechanism="double" if index % 2 else "standard",
                engine=None if index % 11 == 0 else "vectorized",
                users=40 + (index % 30),
                providers=8,
                executors=5,
                k=2,
                parallel=index % 3 == 0,
                instance=index % 4,
                seed=index % 16,
                elapsed_seconds=rng.random() * 2.0,
                messages=1_000 + (index % 997),
                bytes_transferred=50_000 + 13 * (index % 4096),
                aborted=False,
                winners=10 + (index % 20),
                total_paid=round(rng.random() * 500.0, 6),
                total_received=round(rng.random() * 450.0, 6),
            )
        )
    return records


def run_store_benchmark(records: int = 10_000, seed: int = 0) -> Dict[str, object]:
    """Measure the results plane: append throughput and scan/summarize time.

    Writes the same ``records`` synthetic rounds through both
    :data:`~repro.scenarios.store.STORE_BACKENDS` formats, then times the
    analysis side: the jsonl *full parse* (``read()`` — parse every line,
    rehydrate every record) against the columnar *streaming summary*
    (``summary()`` — memory-mapped chunk reductions, no records built).
    That ratio is the columnar backend's reason to exist and the headline
    ``speedup_scan_summarize`` of ``BENCH_store.json``.
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.scenarios.spec import ScenarioSpec
    from repro.scenarios.store import ResultsStore

    rows = store_bench_records(records, seed=seed)
    sweep = SweepSpec(
        base=ScenarioSpec(name="store-bench", mechanism="double", users=40, seed=seed),
        name="store-bench",
    )
    directory = tempfile.mkdtemp(prefix="bench-store-")
    appends: Dict[str, Dict[str, object]] = {}
    try:
        paths = {}
        for fmt in ("jsonl", "columnar"):
            path = os.path.join(directory, f"bench.{fmt}")
            paths[fmt] = path
            start = time.perf_counter()
            with ResultsStore(path, format=fmt) as store:
                store.begin(sweep, total_rounds=len(rows))
                for index, record in enumerate(rows):
                    store.append(index, 0, record)
            seconds = time.perf_counter() - start
            appends[fmt] = {
                "append_seconds": seconds,
                "appends_per_sec": len(rows) / seconds,
                "file_bytes": os.path.getsize(path),
            }

        start = time.perf_counter()
        _manifest, parsed = ResultsStore(paths["jsonl"]).read()
        jsonl_parse_seconds = time.perf_counter() - start

        start = time.perf_counter()
        jsonl_summary = ResultsStore(paths["jsonl"]).summary()
        jsonl_summary_seconds = time.perf_counter() - start

        start = time.perf_counter()
        columnar_summary = ResultsStore(paths["columnar"]).summary()
        columnar_summary_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    if len(parsed) != len(rows) or columnar_summary["records"] != len(rows):
        raise RuntimeError("store benchmark lost records; refusing to report")
    # Histogram-derived stats are batch-invariant (bit-identical across
    # backends); totals are accumulated in different batch partitions, so
    # means agree only to rounding.
    for name, stats in jsonl_summary["columns"].items():
        other = columnar_summary["columns"][name]
        exact = all(stats[f] == other[f] for f in ("count", "min", "max", "p50", "p90", "p99"))
        close = abs(stats["mean"] - other["mean"]) <= 1e-9 * max(1.0, abs(stats["mean"]))
        if not (exact and close):
            raise RuntimeError(
                f"store benchmark summaries disagree across backends on {name!r}"
            )

    speedup = jsonl_parse_seconds / columnar_summary_seconds
    size_ratio = appends["jsonl"]["file_bytes"] / appends["columnar"]["file_bytes"]
    return {
        "bench": "store-plane",
        "workload": "synthetic sweep records (store_bench_records)",
        "records": len(rows),
        "jsonl": appends["jsonl"],
        "columnar": appends["columnar"],
        "jsonl_full_parse_seconds": jsonl_parse_seconds,
        "jsonl_summarize_seconds": jsonl_summary_seconds,
        "columnar_summarize_seconds": columnar_summary_seconds,
        "speedup_scan_summarize": speedup,
        "size_ratio_jsonl_over_columnar": size_ratio,
        "summaries_identical": True,
        "summary": (
            f"BENCH_store: {len(rows)} records — columnar scan+summarize "
            f"{speedup:.1f}x faster than jsonl full parse "
            f"({columnar_summary_seconds * 1e3:.1f} ms vs "
            f"{jsonl_parse_seconds * 1e3:.1f} ms), files "
            f"{size_ratio:.1f}x smaller "
            f"({appends['columnar']['file_bytes']:,} B columnar vs "
            f"{appends['jsonl']['file_bytes']:,} B jsonl)"
        ),
    }


def export_store_artifact(payload: Dict[str, object], path="BENCH_store.json") -> str:
    """Write the store-plane bench artifact (see :func:`run_store_benchmark`).

    The durable counterpart of ``BENCH_net.json`` / ``BENCH_resilience.json``
    for the results plane; CI regenerates it in quick mode and greps the
    ``summary`` line.  Returns the path written.
    """
    import json
    import os

    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def default_latency_model() -> LatencyModel:
    """The WAN-ish latency model used by both experiments (spec kind ``"wan"``).

    Calibrated loosely to the paper's testbed: a few milliseconds of one-way latency
    between community-network sites plus a 100 Mbit/s-class transmission term, which
    is what makes the double-auction overhead grow with the number of users.

    Delegates to the ``"wan"`` registry entry so the calibration constants live
    in exactly one place — ``repro-auction fig4`` (this model object) and
    ``repro-auction sweep --spec fig4.json`` (the registry kind) can never
    drift apart.
    """
    from repro.scenarios.registry import LATENCIES
    from repro.scenarios.spec import ComponentSpec

    return LATENCIES.create(ComponentSpec("wan"), "latency")


@dataclass(frozen=True)
class ExperimentPoint:
    """One (series, n) measurement."""

    figure: str
    series: str
    num_users: int
    elapsed_seconds: float
    messages: int
    bytes_transferred: int
    aborted: bool = False
    extra: Tuple[Tuple[str, float], ...] = ()

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "figure": self.figure,
            "series": self.series,
            "users": self.num_users,
            "seconds": self.elapsed_seconds,
            "messages": self.messages,
            "bytes": self.bytes_transferred,
            "aborted": self.aborted,
        }
        row.update(dict(self.extra))
        return row


def record_to_point(
    figure: str, record: RunRecord, extra: Tuple[Tuple[str, float], ...] = ()
) -> ExperimentPoint:
    """Project the uniform :class:`RunRecord` schema onto a figure point."""
    return ExperimentPoint(
        figure=figure,
        series=record.series,
        num_users=record.users,
        elapsed_seconds=record.elapsed_seconds,
        messages=record.messages,
        bytes_transferred=record.bytes_transferred,
        aborted=record.aborted,
        extra=extra,
    )


class _SweepExperiment:
    """Shared wrapper machinery: a built-in sweep spec plus amortised components."""

    figure: str
    sweep_spec: SweepSpec

    def run_sweep_result(
        self,
        *,
        workers: Optional[int] = None,
        store=None,
        store_format: Optional[str] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Run the full grid through the sweep engine (the CLI's ``--json`` path).

        ``workers``/``store``/``store_format``/``resume`` are forwarded to
        :func:`~repro.scenarios.sweep.run_sweep`: an N-process pool over the
        grid, an append-only results journal in the chosen
        :data:`~repro.scenarios.store.STORE_BACKENDS` format, and
        journal-backed resume.
        """
        return run_sweep(
            self.sweep_spec,
            latency_model=self.latency_model,
            workers=workers,
            store=store,
            store_format=store_format,
            resume=resume,
        )

    def points_from_result(self, result: SweepResult) -> List[ExperimentPoint]:
        """Project a sweep result onto the classic figure points."""
        return [
            record_to_point(self.figure, record, self._extra(record))
            for record in result.records
        ]

    def run(self, **kwargs) -> List[ExperimentPoint]:
        """Run the full grid and return the classic figure points."""
        return self.points_from_result(self.run_sweep_result(**kwargs))

    def _run_point(self, overrides: Dict[str, object], instance: int) -> RunRecord:
        spec = spec_with_overrides(self.sweep_spec.base, overrides)
        return run_scenario(
            spec,
            instance,
            mechanism=self.mechanism,
            workload=self.workload,
            latency_model=self.latency_model,
        )

    def _extra(self, record: RunRecord) -> Tuple[Tuple[str, float], ...]:
        return ()


class Figure4Experiment(_SweepExperiment):
    """Running time of the double auction: centralised vs distributed (k = 1, 2, 3)."""

    figure = "fig4"

    def __init__(
        self,
        num_providers: int = 8,
        k_values: Sequence[int] = (1, 2, 3),
        n_values: Sequence[int] = (100, 200, 400, 600, 800, 1000),
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.num_providers = num_providers
        self.k_values = tuple(k_values)
        self.n_values = tuple(n_values)
        self.latency_model = latency_model if latency_model is not None else default_latency_model()
        self.seed = seed
        self.workload = DoubleAuctionWorkload(seed=seed)
        self.mechanism = DoubleAuction()
        self.sweep_spec = figure4_sweep(
            num_providers=num_providers, k_values=self.k_values, n_values=self.n_values, seed=seed
        )

    # -- single points -------------------------------------------------------------
    def executors_for_k(self, k: int) -> List[str]:
        """The minimum 2k+1 providers (paper: 3, 5, 8 out of 8) execute the protocol."""
        needed = 2 * k + 1
        if needed > self.num_providers:
            raise ValueError(f"k={k} needs {needed} providers, have {self.num_providers}")
        return default_provider_ids(needed)

    def run_centralized_point(self, num_users: int, instance: int = 0) -> ExperimentPoint:
        record = self._run_point(
            {"users": num_users, "runner": "centralized", "series": "centralised"}, instance
        )
        return record_to_point(self.figure, record)

    def run_distributed_point(self, num_users: int, k: int, instance: int = 0) -> ExperimentPoint:
        executors = len(self.executors_for_k(k))
        record = self._run_point(
            {
                "users": num_users,
                "config.k": k,
                "executors": executors,
                "series": f"distributed k={k}",
            },
            instance,
        )
        return record_to_point(self.figure, record, self._extra(record))

    def _extra(self, record: RunRecord) -> Tuple[Tuple[str, float], ...]:
        if record.runner == "centralized":
            return ()
        return (("executors", float(record.executors)),)

    # -- batches ----------------------------------------------------------------------
    def run_batch(self, num_users: int, k: int, instances: Sequence[int]) -> BatchSummary:
        """Many independent instances of one (n, k) point through a shared runner.

        This is the community-scenario shape: the same auction round repeated over
        fresh workload instances, with auctioneer setup amortised across rounds
        (see :class:`~repro.runtime.batch.BatchAuctionRunner`).
        """
        runner = BatchAuctionRunner(
            self.mechanism,
            self.workload,
            num_providers=self.num_providers,
            config=FrameworkConfig(k=k, parallel=False),
            executors=self.executors_for_k(k),
            latency_model=self.latency_model,
            seed=self.seed,
            measure_compute=True,
        )
        return runner.run_batch(num_users, instances)


class Figure5Experiment(_SweepExperiment):
    """Running time of the standard auction: parallelism p = 1 (centralised), 2, 4.

    ``engine`` selects the execution engine of the mechanism ("reference" or
    "vectorized"); results are bit-identical either way, only speed differs.
    """

    figure = "fig5"

    def __init__(
        self,
        num_providers: int = 8,
        p_values: Sequence[int] = (1, 2, 4),
        n_values: Sequence[int] = (25, 50, 75, 100, 125),
        epsilon: float = 0.25,
        engine: str = DEFAULT_ENGINE,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
    ) -> None:
        self.num_providers = num_providers
        self.p_values = tuple(p_values)
        self.n_values = tuple(n_values)
        self.epsilon = epsilon
        self.engine = engine
        self.latency_model = latency_model if latency_model is not None else default_latency_model()
        self.seed = seed
        self.workload = StandardAuctionWorkload(seed=seed)
        self.mechanism = resolve_engine(StandardAuction(epsilon=epsilon), engine)
        self.sweep_spec = figure5_sweep(
            num_providers=num_providers,
            p_values=self.p_values,
            n_values=self.n_values,
            epsilon=epsilon,
            engine=engine,
            seed=seed,
        )

    def k_for_parallelism(self, p: int) -> int:
        """The coalition bound giving parallelism ``p`` with m providers: p = ⌊m/(k+1)⌋."""
        if p < 1 or p > self.num_providers:
            raise ValueError(f"parallelism must be in [1, {self.num_providers}]")
        return self.num_providers // p - 1

    def provider_ids(self) -> List[str]:
        return default_provider_ids(self.num_providers)

    def run_centralized_point(self, num_users: int, instance: int = 0) -> ExperimentPoint:
        record = self._run_point(
            {"users": num_users, "runner": "centralized", "series": "p=1 (centralised)"},
            instance,
        )
        return record_to_point(self.figure, record)

    def run_distributed_point(self, num_users: int, p: int, instance: int = 0) -> ExperimentPoint:
        if p <= 1:
            return self.run_centralized_point(num_users, instance)
        k = self.k_for_parallelism(p)
        record = self._run_point(
            {
                "users": num_users,
                "config.k": k,
                "config.parallel": True,
                "config.num_groups": p,
                "series": f"p={p} (distributed, k={k})",
            },
            instance,
        )
        return record_to_point(self.figure, record, self._extra(record))

    def _extra(self, record: RunRecord) -> Tuple[Tuple[str, float], ...]:
        if record.runner == "centralized":
            return ()
        return (("k", float(record.k)),)

    def run_batch(self, num_users: int, p: int, instances: Sequence[int]) -> BatchSummary:
        """Many instances of one (n, p) point through a shared, engine-aware runner."""
        if p <= 1:
            config = None
        else:
            config = FrameworkConfig(
                k=self.k_for_parallelism(p), parallel=True, num_groups=p
            )
        runner = BatchAuctionRunner(
            self.mechanism,
            self.workload,
            num_providers=self.num_providers,
            config=config,
            latency_model=self.latency_model,
            seed=self.seed,
            measure_compute=True,
        )
        return runner.run_batch(num_users, instances)
