"""Benchmark harness reproducing the paper's evaluation (Figures 4 and 5).

The paper's metric is the end-to-end running time of an auction round, measured on a
real community-network testbed.  Offline, the harness reports the **critical-path
elapsed time** of the simulated execution: measured per-handler CPU time charged to
each provider's virtual clock, plus modelled message latencies (see DESIGN.md for why
this preserves the figures' shape).  Each experiment produces a list of
:class:`~repro.bench.harness.ExperimentPoint` rows — the same series the paper plots —
and :mod:`repro.bench.reporting` renders them as text tables.
"""

from repro.bench.harness import (
    ExperimentPoint,
    Figure4Experiment,
    Figure5Experiment,
    default_latency_model,
)
from repro.bench.reporting import format_points, format_series, points_to_series

__all__ = [
    "ExperimentPoint",
    "Figure4Experiment",
    "Figure5Experiment",
    "default_latency_model",
    "format_points",
    "format_series",
    "points_to_series",
]
