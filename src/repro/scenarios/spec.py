"""The declarative scenario specification tree.

A :class:`ScenarioSpec` is a frozen, pure-data description of one auction
scenario: which mechanism and execution engine to run, which workload draws the
bids, how many users/providers participate, the framework configuration, the
latency model (or a generated community topology), optional adversarial bidder
strategies, and the seeds.  Component choices are expressed as *string kinds*
resolved against the registries in :mod:`repro.scenarios.registry`, so a spec
can be written to (and read from) a JSON or TOML file without losing anything.

A :class:`SweepSpec` is a base scenario plus a grid: either explicit ``points``
(a list of dotted-path override mappings, run in order) or ``axes`` (an ordered
mapping of dotted paths to value lists, expanded as a cartesian product).  The
paper's Figure 4 and Figure 5 experiments are shipped as built-in sweep specs
(:mod:`repro.scenarios.builtin`).

Everything in this module is deliberately registry-agnostic: *kinds* are
validated when components are built (:mod:`repro.scenarios.runner`), not when
the spec is parsed, so user-registered kinds work transparently.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.config import FrameworkConfig

__all__ = [
    "SpecError",
    "ComponentSpec",
    "ConfigSpec",
    "BidderSpec",
    "ScenarioSpec",
    "SweepSpec",
    "RUNNERS",
    "spec_from_dict",
    "spec_to_dict",
    "sweep_from_dict",
    "sweep_to_dict",
    "spec_with_overrides",
    "parse_assignments",
    "apply_overrides",
]

#: The runner kinds a scenario may dispatch to.
RUNNERS = ("distributed", "centralized", "auction_run")


class SpecError(ValueError):
    """A scenario spec is malformed.  The message always names the offending path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)

    def __reduce__(self):
        # BaseException pickling replays __init__(*self.args), which would pass
        # the combined one-string message where (path, message) is expected —
        # sweep workers raising SpecError across the process boundary need this.
        return (SpecError, (self.path, self.message))


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Mapping[str, Any]:
    return dict(params) if params else {}


@dataclass(frozen=True)
class ComponentSpec:
    """A registry reference: a string ``kind`` plus keyword parameters.

    In spec files a component is either a bare string (``"double"``) or a table
    with a ``kind`` key whose remaining keys are the factory parameters
    (``{"kind": "standard", "epsilon": 0.5}``).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError("kind", "component kind must be a non-empty string")
        object.__setattr__(self, "params", _freeze_params(self.params))

    # -- serialization ------------------------------------------------------------
    @staticmethod
    def from_value(value: Any, path: str) -> "ComponentSpec":
        if isinstance(value, ComponentSpec):
            return value
        if isinstance(value, str):
            return ComponentSpec(value)
        if isinstance(value, Mapping):
            data = dict(value)
            kind = data.pop("kind", None)
            if not isinstance(kind, str) or not kind:
                raise SpecError(path, "expected a 'kind' string in the component table")
            return ComponentSpec(kind, data)
        raise SpecError(path, f"expected a string or a table, got {type(value).__name__}")

    def to_value(self) -> Any:
        if not self.params:
            return self.kind
        if "kind" in self.params:
            raise SpecError("params", "component parameters may not shadow 'kind'")
        return {"kind": self.kind, **self.params}


@dataclass(frozen=True)
class ConfigSpec:
    """Pure-data mirror of :class:`~repro.core.config.FrameworkConfig`."""

    k: int = 1
    parallel: bool = False
    num_groups: Optional[int] = None
    agreement_mode: str = "batched"
    use_common_coin: bool = True
    require_quorum: bool = True
    round_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.round_timeout is not None:
            object.__setattr__(self, "round_timeout", float(self.round_timeout))
        self.to_config()  # validate eagerly: a frozen spec is always runnable

    def to_config(self) -> FrameworkConfig:
        """Build the runtime configuration (re-validating the parameters)."""
        try:
            return FrameworkConfig(
                k=self.k,
                parallel=self.parallel,
                num_groups=self.num_groups,
                agreement_mode=self.agreement_mode,
                use_common_coin=self.use_common_coin,
                require_quorum=self.require_quorum,
                round_timeout=self.round_timeout,
            )
        except ValueError as exc:
            raise SpecError("config", str(exc)) from exc


@dataclass(frozen=True)
class BidderSpec:
    """One adversarial bidder strategy applied to a set of users.

    Users are selected by explicit ids (``users``) and/or by position in the
    generated workload (``indices``).  Each selected user receives its *own*
    strategy instance (strategies may carry per-user state).  Bidder specs only
    take effect with the ``auction_run`` runner, which is the only one that
    simulates real bidder nodes.
    """

    kind: str
    users: Tuple[str, ...] = ()
    indices: Tuple[int, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)

    #: Table keys with structural meaning; strategy parameters may not use them,
    #: or the dumped form could not be told apart from a selection on reload.
    RESERVED_KEYS = frozenset({"kind", "users", "indices"})

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError("bidders.kind", "bidder strategy kind must be a non-empty string")
        object.__setattr__(self, "users", tuple(self.users))
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))
        object.__setattr__(self, "params", _freeze_params(self.params))
        if not self.users and not self.indices:
            raise SpecError("bidders", "a bidder entry must select users via 'users' or 'indices'")
        if any(i < 0 for i in self.indices):
            raise SpecError("bidders.indices", "user indices must be non-negative")
        reserved = self.RESERVED_KEYS & set(self.params)
        if reserved:
            raise SpecError(
                "bidders",
                f"strategy parameters may not use the reserved keys {sorted(reserved)}",
            )

    @staticmethod
    def from_value(value: Any, path: str) -> "BidderSpec":
        if isinstance(value, BidderSpec):
            return value
        if not isinstance(value, Mapping):
            raise SpecError(path, f"expected a table, got {type(value).__name__}")
        data = dict(value)
        kind = data.pop("kind", None)
        if not isinstance(kind, str) or not kind:
            raise SpecError(path, "expected a 'kind' string in the bidder table")
        users = data.pop("users", ())
        indices = data.pop("indices", ())
        if isinstance(users, str):
            users = (users,)
        if isinstance(indices, int) and not isinstance(indices, bool):
            indices = (indices,)
        if not isinstance(users, (list, tuple)) or not all(
            isinstance(u, str) for u in users
        ):
            raise SpecError(f"{path}.users", "expected a list of user-id strings")
        if not isinstance(indices, (list, tuple)) or not all(
            isinstance(i, int) and not isinstance(i, bool) for i in indices
        ):
            raise SpecError(f"{path}.indices", "expected a list of integers")
        try:
            return BidderSpec(kind, tuple(users), tuple(indices), data)
        except SpecError as exc:
            # Replace the constructor's generic path with the precise one.
            raise SpecError(path, exc.message) from exc

    def to_value(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.users:
            data["users"] = list(self.users)
        if self.indices:
            data["indices"] = list(self.indices)
        data.update(self.params)
        return data


#: Mechanism kind -> the workload kind used when the spec omits ``workload``.
_DEFAULT_WORKLOADS = {
    "double": "double",
    "standard": "standard",
    "vcg": "standard",
    "greedy": "standard",
}


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one auction scenario.

    Attributes:
        name: free-form label, echoed into every :class:`RunRecord`.
        mechanism: registry reference for the allocation algorithm.
        engine: optional execution-engine override (``"reference"`` /
            ``"vectorized"``); ``None`` (the spec default) runs the library
            default engine (:data:`~repro.auctions.engine.DEFAULT_ENGINE`,
            the vectorized engine) — set ``"reference"`` to opt out.  Results
            are bit-identical whichever engine runs.
        workload: registry reference for the bid generator; defaults to the
            canonical workload of the mechanism kind.
        users / providers: scenario size.  ``providers`` is the number of
            *sellers* in the workload; ``executors`` (when set) restricts the
            protocol to the first ``executors`` of them (the paper's minimum
            2k+1 quorum in Figure 4).  Only the ``distributed`` runner
            subsets: ``centralized`` always sees every ask (and reports the
            full provider count), and ``auction_run`` rejects the field.
        runner: ``"distributed"`` (default), ``"centralized"`` (trusted
            baseline) or ``"auction_run"`` (full round with bidder nodes).
        config: the framework configuration for distributed runs.
        latency: registry reference for the latency model; the special kind
            ``"community"`` uses the LAN/WAN model of the generated topology.
        topology: optional community-topology reference; when set, providers
            are the topology's gateways.
        bidders: adversarial bidder strategies (``auction_run`` runner only).
        rounds: default round count for :meth:`Simulation.run_batch`.
        seed: master seed (workload, network jitter, mechanism randomness).
        deadline: bid-collection deadline for ``auction_run``.
        measure_compute: charge measured handler CPU time to the providers'
            virtual clocks (True matches the benchmark figures; False keeps
            elapsed time fully deterministic).
        series: optional label for grouping sweep results; a descriptive
            default is derived from the runner and configuration.
    """

    name: str = "scenario"
    mechanism: ComponentSpec = field(default_factory=lambda: ComponentSpec("double"))
    engine: Optional[str] = None
    workload: Optional[ComponentSpec] = None
    users: int = 50
    providers: int = 8
    executors: Optional[int] = None
    runner: str = "distributed"
    config: ConfigSpec = field(default_factory=ConfigSpec)
    latency: ComponentSpec = field(default_factory=lambda: ComponentSpec("zero"))
    topology: Optional[ComponentSpec] = None
    bidders: Tuple[BidderSpec, ...] = ()
    rounds: int = 1
    seed: int = 0
    deadline: float = 1.0
    measure_compute: bool = True
    series: Optional[str] = None

    def __post_init__(self) -> None:
        # Coerce convenience forms so ScenarioSpec(mechanism="standard", ...)
        # works directly, not only via spec_from_dict.
        for name in ("mechanism", "latency"):
            object.__setattr__(self, name, ComponentSpec.from_value(getattr(self, name), name))
        for name in ("workload", "topology"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, ComponentSpec.from_value(value, name))
        if isinstance(self.config, Mapping):
            object.__setattr__(self, "config", _config_from_dict(self.config, "config"))
        object.__setattr__(
            self,
            "bidders",
            tuple(
                BidderSpec.from_value(bidder, f"bidders[{i}]")
                for i, bidder in enumerate(self.bidders)
            ),
        )
        if self.users < 1:
            raise SpecError("users", "need at least one user")
        if self.providers < 1:
            raise SpecError("providers", "need at least one provider")
        if self.executors is not None and not 1 <= self.executors <= self.providers:
            raise SpecError(
                "executors",
                f"executors must be in [1, providers={self.providers}], got {self.executors}",
            )
        if self.runner not in RUNNERS:
            raise SpecError(
                "runner", f"unknown runner {self.runner!r}; expected one of {', '.join(RUNNERS)}"
            )
        if self.rounds < 0:
            raise SpecError("rounds", "rounds must be non-negative")
        if self.deadline <= 0:
            raise SpecError("deadline", "deadline must be positive")
        if self.engine is not None:
            from repro.auctions.engine import ENGINES

            if self.engine not in ENGINES:
                raise SpecError(
                    "engine",
                    f"unknown engine {self.engine!r}; expected one of {', '.join(ENGINES)}",
                )
        if self.bidders and self.runner != "auction_run":
            raise SpecError(
                "bidders",
                "bidder strategies require the 'auction_run' runner "
                f"(got runner={self.runner!r})",
            )
        if self.latency.kind == "community" and self.topology is None:
            raise SpecError("latency", "the 'community' latency model requires a topology")

    # -- derived defaults ---------------------------------------------------------
    def effective_workload(self) -> ComponentSpec:
        """The workload to use: the explicit one, or the mechanism's canonical one."""
        if self.workload is not None:
            return self.workload
        kind = _DEFAULT_WORKLOADS.get(self.mechanism.kind)
        if kind is None:
            raise SpecError(
                "workload",
                f"no default workload for mechanism kind {self.mechanism.kind!r}; "
                "set 'workload' explicitly",
            )
        return ComponentSpec(kind)

    def default_series(self) -> str:
        """The series label used when ``series`` is not set."""
        if self.series is not None:
            return self.series
        if self.runner == "centralized":
            return "centralised"
        config = self.config
        prefix = "auction-run" if self.runner == "auction_run" else "distributed"
        if config.parallel:
            groups = config.num_groups
            label = f"p={groups}" if groups is not None else "p=max"
            return f"{label} ({prefix}, k={config.k})"
        return f"{prefix} k={config.k}"


# ---------------------------------------------------------------------- parsing --
_SCENARIO_FIELDS = {f.name for f in fields(ScenarioSpec)}
_CONFIG_FIELDS = {f.name for f in fields(ConfigSpec)}


def _require(value: Any, types, path: str, label: str) -> Any:
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        raise SpecError(path, f"expected {label}, got a boolean")
    if not isinstance(value, types):
        raise SpecError(path, f"expected {label}, got {type(value).__name__}")
    return value


def _config_from_dict(data: Any, path: str) -> ConfigSpec:
    if isinstance(data, ConfigSpec):
        return data
    if not isinstance(data, Mapping):
        raise SpecError(path, f"expected a table, got {type(data).__name__}")
    unknown = set(data) - _CONFIG_FIELDS
    if unknown:
        raise SpecError(
            f"{path}.{sorted(unknown)[0]}",
            f"unknown configuration key; expected one of {', '.join(sorted(_CONFIG_FIELDS))}",
        )
    try:
        return ConfigSpec(**data)
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(path, str(exc)) from exc


def spec_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Parse a scenario spec from a plain (JSON/TOML-shaped) mapping.

    Raises :class:`SpecError` with a dotted path to the offending key on any
    unknown key, wrong type, or invalid value.
    """
    if not isinstance(data, Mapping):
        raise SpecError("", f"expected a table at the top level, got {type(data).__name__}")
    data = dict(data)
    unknown = set(data) - _SCENARIO_FIELDS
    if unknown:
        raise SpecError(
            sorted(unknown)[0],
            f"unknown scenario key; expected one of {', '.join(sorted(_SCENARIO_FIELDS))}",
        )
    kwargs: Dict[str, Any] = {}
    if "name" in data:
        kwargs["name"] = _require(data["name"], str, "name", "a string")
    if "mechanism" in data:
        kwargs["mechanism"] = ComponentSpec.from_value(data["mechanism"], "mechanism")
    if "engine" in data and data["engine"] is not None:
        kwargs["engine"] = _require(data["engine"], str, "engine", "a string")
    if "workload" in data and data["workload"] is not None:
        kwargs["workload"] = ComponentSpec.from_value(data["workload"], "workload")
    for key in ("users", "providers", "executors", "rounds", "seed"):
        if key in data and data[key] is not None:
            kwargs[key] = _require(data[key], int, key, "an integer")
    if "runner" in data:
        kwargs["runner"] = _require(data["runner"], str, "runner", "a string")
    if "config" in data:
        kwargs["config"] = _config_from_dict(data["config"], "config")
    if "latency" in data:
        kwargs["latency"] = ComponentSpec.from_value(data["latency"], "latency")
    if "topology" in data and data["topology"] is not None:
        kwargs["topology"] = ComponentSpec.from_value(data["topology"], "topology")
    if "bidders" in data:
        entries = _require(data["bidders"], (list, tuple), "bidders", "a list")
        kwargs["bidders"] = tuple(
            BidderSpec.from_value(entry, f"bidders[{i}]") for i, entry in enumerate(entries)
        )
    if "deadline" in data:
        kwargs["deadline"] = float(_require(data["deadline"], (int, float), "deadline", "a number"))
    if "measure_compute" in data:
        kwargs["measure_compute"] = _require(
            data["measure_compute"], bool, "measure_compute", "a boolean"
        )
    if "series" in data and data["series"] is not None:
        kwargs["series"] = _require(data["series"], str, "series", "a string")
    return ScenarioSpec(**kwargs)


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Serialize a spec to a plain mapping (no ``None`` values, TOML-safe)."""
    data: Dict[str, Any] = {
        "name": spec.name,
        "mechanism": spec.mechanism.to_value(),
    }
    if spec.engine is not None:
        data["engine"] = spec.engine
    if spec.workload is not None:
        data["workload"] = spec.workload.to_value()
    data["users"] = spec.users
    data["providers"] = spec.providers
    if spec.executors is not None:
        data["executors"] = spec.executors
    data["runner"] = spec.runner
    config: Dict[str, Any] = {
        "k": spec.config.k,
        "parallel": spec.config.parallel,
        "agreement_mode": spec.config.agreement_mode,
        "use_common_coin": spec.config.use_common_coin,
        "require_quorum": spec.config.require_quorum,
    }
    if spec.config.num_groups is not None:
        config["num_groups"] = spec.config.num_groups
    if spec.config.round_timeout is not None:
        config["round_timeout"] = spec.config.round_timeout
    data["config"] = config
    data["latency"] = spec.latency.to_value()
    if spec.topology is not None:
        data["topology"] = spec.topology.to_value()
    if spec.bidders:
        data["bidders"] = [bidder.to_value() for bidder in spec.bidders]
    data["rounds"] = spec.rounds
    data["seed"] = spec.seed
    data["deadline"] = spec.deadline
    data["measure_compute"] = spec.measure_compute
    if spec.series is not None:
        data["series"] = spec.series
    return data


# --------------------------------------------------------------------- overrides --
def parse_assignments(assignments: Iterable[str]) -> Dict[str, Any]:
    """Parse ``--set key=value`` strings into an override mapping.

    Values are parsed as JSON where possible (``k=2``, ``parallel=true``,
    ``epsilon=0.5``, ``users='["u0000"]'``) and fall back to bare strings
    (``mechanism=standard``).
    """
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        key = key.strip()
        if not sep or not key:
            raise SpecError("--set", f"expected key=value, got {assignment!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def apply_overrides(data: Dict[str, Any], overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Apply dotted-path overrides to a spec mapping, returning a new mapping.

    ``{"config.k": 2}`` sets ``data["config"]["k"] = 2``, creating intermediate
    tables as needed.  A path that traverses a non-table value is an error.
    Component shorthands are normalised first, so ``mechanism.epsilon=0.5``
    works even when the spec says just ``mechanism = "standard"``.
    """
    result = json.loads(json.dumps(data)) if data else {}
    for path, value in overrides.items():
        parts = path.split(".")
        cursor = result
        for i, part in enumerate(parts[:-1]):
            node = cursor.get(part)
            if isinstance(node, str) and part in ("mechanism", "workload", "latency", "topology"):
                node = {"kind": node}
                cursor[part] = node
            elif node is None:
                node = {}
                cursor[part] = node
            elif not isinstance(node, dict):
                prefix = ".".join(parts[: i + 1])
                raise SpecError(prefix, f"cannot override inside non-table value {node!r}")
            cursor = node
        cursor[parts[-1]] = value
    return result


def spec_with_overrides(spec: ScenarioSpec, overrides: Mapping[str, Any]) -> ScenarioSpec:
    """A copy of ``spec`` with dotted-path overrides applied (re-validated)."""
    if not overrides:
        return spec
    return spec_from_dict(apply_overrides(spec_to_dict(spec), overrides))


# ------------------------------------------------------------------------- sweeps --
@dataclass(frozen=True)
class SweepSpec:
    """A grid of scenarios: one base spec plus per-point overrides.

    Exactly one of ``points`` / ``axes`` may be non-empty (an empty sweep runs
    the base spec once).  ``points`` is an explicit, ordered list of override
    mappings (dotted paths); ``axes`` is an ordered mapping of dotted paths to
    value lists, expanded as a cartesian product with the *first* axis varying
    slowest.
    """

    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    name: str = "sweep"
    points: Tuple[Mapping[str, Any], ...] = ()
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(dict(p) for p in self.points))
        object.__setattr__(
            self, "axes", tuple((str(k), tuple(v)) for k, v in self.axes)
        )
        if self.points and self.axes:
            raise SpecError("points", "a sweep may define 'points' or 'axes', not both")

    def expand(self) -> List[Dict[str, Any]]:
        """The ordered list of per-point override mappings."""
        if self.points:
            return [dict(point) for point in self.points]
        if self.axes:
            keys = [key for key, _ in self.axes]
            products = itertools.product(*(values for _, values in self.axes))
            return [dict(zip(keys, combo)) for combo in products]
        return [{}]

    def scenarios(self) -> List[ScenarioSpec]:
        """One fully-validated :class:`ScenarioSpec` per grid point, in order."""
        return [spec_with_overrides(self.base, overrides) for overrides in self.expand()]

    def with_base_overrides(self, overrides: Mapping[str, Any]) -> "SweepSpec":
        """This sweep with dotted-path overrides applied to its base spec."""
        if not overrides:
            return self
        return SweepSpec(
            base=spec_with_overrides(self.base, overrides),
            name=self.name,
            points=self.points,
            axes=self.axes,
        )


_SWEEP_KEYS = {"name", "base", "points", "axes"}


def sweep_from_dict(data: Mapping[str, Any]) -> SweepSpec:
    """Parse a sweep spec from a plain mapping (see :func:`spec_from_dict`)."""
    if not isinstance(data, Mapping):
        raise SpecError("", f"expected a table at the top level, got {type(data).__name__}")
    unknown = set(data) - _SWEEP_KEYS
    if unknown:
        raise SpecError(
            sorted(unknown)[0],
            f"unknown sweep key; expected one of {', '.join(sorted(_SWEEP_KEYS))}",
        )
    name = _require(data.get("name", "sweep"), str, "name", "a string")
    base = spec_from_dict(_require(data.get("base", {}), Mapping, "base", "a table"))
    points_raw = _require(data.get("points", []), (list, tuple), "points", "a list")
    points = []
    for i, point in enumerate(points_raw):
        points.append(dict(_require(point, Mapping, f"points[{i}]", "a table")))
    axes_raw = _require(data.get("axes", {}), Mapping, "axes", "a table")
    axes = []
    for key, values in axes_raw.items():
        values = _require(values, (list, tuple), f"axes.{key}", "a list of values")
        if not values:
            raise SpecError(f"axes.{key}", "axis value list may not be empty")
        axes.append((key, tuple(values)))
    try:
        return SweepSpec(base=base, name=name, points=tuple(points), axes=tuple(axes))
    except SpecError:
        raise


def sweep_to_dict(sweep: SweepSpec) -> Dict[str, Any]:
    """Serialize a sweep spec to a plain mapping."""
    data: Dict[str, Any] = {"name": sweep.name, "base": spec_to_dict(sweep.base)}
    if sweep.points:
        data["points"] = [dict(point) for point in sweep.points]
    if sweep.axes:
        data["axes"] = {key: list(values) for key, values in sweep.axes}
    return data
