"""The columnar results backend: typed NumPy chunks, memory-mapped on read.

JSONL pays O(records) text parsing before a single aggregate can be computed;
at the 10^5–10^6-round sweeps the ROADMAP targets that dominates analysis
time.  This backend stores the same journal as binary *chunks* of NumPy
structured arrays so that scanning is a buffer cast, not a parse:

* **file layout** — the :data:`~repro.scenarios.store.COLUMNAR_MAGIC` bytes,
  one manifest block, then zero or more sealed chunks, each block
  length-prefixed::

      magic   := b"RPACOL1\\n"
      file    := magic manifest chunk*
      manifest:= b"MANI" u32(len) json      # the same manifest dict jsonl has
      chunk   := b"CHNK" u32(len) json(header) payload

  The chunk header carries ``rows``, the ``schema``, the ``strings`` this
  chunk adds to the file's dictionary, and ``payload_bytes``.  The payload is
  one C-contiguous structured array — ``point`` and ``instance`` as little-
  endian int64 plus one field per scalar record column — followed, per
  ``json``-kind column, by an int64 length array and a canonical-JSON blob.

* **schema** — inferred once, from the first appended record's ``to_dict()``:
  bool, int, float, str (nullable) map to fixed-width columns; anything
  structured (lists, mappings — e.g. a resilience record's ``coalition`` and
  ``member_gains``) is a ``json`` column.  Records must be type-stable; a
  field changing type mid-stream is a spec error naming the field (use the
  jsonl backend for heterogeneous streams).

* **string interning** — str columns store int32 indices into a per-file
  dictionary (-1 encodes ``None``).  The dictionary grows in first-seen
  order — a deterministic function of the record stream, never of hash
  iteration — and each chunk header lists only the strings it adds, so the
  reader reconstructs the dictionary incrementally.

* **append / crash tolerance** — ``append_raw`` is an O(1) list append;
  every :data:`~ColumnarStoreBackend.CHUNK_ROWS` rows (and on flush/close)
  the buffer is *sealed*: encoded, length-prefixed and written in one
  flushed write.  A crash mid-seal leaves a partial block after the last
  sealed chunk; readers stop at the last complete chunk and resume truncates
  the torn tail — exactly the jsonl torn-line semantics, per chunk.

* **read** — the file is memory-mapped; each chunk's scalar columns are
  ``np.frombuffer`` views into the map.  ``summary()`` reduces those views
  column-at-a-time into :class:`~repro.scenarios.aggregate.StreamingSummary`
  and never materialises a row, a record, or the record list.

Round-trip guarantee: rehydrated records are byte-equal to the jsonl
backend's on canonical JSON — int64/float64 store Python ints and floats
exactly, strings return from the dictionary unchanged, and structured values
round-trip through ``json`` — which the differential suite pins.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.scenarios.aggregate import StreamingSummary
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import SpecError
from repro.scenarios.store import (
    COLUMNAR_MAGIC,
    STORE_BACKENDS,
    RawRow,
    StoreBackend,
)

__all__ = ["ColumnarStoreBackend"]

_MANIFEST_MARKER = b"MANI"
_CHUNK_MARKER = b"CHNK"
_LENGTH = struct.Struct("<I")

#: NumPy dtype per scalar schema kind (str columns hold dictionary indices).
_SCALAR_DTYPES = {"int": "<i8", "float": "<f8", "bool": "|b1", "str": "<i4"}

#: One column of the inferred schema: (record-dict key, kind).
Column = Tuple[str, str]


class ColumnarStoreBackend(StoreBackend):
    """Results journal as sealed chunks of typed NumPy structured arrays."""

    kind = "columnar"

    #: Rows buffered per chunk.  Larger chunks amortise the header better;
    #: smaller ones bound the data a crash can lose.  512 rows keeps worst-
    #: case loss in line with one parallel worker chunk's worth of rounds.
    CHUNK_ROWS = 512

    def __init__(self, path: Union[str, os.PathLike], record_type=RunRecord) -> None:
        super().__init__(path, record_type)
        self._handle = None
        self._schema: Optional[Tuple[Column, ...]] = None
        self._strings: List[str] = []
        self._string_ids: Dict[str, int] = {}
        self._fresh_strings: List[str] = []
        self._pending: List[RawRow] = []

    # -- primitives ------------------------------------------------------------------
    def _create(self, manifest: Dict[str, Any]) -> None:
        self._handle = open(self.path, "wb")
        block = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
        self._handle.write(
            COLUMNAR_MAGIC + _MANIFEST_MARKER + _LENGTH.pack(len(block)) + block
        )
        self._handle.flush()

    def _open_resume(self, fingerprint: str) -> Tuple[Dict[str, Any], List[RawRow]]:
        data = self._map()
        try:
            manifest, chunks, valid_end = self._scan(data)
            manifest = self._validate_manifest(manifest, fingerprint)
            schema, strings, string_ids, rows = self._collect(data, chunks)
            size = len(data)
        finally:
            self._unmap(data)
        self._schema = schema
        self._strings = strings
        self._string_ids = string_ids
        if valid_end < size:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)  # torn chunk: crash mid-seal
        self._handle = open(self.path, "ab")
        return manifest, rows

    def append_raw(self, point: int, instance: int, row: Dict[str, Any]) -> None:
        if self._handle is None:
            raise SpecError(self.path, "results journal is not open; call begin() first")
        if self._schema is None:
            self._schema = self._infer_schema(row)
        self._pending.append((int(point), int(instance), row))
        if len(self._pending) >= self.CHUNK_ROWS:
            self._seal()

    def read_raw(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], List[RawRow]]:
        self.flush()
        data = self._map()
        try:
            manifest, chunks, _valid_end = self._scan(data)
            manifest = self._validate_manifest(manifest, expected_fingerprint)
            _schema, _strings, _ids, rows = self._collect(data, chunks)
        finally:
            self._unmap(data)
        return manifest, rows

    def summary(self) -> Dict[str, Any]:
        """Reduce the memory-mapped chunks column-at-a-time (no rows built)."""
        self.flush()
        summary = StreamingSummary()
        data = self._map()
        try:
            manifest, chunks, _valid_end = self._scan(data)
            manifest = self._validate_manifest(manifest, None)
            for header, payload_start in chunks:
                self._reduce_chunk(data, header, payload_start, summary)
            payload = self._summary_payload(manifest, summary)
        finally:
            self._unmap(data)
        return payload

    def _reduce_chunk(
        self, data, header: Dict[str, Any], payload_start: int, summary: StreamingSummary
    ) -> None:
        # A helper so the frombuffer views are function-local: every exported
        # pointer into the memory map must be gone before the map is closed.
        schema = _header_schema(header)
        rows = int(header["rows"])
        array = np.frombuffer(
            data, dtype=_chunk_dtype(schema), count=rows, offset=payload_start
        )
        summary.add_records(rows)
        for index, (name, column_kind) in enumerate(schema):
            if column_kind in ("int", "float"):
                summary.add_column(name, array[f"c{index}"].astype(np.float64))
            elif column_kind == "bool":
                summary.add_flags(name, np.asarray(array[f"c{index}"], dtype=np.uint8))

    def flush(self) -> None:
        if self._handle is not None:
            self._seal()

    def close(self) -> None:
        if self._handle is not None:
            self._seal()
            self._handle.close()
            self._handle = None

    # -- write path ------------------------------------------------------------------
    def _infer_schema(self, row: Dict[str, Any]) -> Tuple[Column, ...]:
        schema: List[Column] = []
        for name, value in row.items():
            if isinstance(value, bool):
                schema.append((name, "bool"))
            elif isinstance(value, int):
                schema.append((name, "int"))
            elif isinstance(value, float):
                schema.append((name, "float"))
            elif value is None or isinstance(value, str):
                schema.append((name, "str"))
            else:
                schema.append((name, "json"))
        return tuple(schema)

    def _seal(self) -> None:
        """Encode and write the pending rows as one flushed chunk."""
        pending, self._pending = self._pending, []
        if not pending or self._schema is None:
            return
        schema = self._schema
        self._fresh_strings = []
        array = np.zeros(len(pending), dtype=_chunk_dtype(schema))
        array["point"] = [point for point, _instance, _row in pending]
        array["instance"] = [instance for _point, instance, _row in pending]
        json_blobs: List[bytes] = []
        for index, (name, column_kind) in enumerate(schema):
            values = [self._field(row, name) for _point, _instance, row in pending]
            if column_kind == "json":
                encoded = [
                    json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")
                    for value in values
                ]
                lengths = np.asarray([len(blob) for blob in encoded], dtype="<i8")
                json_blobs.append(lengths.tobytes() + b"".join(encoded))
            else:
                array[f"c{index}"] = [
                    self._encode_scalar(name, column_kind, value) for value in values
                ]
        payload = array.tobytes() + b"".join(json_blobs)
        header = {
            "rows": len(pending),
            "schema": [list(column) for column in schema],
            "strings": self._fresh_strings,
            "payload_bytes": len(payload),
        }
        block = json.dumps(header, separators=(",", ":")).encode("utf-8")
        self._handle.write(_CHUNK_MARKER + _LENGTH.pack(len(block)) + block + payload)
        self._handle.flush()
        self._fresh_strings = []

    def _field(self, row: Dict[str, Any], name: str) -> Any:
        try:
            return row[name]
        except KeyError:
            raise SpecError(
                self.path,
                f"record is missing field {name!r} present in this journal's "
                f"schema; the columnar backend needs shape-stable records — "
                f"use the jsonl backend for heterogeneous streams",
            ) from None

    def _encode_scalar(self, name: str, column_kind: str, value: Any) -> Any:
        if column_kind == "bool":
            if isinstance(value, bool):
                return value
        elif column_kind == "int":
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        elif column_kind == "float":
            if isinstance(value, float):
                return value
        elif column_kind == "str":
            if value is None:
                return -1
            if isinstance(value, str):
                return self._intern(value)
        raise SpecError(
            self.path,
            f"record field {name!r} is not type-stable (journal schema says "
            f"{column_kind}, record holds {type(value).__name__}); the columnar "
            f"backend needs type-stable records — use the jsonl backend for "
            f"heterogeneous streams",
        )

    def _intern(self, value: str) -> int:
        index = self._string_ids.get(value)
        if index is None:
            index = len(self._strings)
            self._string_ids[value] = index
            self._strings.append(value)
            self._fresh_strings.append(value)
        return index

    # -- read path -------------------------------------------------------------------
    def _map(self):
        try:
            with open(self.path, "rb") as handle:
                try:
                    return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError:
                    return b""  # empty files cannot be mapped
        except FileNotFoundError:
            raise SpecError(self.path, "results journal not found") from None
        except OSError as exc:
            raise SpecError(self.path, f"cannot read results journal: {exc}") from exc

    @staticmethod
    def _unmap(data) -> None:
        if isinstance(data, mmap.mmap):
            data.close()

    def _scan(self, data) -> Tuple[Any, List[Tuple[Dict[str, Any], int]], int]:
        """Frame the file: (manifest, [(chunk header, payload offset)], valid end).

        Any unparsable trailing region — short block, bad marker, truncated
        payload — is a torn tail from a crash mid-seal: framing stops at the
        last complete chunk and ``valid_end`` marks the repair point.
        """
        if data[: len(COLUMNAR_MAGIC)] != COLUMNAR_MAGIC:
            raise SpecError(
                self.path, "not a columnar results journal (bad magic bytes)"
            )
        manifest, offset = self._block(data, len(COLUMNAR_MAGIC), _MANIFEST_MARKER)
        if manifest is None:
            raise SpecError(
                self.path, "corrupt results journal: truncated manifest block"
            )
        chunks: List[Tuple[Dict[str, Any], int]] = []
        valid_end = offset
        while offset < len(data):
            header, payload_start = self._block(data, offset, _CHUNK_MARKER)
            if not isinstance(header, dict):
                break  # torn tail: crash mid-seal
            try:
                rows = int(header["rows"])
                payload_bytes = int(header["payload_bytes"])
                schema = _header_schema(header)
            except (KeyError, TypeError, ValueError):
                break
            if rows < 0 or payload_bytes < 0 or payload_start + payload_bytes > len(data):
                break
            if payload_bytes < _chunk_dtype(schema).itemsize * rows:
                break
            chunks.append((header, payload_start))
            offset = payload_start + payload_bytes
            valid_end = offset
        return manifest, chunks, valid_end

    @staticmethod
    def _block(data, offset: int, marker: bytes) -> Tuple[Any, int]:
        """Parse one length-prefixed JSON block; (None, offset) when torn."""
        header_start = offset + len(marker) + _LENGTH.size
        if data[offset : offset + len(marker)] != marker or header_start > len(data):
            return None, offset
        (length,) = _LENGTH.unpack(data[offset + len(marker) : header_start])
        if header_start + length > len(data):
            return None, offset
        try:
            parsed = json.loads(bytes(data[header_start : header_start + length]))
        except ValueError:
            return None, offset
        return parsed, header_start + length

    def _collect(
        self, data, chunks: List[Tuple[Dict[str, Any], int]]
    ) -> Tuple[Optional[Tuple[Column, ...]], List[str], Dict[str, int], List[RawRow]]:
        """Decode every chunk: the file schema, dictionary and raw rows."""
        schema: Optional[Tuple[Column, ...]] = None
        strings: List[str] = []
        string_ids: Dict[str, int] = {}
        rows: List[RawRow] = []
        for header, payload_start in chunks:
            for value in header.get("strings", ()):
                string_ids[str(value)] = len(strings)
                strings.append(str(value))
            chunk_schema = _header_schema(header)
            if schema is None:
                schema = chunk_schema
            elif chunk_schema != schema:
                raise SpecError(
                    self.path, "corrupt results journal: chunk schema mismatch"
                )
            rows.extend(self._decode_chunk(data, header, payload_start, strings))
        return schema, strings, string_ids, rows

    def _decode_chunk(
        self, data, header: Dict[str, Any], payload_start: int, strings: List[str]
    ) -> List[RawRow]:
        schema = _header_schema(header)
        count = int(header["rows"])
        array = np.frombuffer(
            data, dtype=_chunk_dtype(schema), count=count, offset=payload_start
        )
        offset = payload_start + array.nbytes
        columns: Dict[str, List[Any]] = {}
        for index, (name, column_kind) in enumerate(schema):
            if column_kind == "json":
                lengths = np.frombuffer(data, dtype="<i8", count=count, offset=offset)
                offset += lengths.nbytes
                values: List[Any] = []
                for length in lengths.tolist():
                    blob = bytes(data[offset : offset + length])
                    offset += length
                    try:
                        values.append(json.loads(blob))
                    except ValueError:
                        raise SpecError(
                            self.path,
                            f"corrupt results journal: malformed json column {name!r}",
                        ) from None
                columns[name] = values
            elif column_kind == "str":
                indices = array[f"c{index}"].tolist()
                if indices and max(indices) >= len(strings):
                    raise SpecError(
                        self.path,
                        "corrupt results journal: string index outside the dictionary",
                    )
                columns[name] = [
                    None if value < 0 else strings[value] for value in indices
                ]
            else:
                columns[name] = array[f"c{index}"].tolist()
        points = array["point"].tolist()
        instances = array["instance"].tolist()
        return [
            (points[row], instances[row], {name: columns[name][row] for name, _ in schema})
            for row in range(count)
        ]


def _header_schema(header: Dict[str, Any]) -> Tuple[Column, ...]:
    return tuple((str(name), str(column_kind)) for name, column_kind in header["schema"])


def _chunk_dtype(schema: Tuple[Column, ...]) -> np.dtype:
    """The structured dtype of a chunk's scalar block.

    Record columns are numbered ``c<i>`` (their real names live in the
    header's schema) so a record field named ``point`` can never collide
    with the round-key fields.
    """
    fields = [("point", "<i8"), ("instance", "<i8")]
    for index, (_name, column_kind) in enumerate(schema):
        if column_kind != "json":
            fields.append((f"c{index}", _SCALAR_DTYPES[column_kind]))
    return np.dtype(fields)


STORE_BACKENDS.register("columnar", ColumnarStoreBackend)
