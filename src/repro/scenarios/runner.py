"""Execute one :class:`~repro.scenarios.spec.ScenarioSpec` and record the result.

:func:`run_scenario` is the single-point executor behind the
:class:`~repro.scenarios.simulation.Simulation` facade, the sweep engine and
(indirectly) the figure experiments: it resolves the spec's registry references
into live components, dispatches to the existing runners
(:class:`~repro.core.framework.DistributedAuctioneer`,
:class:`~repro.core.framework.CentralizedAuctioneer`,
:class:`~repro.runtime.auction_run.AuctionRun`) and normalises whatever they
report into one :class:`RunRecord` schema.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.auctions.base import AllocationAlgorithm, BidVector
from repro.auctions.engine import DEFAULT_ENGINE, engine_name, resolve_engine
from repro.auctions.engine.pivot import shared_solve_cache
from repro.community.workload import default_provider_ids
from repro.core.framework import CentralizedAuctioneer, DistributedAuctioneer
from repro.core.outcome import Outcome
from repro.net.latency import LatencyModel
from repro.obs.context import current_observation
from repro.runtime.auction_run import AuctionRun
from repro.scenarios.registry import (
    BIDDER_STRATEGIES,
    LATENCIES,
    MECHANISMS,
    TOPOLOGIES,
    WORKLOADS,
)
from repro.scenarios.spec import ComponentSpec, ScenarioSpec, SpecError

__all__ = [
    "RunRecord",
    "build_mechanism",
    "build_workload",
    "build_latency_model",
    "run_scenario",
]


@dataclass(frozen=True)
class RunRecord:
    """The uniform result schema of every scenario execution.

    One record per round, whatever the runner: scenario identity and shape,
    protocol cost (time / messages / bytes) and the economic outcome.
    :meth:`to_dict` renders the record JSON-ready.  Figure-specific
    annotations (the executor count of a Figure 4 point, the ``k`` of a
    Figure 5 point) live on :class:`~repro.bench.harness.ExperimentPoint`,
    which the harness derives from these records via ``record_to_point``.
    """

    name: str
    series: str
    runner: str
    mechanism: str
    engine: Optional[str]
    users: int
    providers: int
    executors: int
    k: int
    parallel: bool
    instance: int
    seed: int
    elapsed_seconds: float
    messages: int
    bytes_transferred: int
    aborted: bool
    winners: int
    total_paid: float
    total_received: float
    # True when some provider closed an agreement round on a timeout quorum
    # (FrameworkConfig.round_timeout).  Serialized only when set, so journals
    # of ordinary runs — and their fingerprints — are byte-identical to
    # records written before the field existed.
    degraded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "series": self.series,
            "runner": self.runner,
            "mechanism": self.mechanism,
            "engine": self.engine,
            "users": self.users,
            "providers": self.providers,
            "executors": self.executors,
            "k": self.k,
            "parallel": self.parallel,
            "instance": self.instance,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
            "messages": self.messages,
            "bytes": self.bytes_transferred,
            "aborted": self.aborted,
            "winners": self.winners,
            "total_paid": self.total_paid,
            "total_received": self.total_received,
        }
        if self.degraded:
            data["degraded"] = True
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunRecord":
        """Rehydrate a record from its :meth:`to_dict` form (results journals).

        The round trip is lossless: every field is a JSON scalar and ``json``
        round-trips floats exactly, so ``from_dict(to_dict(r)) == r``.
        """
        return RunRecord(
            name=data["name"],
            series=data["series"],
            runner=data["runner"],
            mechanism=data["mechanism"],
            engine=data["engine"],
            users=data["users"],
            providers=data["providers"],
            executors=data["executors"],
            k=data["k"],
            parallel=data["parallel"],
            instance=data["instance"],
            seed=data["seed"],
            elapsed_seconds=data["elapsed_seconds"],
            messages=data["messages"],
            bytes_transferred=data["bytes"],
            aborted=data["aborted"],
            winners=data["winners"],
            total_paid=data["total_paid"],
            total_received=data["total_received"],
            degraded=data.get("degraded", False),
        )


# ------------------------------------------------------------------- components --
def build_mechanism(spec: ScenarioSpec) -> AllocationAlgorithm:
    """The spec's allocation algorithm, re-targeted at the requested engine.

    ``spec.engine=None`` means "the library default"
    (:data:`~repro.auctions.engine.DEFAULT_ENGINE`, currently
    ``"vectorized"``), not "whatever the registry built": a plain
    ``mechanism="standard"`` spec runs the fast engine.  ``engine="reference"``
    is the escape hatch; non-standard mechanisms pass through either way.
    Results are engine-independent by the equivalence contract.
    """
    mechanism = MECHANISMS.create(spec.mechanism, "mechanism")
    return resolve_engine(mechanism, spec.engine or DEFAULT_ENGINE)


def build_workload(spec: ScenarioSpec):
    """The spec's workload generator, seeded with the scenario seed."""
    return WORKLOADS.create(spec.effective_workload(), "workload", seed=spec.seed)


def build_topology(spec: ScenarioSpec):
    """The generated community network, or ``None`` for flat scenarios."""
    if spec.topology is None:
        return None
    return TOPOLOGIES.create(
        spec.topology,
        "topology",
        seed=spec.seed,
        num_gateways=spec.providers,
        num_nodes=max(spec.users + spec.providers, 20),
    )


def build_latency_model(spec: ScenarioSpec, topology=None) -> LatencyModel:
    """The spec's latency model; ``"community"`` derives it from the topology."""
    if spec.latency.kind == "community":
        if topology is None:
            topology = build_topology(spec)
        if topology is None:
            raise SpecError("latency", "the 'community' latency model requires a topology")
        return topology.latency_model(**dict(spec.latency.params))
    return LATENCIES.create(spec.latency, "latency")


def _bidder_strategies(spec: ScenarioSpec, user_ids) -> Dict[str, Any]:
    strategies: Dict[str, Any] = {}
    for i, bidder in enumerate(spec.bidders):
        path = f"bidders[{i}]"
        targets: List[str] = list(bidder.users)
        for index in bidder.indices:
            if index >= len(user_ids):
                raise SpecError(
                    f"{path}.indices",
                    f"user index {index} out of range for {len(user_ids)} users",
                )
            targets.append(user_ids[index])
        known = set(user_ids)
        for user_id in targets:
            if user_id not in known:
                raise SpecError(
                    f"{path}.users", f"unknown user id {user_id!r} in this workload"
                )
            if user_id in strategies:
                raise SpecError(
                    path,
                    f"user {user_id!r} is selected by more than one bidder entry; "
                    "each user may carry at most one strategy",
                )
            # One instance per user: strategies may carry per-provider state.
            strategies[user_id] = BIDDER_STRATEGIES.create(
                ComponentSpec(bidder.kind, bidder.params), path
            )
    return strategies


# --------------------------------------------------------------------- execution --
def run_scenario(
    spec: ScenarioSpec,
    instance: int = 0,
    *,
    mechanism: Optional[AllocationAlgorithm] = None,
    workload=None,
    latency_model: Optional[LatencyModel] = None,
    topology=None,
) -> RunRecord:
    """Run one round of the scenario and return its :class:`RunRecord`.

    The keyword overrides let callers that amortise state across rounds (the
    facade, the sweep engine, the figure experiments) pass in pre-resolved
    components; semantics are identical either way.
    """
    if mechanism is None:
        mechanism = build_mechanism(spec)
    if workload is None:
        workload = build_workload(spec)
    if topology is None and spec.topology is not None:
        topology = build_topology(spec)

    if topology is not None:
        provider_ids = list(topology.gateways)
        if len(provider_ids) != spec.providers:
            raise SpecError(
                "topology",
                f"topology produced {len(provider_ids)} gateways for providers={spec.providers}",
            )
    else:
        provider_ids = default_provider_ids(spec.providers)

    bids: BidVector = workload.generate(
        spec.users, spec.providers, provider_ids=provider_ids, instance=instance
    )
    executor_ids = (
        provider_ids[: spec.executors] if spec.executors is not None else provider_ids
    )

    # Observability hooks (see repro.obs): each round opens its own span on a
    # fresh track — sim clocks restart at 0 every round, so two rounds must
    # not share a timeline lane — and the engine's memo counters are read
    # before/after so the hub records per-round *deltas* (the process-wide
    # cache survives across rounds; absolute totals would conflate runs).
    obs = current_observation()
    span_open = False
    memo_base = None
    if obs is not None:
        if obs.tracer is not None and obs.tracer.active:
            obs.tracer.open("round", "scenario", ts=0.0, new_track=True)
            span_open = True
        if obs.metrics is not None:
            cache = shared_solve_cache()
            memo_base = (cache.hits, cache.misses)

    record = None
    try:
        if spec.runner == "centralized":
            report = CentralizedAuctioneer(mechanism, seed=spec.seed).run(bids)
            outcome = report.outcome
            if not spec.measure_compute:
                # The centralised baseline always times with a real stopwatch;
                # honour the spec's determinism contract by dropping the reading.
                outcome = dataclasses.replace(outcome, elapsed_time=0.0)
            # The trusted auctioneer sees every provider's ask — executor
            # subsetting does not apply, so the record must not claim it did.
            executor_ids = provider_ids
        elif spec.runner == "distributed":
            if latency_model is None:
                latency_model = build_latency_model(spec, topology)
            auctioneer = DistributedAuctioneer(
                mechanism,
                providers=executor_ids,
                config=spec.config.to_config(),
                latency_model=latency_model,
                seed=spec.seed,
                measure_compute=spec.measure_compute,
            )
            report = auctioneer.run_from_bids(bids)
            outcome = report.outcome
        else:  # auction_run
            if spec.executors is not None:
                raise SpecError(
                    "executors",
                    "executor subsetting is not supported by the 'auction_run' runner "
                    "(every provider in the workload hosts a node)",
                )
            if latency_model is None:
                latency_model = build_latency_model(spec, topology)
            run = AuctionRun(
                bids,
                mechanism,
                config=spec.config.to_config(),
                bidder_strategies=_bidder_strategies(spec, list(bids.user_ids)),
                deadline=spec.deadline,
                latency_model=latency_model,
                seed=spec.seed,
                measure_compute=spec.measure_compute,
            )
            outcome = run.execute().outcome
        record = record_from_outcome(spec, instance, outcome, mechanism, len(executor_ids))
    finally:
        # The span is closed even when a cell raises (chaos audits catch and
        # continue), so one failed round can never corrupt the nesting of
        # every round after it.
        if obs is not None:
            _observe_round(obs, spec, instance, record, memo_base, span_open)
    return record


def _observe_round(
    obs,
    spec: ScenarioSpec,
    instance: int,
    record: Optional["RunRecord"],
    memo_base,
    span_open: bool,
) -> None:
    """Close the round span and fold the round's deltas into the metrics hub."""
    if span_open:
        obs.tracer.close(
            dur=float(record.elapsed_seconds) if record is not None else 0.0,
            name=spec.name,
            instance=instance,
            ok=record is not None,
        )
    metrics = obs.metrics
    if metrics is None:
        return
    metrics.counter("rounds").inc()
    if record is not None:
        metrics.histogram("round.elapsed").observe(record.elapsed_seconds)
        metrics.counter("round.messages").inc(record.messages)
        if record.aborted:
            metrics.counter("round.aborted").inc()
    if memo_base is not None:
        cache = shared_solve_cache()
        hits = cache.hits - memo_base[0]
        misses = cache.misses - memo_base[1]
        metrics.counter("engine.solve_memo_hits").inc(hits)
        metrics.counter("engine.solve_memo_misses").inc(misses)
        if hits + misses:
            metrics.gauge("engine.solve_memo_hit_rate").set(hits / (hits + misses))


def record_from_outcome(
    spec: ScenarioSpec,
    instance: int,
    outcome: Outcome,
    mechanism: AllocationAlgorithm,
    executors: int,
) -> RunRecord:
    """Normalise an :class:`~repro.core.outcome.Outcome` into a :class:`RunRecord`.

    ``engine`` records the engine that actually ran (derived from the live
    mechanism), not the spec's requested override — a spec with
    ``engine=None`` runs the library default, and the artifact must say so
    rather than report ``null``.
    """
    aborted = outcome.aborted
    winners = 0
    total_paid = 0.0
    total_received = 0.0
    if not aborted:
        result = outcome.auction_result
        winners = len(result.allocation.winners())
        total_paid = result.payments.total_paid
        total_received = result.payments.total_received
    return RunRecord(
        name=spec.name,
        series=spec.default_series(),
        runner=spec.runner,
        mechanism=mechanism.name,
        engine=engine_name(mechanism),
        users=spec.users,
        providers=spec.providers,
        executors=executors,
        k=spec.config.k,
        parallel=spec.config.parallel,
        instance=instance,
        seed=spec.seed,
        elapsed_seconds=outcome.elapsed_time,
        messages=outcome.messages,
        bytes_transferred=outcome.bytes_transferred,
        aborted=aborted,
        winners=winners,
        total_paid=total_paid,
        total_received=total_received,
        degraded=outcome.degraded,
    )
