"""The :class:`Simulation` facade — the library's single front door.

One object, three verbs::

    sim = Simulation(spec)            # or Simulation.from_file("scenario.toml")
    record  = sim.run()               # one round -> RunRecord
    batch   = sim.run_batch()         # spec.rounds rounds -> BatchResult
    result  = sim.sweep(axes={...})   # a grid around this spec -> SweepResult

All three dispatch to the pre-existing runners (``DistributedAuctioneer``,
``CentralizedAuctioneer``, ``AuctionRun``, ``BatchAuctionRunner``), which
remain fully supported as the low-level API; the facade adds the declarative
layer, state amortisation across rounds, and the uniform record schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.runtime.batch import RoundAggregates
from repro.scenarios.io import load_any, load_spec
from repro.scenarios.runner import (
    RunRecord,
    build_latency_model,
    build_mechanism,
    build_topology,
    build_workload,
    run_scenario,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    SpecError,
    SweepSpec,
    spec_from_dict,
    spec_with_overrides,
)
from repro.scenarios.sweep import SweepResult, run_sweep

__all__ = ["Simulation", "BatchResult"]


@dataclass
class BatchResult(RoundAggregates):
    """Per-round records of a batch plus the aggregate the CLI prints."""

    records: List[RunRecord] = field(default_factory=list)

    def _round_entries(self) -> List[RunRecord]:
        return self.records

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rounds": self.total_rounds,
            "aborted_rounds": self.aborted_rounds,
            "total_elapsed_seconds": self.total_elapsed_seconds,
            "mean_elapsed_seconds": self.mean_elapsed_seconds,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class Simulation:
    """Run a declarative scenario: one round, many rounds, or a sweep.

    The facade resolves the spec's registry references lazily and caches them,
    so repeated rounds share the mechanism (and its pivot pool / solve memo),
    the workload generator and the generated topology.  Use it as a context
    manager (or call :meth:`close`) to release engine resources.
    """

    def __init__(self, spec: Union[ScenarioSpec, Mapping[str, Any]]) -> None:
        if isinstance(spec, Mapping):
            spec = spec_from_dict(spec)
        if not isinstance(spec, ScenarioSpec):
            raise SpecError("spec", f"expected a ScenarioSpec, got {type(spec).__name__}")
        self.spec = spec
        self._mechanism = None
        self._workload = None
        self._topology = None
        self._topology_built = False
        self._latency = None

    # -- constructors --------------------------------------------------------------
    @classmethod
    def from_file(
        cls, path, overrides: Optional[Mapping[str, Any]] = None
    ) -> "Simulation":
        """Load a scenario spec file and (optionally) apply dotted-path overrides."""
        spec = load_spec(path)
        if overrides:
            spec = spec_with_overrides(spec, overrides)
        return cls(spec)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "Simulation":
        """A new facade around this spec with dotted-path overrides applied."""
        return Simulation(spec_with_overrides(self.spec, overrides))

    # -- cached components ---------------------------------------------------------
    @property
    def mechanism(self):
        if self._mechanism is None:
            self._mechanism = build_mechanism(self.spec)
        return self._mechanism

    @property
    def workload(self):
        if self._workload is None:
            self._workload = build_workload(self.spec)
        return self._workload

    @property
    def topology(self):
        if not self._topology_built:
            self._topology = build_topology(self.spec)
            self._topology_built = True
        return self._topology

    @property
    def latency_model(self):
        if self._latency is None:
            self._latency = build_latency_model(self.spec, self.topology)
        return self._latency

    # -- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources the facade created (idempotent)."""
        if self._mechanism is not None:
            close = getattr(self._mechanism, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------------
    def run(self, instance: int = 0) -> RunRecord:
        """Run one round of the scenario (workload instance ``instance``)."""
        return run_scenario(
            self.spec,
            instance,
            mechanism=self.mechanism,
            workload=self.workload,
            # The centralised baseline never consumes latency; keep it unbuilt
            # so facade and bare run_scenario stay semantically identical.
            latency_model=(
                self.latency_model if self.spec.runner != "centralized" else None
            ),
            topology=self.topology,
        )

    def run_batch(
        self, rounds: Optional[int] = None, instances: Optional[Iterable[int]] = None
    ) -> BatchResult:
        """Run many rounds over fresh workload instances, amortising all setup.

        ``instances`` wins over ``rounds``; the default is the spec's own
        ``rounds`` field (instances ``0 .. rounds-1``).
        """
        if instances is None:
            instances = range(rounds if rounds is not None else self.spec.rounds)
        result = BatchResult()
        for instance in instances:
            result.records.append(self.run(instance))
        return result

    def sweep(
        self,
        axes: Optional[Mapping[str, Iterable[Any]]] = None,
        points: Optional[Iterable[Mapping[str, Any]]] = None,
        name: Optional[str] = None,
        *,
        workers: Union[None, int, str] = None,
        store=None,
        store_format: Optional[str] = None,
        resume: bool = False,
    ) -> SweepResult:
        """Run a grid of variations around this scenario (see :class:`SweepSpec`).

        ``workers=N`` (or ``"auto"``, sized from the CPUs this process may
        use) dispatches grid points to a worker-process pool (records stay
        in grid order, identical to a sequential run on all deterministic
        fields); ``store`` journals records to an append-only results journal
        as they complete (``store_format`` picks the
        :data:`~repro.scenarios.store.STORE_BACKENDS` file format for a fresh
        path — jsonl by default, columnar for large grids), and
        ``resume=True`` skips rounds that journal already holds.  See
        :func:`repro.scenarios.sweep.run_sweep` and
        :func:`repro.scenarios.dispatch.resolve_workers`.
        """
        sweep_spec = SweepSpec(
            base=self.spec,
            name=name if name is not None else f"{self.spec.name}-sweep",
            points=tuple(dict(point) for point in points) if points else (),
            axes=tuple((key, tuple(values)) for key, values in (axes or {}).items()),
        )
        return run_sweep(
            sweep_spec,
            workers=workers,
            store=store,
            store_format=store_format,
            resume=resume,
        )

    def audit_resilience(
        self,
        adversaries: Optional[Iterable[Any]] = None,
        coalitions: Optional[Iterable[Any]] = None,
        k: Optional[int] = None,
        schedules: Iterable[Any] = ("fair",),
        seeds: Optional[Iterable[int]] = None,
        max_coalitions: Optional[int] = None,
        name: Optional[str] = None,
        *,
        workers: Union[None, int, str] = None,
        store=None,
        store_format: Optional[str] = None,
        resume: bool = False,
    ):
        """Audit the paper's k-resilience claim around this scenario.

        Builds a :class:`~repro.scenarios.resilience.ResilienceSpec` with this
        scenario as the honest baseline and runs the full
        ``(schedule x coalition x deviation) x seed`` grid through
        :func:`~repro.scenarios.resilience.run_resilience` — sequentially, or
        in a ``workers``-process pool with journaled resume, bit-identical to
        the sequential path on all deterministic fields.  With no arguments it
        audits every coalition up to the scenario's configured ``k`` against
        the built-in deviation library under the fair schedule.
        """
        from repro.scenarios.resilience import ResilienceSpec, run_resilience

        spec = ResilienceSpec(
            name=name if name is not None else f"{self.spec.name}-resilience",
            base=self.spec,
            k=k,
            coalitions=tuple(coalitions) if coalitions else (),
            max_coalitions=max_coalitions,
            adversaries=tuple(adversaries) if adversaries else (),
            schedules=tuple(schedules),
            seeds=tuple(seeds) if seeds else (),
        )
        return run_resilience(
            spec,
            workers=workers,
            store=store,
            store_format=store_format,
            resume=resume,
        )

    def run_chaos(
        self,
        faults: Iterable[Any],
        recovery: Optional[Any] = None,
        seeds: Optional[Iterable[int]] = None,
        name: Optional[str] = None,
        *,
        workers: Union[None, int, str] = None,
        store=None,
        store_format: Optional[str] = None,
        resume: bool = False,
        failure_mode: str = "raise",
    ):
        """Chaos-audit this scenario under injected faults.

        Builds a :class:`~repro.scenarios.chaos.ChaosSpec` with this scenario
        as the base and runs the full ``fault x seed`` grid through
        :func:`~repro.scenarios.chaos.run_chaos` — sequentially, or in a
        ``workers``-process pool with journaled resume.  Every cell checks
        delivery conservation, termination, bit-identical replay and (for
        ``torn_append`` faults) journal repair-on-resume; ``faults`` entries
        are fault kinds (``"loss"``) or parameter tables
        (``{"kind": "loss", "rate": 0.2}``), ``recovery`` an optional
        retransmission-policy table.
        """
        from repro.scenarios.chaos import ChaosSpec, run_chaos

        spec = ChaosSpec(
            name=name if name is not None else f"{self.spec.name}-chaos",
            base=self.spec,
            faults=tuple(faults),
            recovery=recovery,
            seeds=tuple(seeds) if seeds else (),
        )
        return run_chaos(
            spec,
            workers=workers,
            store=store,
            store_format=store_format,
            resume=resume,
            failure_mode=failure_mode,
        )


def run_file(path, overrides: Optional[Mapping[str, Any]] = None):
    """Run whatever spec the file holds: a scenario (one round) or a sweep.

    Returns a :class:`RunRecord` for scenario files and a :class:`SweepResult`
    for sweep files.
    """
    loaded = load_any(path)
    if isinstance(loaded, SweepSpec):
        return run_sweep(loaded.with_base_overrides(overrides or {}))
    if overrides:
        loaded = spec_with_overrides(loaded, overrides)
    with Simulation(loaded) as simulation:
        return simulation.run()
