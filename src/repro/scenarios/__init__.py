"""Declarative scenarios: one spec, one facade, every runner.

This package is the front door of the library.  A scenario is *data* — a
:class:`~repro.scenarios.spec.ScenarioSpec` naming a mechanism, workload,
latency model / topology, adversary strategies and framework configuration via
string kinds — and :class:`~repro.scenarios.simulation.Simulation` executes it
through the existing runners, returning uniform
:class:`~repro.scenarios.runner.RunRecord` rows::

    from repro.scenarios import ScenarioSpec, Simulation

    spec = ScenarioSpec(mechanism="standard", users=50, seed=7)
    with Simulation.from_file("scenario.toml") as sim:
        print(sim.run().to_dict())

Specs round-trip losslessly through JSON and TOML files
(:mod:`repro.scenarios.io`), sweeps express grids over any spec field
(:mod:`repro.scenarios.sweep`), and the paper's Figure 4 / Figure 5
experiments ship as built-in sweep specs (:mod:`repro.scenarios.builtin`).
New mechanisms/workloads/latency models/adversaries plug in through the
registries (:mod:`repro.scenarios.registry`) — a registry entry plus a spec
file is a complete new scenario.
"""

from repro.scenarios.builtin import BUILTIN_SWEEPS, builtin_sweep, figure4_sweep, figure5_sweep
from repro.scenarios.dispatch import (
    EXECUTOR_BACKENDS,
    ExecutorBackend,
    WorkerPlan,
    resolve_workers,
)
from repro.scenarios.chaos import (
    ChaosRecord,
    ChaosResult,
    ChaosSpec,
    FaultSpec,
    chaos_fingerprint,
    chaos_from_dict,
    chaos_to_dict,
    chaos_with_overrides,
    run_chaos,
)
from repro.scenarios.io import (
    dump_chaos,
    dump_resilience,
    dump_spec,
    dump_sweep,
    dumps_toml,
    load_any,
    load_chaos,
    load_resilience,
    load_spec,
    load_sweep,
)
from repro.scenarios.registry import (
    ADVERSARIES,
    BIDDER_STRATEGIES,
    LATENCIES,
    MECHANISMS,
    SCHEDULERS,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
)
from repro.scenarios.resilience import (
    AdversarySpec,
    ResilienceRecord,
    ResilienceResult,
    ResilienceSpec,
    resilience_fingerprint,
    resilience_from_dict,
    resilience_to_dict,
    resilience_with_overrides,
    run_resilience,
)
from repro.scenarios.runner import RunRecord, run_scenario
from repro.scenarios.simulation import BatchResult, Simulation, run_file
from repro.scenarios.spec import (
    BidderSpec,
    ComponentSpec,
    ConfigSpec,
    ScenarioSpec,
    SpecError,
    SweepSpec,
    parse_assignments,
    spec_from_dict,
    spec_to_dict,
    spec_with_overrides,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.scenarios.aggregate import MetricAccumulator, StreamingSummary, render_summary
from repro.scenarios.columnar import ColumnarStoreBackend
from repro.scenarios.store import (
    STORE_BACKENDS,
    JsonlStoreBackend,
    ResultsStore,
    StoreBackend,
    convert_journal,
    sniff_format,
    sweep_fingerprint,
)
from repro.scenarios.sweep import ComponentCache, SweepResult, run_sweep

__all__ = [
    "ADVERSARIES",
    "AdversarySpec",
    "BIDDER_STRATEGIES",
    "BUILTIN_SWEEPS",
    "BatchResult",
    "BidderSpec",
    "ChaosRecord",
    "ChaosResult",
    "ChaosSpec",
    "ColumnarStoreBackend",
    "ComponentCache",
    "ComponentSpec",
    "ConfigSpec",
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "FaultSpec",
    "JsonlStoreBackend",
    "LATENCIES",
    "MECHANISMS",
    "MetricAccumulator",
    "Registry",
    "ResilienceRecord",
    "ResilienceResult",
    "ResilienceSpec",
    "ResultsStore",
    "RunRecord",
    "SCHEDULERS",
    "STORE_BACKENDS",
    "ScenarioSpec",
    "Simulation",
    "SpecError",
    "StoreBackend",
    "StreamingSummary",
    "SweepResult",
    "SweepSpec",
    "TOPOLOGIES",
    "WORKLOADS",
    "WorkerPlan",
    "builtin_sweep",
    "chaos_fingerprint",
    "chaos_from_dict",
    "chaos_to_dict",
    "chaos_with_overrides",
    "convert_journal",
    "dump_chaos",
    "dump_resilience",
    "dump_spec",
    "dump_sweep",
    "dumps_toml",
    "figure4_sweep",
    "figure5_sweep",
    "load_any",
    "load_chaos",
    "load_resilience",
    "load_spec",
    "load_sweep",
    "parse_assignments",
    "render_summary",
    "resilience_fingerprint",
    "resilience_from_dict",
    "resilience_to_dict",
    "resilience_with_overrides",
    "resolve_workers",
    "run_chaos",
    "run_file",
    "run_resilience",
    "run_scenario",
    "run_sweep",
    "sniff_format",
    "spec_from_dict",
    "spec_to_dict",
    "spec_with_overrides",
    "sweep_fingerprint",
    "sweep_from_dict",
    "sweep_to_dict",
]
