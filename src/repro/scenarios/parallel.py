"""Parallel sweep execution: grid points dispatched to a process pool.

Grid points are grouped into chunks by their ``(mechanism, workload,
topology)`` cache key, and each chunk runs in one worker through the same
:class:`~repro.scenarios.sweep.ComponentCache` machinery the sequential path
uses (:func:`~repro.scenarios.sweep.run_point_rounds`), so engine state — the
vectorized engine's pivot pool and its solve memo — is amortised within a
chunk exactly as the sequential sweep amortises it.  All rounds of one grid
point always land in the same chunk.

Workers rehydrate specs from ``spec_to_dict`` payloads: nothing but
JSON-shaped data (plus the optional pickled latency-model override) crosses
the process boundary, and every result is a plain frozen
:class:`~repro.scenarios.runner.RunRecord`.  Results stream back in
completion order carrying their grid index; the caller (``run_sweep``)
reassembles deterministic grid order regardless of scheduling.  Because
every component is a pure function of its spec (bit-identical however often
it is rebuilt — the engine-equivalence contract), records are bit-identical
to a sequential run on every deterministic field.

The pool prefers the ``fork`` start method where available, so workers
inherit runtime registrations (mechanism/workload kinds a calling program
registered after import).  On spawn-only platforms, custom kinds must be
registered at import time of a module the workers also import.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.net.latency import LatencyModel
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import ScenarioSpec, SpecError, spec_from_dict, spec_to_dict
from repro.scenarios.sweep import (
    ComponentCache,
    _mechanism_key,
    _topology_key,
    _workload_key,
    run_point_rounds,
)

__all__ = ["amortisation_key", "chunk_tasks", "execute_chunk", "execute_parallel"]

#: One unit of worker work: (grid index, spec_to_dict payload, instances to run).
ChunkTask = Tuple[int, Dict[str, Any], List[int]]


def amortisation_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    """The state-sharing key of one grid point: what a worker can amortise."""
    return (
        _mechanism_key(spec),
        _workload_key(spec),
        _topology_key(spec) if spec.topology is not None else None,
    )


#: Target chunk count per worker.  >1 for two reasons: load balancing (points
#: vary widely in cost across a grid) and checkpoint granularity — a chunk is
#: the unit of result return, so it bounds how much work a crash can lose
#: between journal appends under parallel execution.
CHUNKS_PER_WORKER = 4


def chunk_tasks(tasks, workers: int) -> List[List[ChunkTask]]:
    """Group pending grid points into worker chunks.

    Points sharing an amortisation key start out in one chunk, then the
    largest chunks are split toward ``workers * CHUNKS_PER_WORKER`` total —
    a grid with fewer distinct keys than workers (e.g. Figure 4: one
    mechanism configuration for the whole grid) would otherwise serialise.
    Splitting is free in correctness terms (components are bit-identical
    however often they are rebuilt) and only trades some cache sharing for
    parallelism, load balance and journal-checkpoint granularity.  All
    rounds of one grid point always stay in one chunk.
    """
    grouped: Dict[Tuple[Any, ...], List[ChunkTask]] = {}
    for index, spec, instances in tasks:
        if not instances:
            continue
        grouped.setdefault(amortisation_key(spec), []).append(
            (index, spec_to_dict(spec), list(instances))
        )
    chunks = list(grouped.values())
    while len(chunks) < workers * CHUNKS_PER_WORKER:
        largest = max(chunks, key=len, default=None)
        if largest is None or len(largest) < 2:
            break
        chunks.remove(largest)
        middle = (len(largest) + 1) // 2
        chunks.append(largest[:middle])
        chunks.append(largest[middle:])
    return chunks


def execute_chunk(
    tasks: List[ChunkTask], latency_model: Optional[LatencyModel] = None
) -> List[Tuple[int, int, RunRecord]]:
    """Worker body: run one chunk through a fresh component cache.

    The cache is closed in a ``finally`` so the worker-side pivot pool is
    shut down even when a grid point raises mid-chunk.
    """
    results: List[Tuple[int, int, RunRecord]] = []
    cache = ComponentCache()
    try:
        for index, payload, instances in tasks:
            spec = spec_from_dict(payload)
            for instance, record in run_point_rounds(cache, spec, instances, latency_model):
                results.append((index, instance, record))
    finally:
        cache.close()
    return results


def execute_parallel(
    tasks, workers: int, latency_model: Optional[LatencyModel] = None
) -> Iterator[Tuple[int, int, RunRecord]]:
    """Run pending grid rounds in a process pool, yielding records as they land.

    Yields ``(grid index, instance, record)`` in *completion* order — the
    caller owns grid-order reassembly (and journaling, which wants completion
    order anyway).  A worker exception cancels the not-yet-started chunks and
    re-raises in the parent; records of chunks that already completed have
    been yielded (and journaled) by then, so a resumed run only repeats the
    unfinished chunks.
    """
    if latency_model is not None:
        try:
            pickle.dumps(latency_model)
        except Exception as exc:
            raise SpecError(
                "latency_model",
                f"the latency-model override cannot be shipped to worker "
                f"processes (not picklable): {exc}; run with workers=1 or "
                f"express the model as a spec 'latency' kind",
            ) from exc
    chunks = chunk_tasks(tasks, workers)
    if not chunks:
        return
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)), mp_context=_pool_context()
    ) as pool:
        futures = [pool.submit(execute_chunk, chunk, latency_model) for chunk in chunks]
        try:
            for future in as_completed(futures):
                yield from future.result()
        except BaseException:
            for future in futures:
                future.cancel()
            raise


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS configs)
        return None
