"""Parallel sweep execution: grid points dispatched through an executor backend.

Grid points are grouped into chunks by their ``(mechanism, workload,
topology)`` cache key, and each chunk runs in one worker through the same
:class:`~repro.scenarios.sweep.ComponentCache` machinery the sequential path
uses (:func:`~repro.scenarios.sweep.run_point_rounds`), so engine state — the
vectorized engine's pivot pool and its solve memo — is amortised within a
chunk exactly as the sequential sweep amortises it.  All rounds of one grid
point always land in the same chunk.

Workers rehydrate specs from ``spec_to_dict`` payloads: nothing but
JSON-shaped data (plus the optional pickled latency-model override) crosses
the process boundary, and every result is a plain frozen
:class:`~repro.scenarios.runner.RunRecord`.  Results stream back in
completion order carrying their grid index; the caller (``run_sweep``)
reassembles deterministic grid order regardless of scheduling.  Because
every component is a pure function of its spec (bit-identical however often
it is rebuilt — the engine-equivalence contract), records are bit-identical
to a sequential run on every deterministic field.

Chunk execution itself is delegated to a pluggable
:class:`~repro.scenarios.dispatch.ExecutorBackend` (``"process"`` by
default); the chunking, worker body and reassembly here are exactly the
backend contract's "chunk determinism" and "journal-per-chunk" pieces.

Journaling stays caller-side and store-agnostic: ``run_sweep`` appends each
streamed record to whatever :data:`~repro.scenarios.store.STORE_BACKENDS`
backend owns the journal (jsonl or columnar), so this module never sees a
file format — the differential suite pins both backends byte-equivalent on
the records this executor produces.
"""

from __future__ import annotations

import functools
import pickle
import traceback
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.net.latency import LatencyModel
from repro.scenarios.dispatch import (
    CHUNKS_PER_WORKER,
    ChunkExecutionError,
    create_backend,
    split_chunks,
)
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import ScenarioSpec, SpecError, spec_from_dict, spec_to_dict
from repro.scenarios.sweep import (
    ComponentCache,
    _mechanism_key,
    _topology_key,
    _workload_key,
    run_point_rounds,
)

__all__ = ["amortisation_key", "chunk_tasks", "execute_chunk", "execute_parallel"]

#: One unit of worker work: (grid index, spec_to_dict payload, instances to run).
ChunkTask = Tuple[int, Dict[str, Any], List[int]]


def amortisation_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    """The state-sharing key of one grid point: what a worker can amortise."""
    return (
        _mechanism_key(spec),
        _workload_key(spec),
        _topology_key(spec) if spec.topology is not None else None,
    )


def chunk_tasks(tasks, workers: int) -> List[List[ChunkTask]]:
    """Group pending grid points into worker chunks.

    Points sharing an amortisation key start out in one chunk, then the
    largest chunks are split toward ``workers * CHUNKS_PER_WORKER`` total
    (:func:`~repro.scenarios.dispatch.split_chunks`) — a grid with fewer
    distinct keys than workers (e.g. Figure 4: one mechanism configuration
    for the whole grid) would otherwise serialise.  All rounds of one grid
    point always stay in one chunk.
    """
    grouped: Dict[Tuple[Any, ...], List[ChunkTask]] = {}
    for index, spec, instances in tasks:
        if not instances:
            continue
        grouped.setdefault(amortisation_key(spec), []).append(
            (index, spec_to_dict(spec), list(instances))
        )
    return split_chunks(list(grouped.values()), workers * CHUNKS_PER_WORKER)


def execute_chunk(
    tasks: List[ChunkTask], latency_model: Optional[LatencyModel] = None
) -> List[Tuple[int, int, RunRecord]]:
    """Worker body: run one chunk through a fresh component cache.

    The cache is closed in a ``finally`` so the worker-side pivot pool is
    shut down even when a grid point raises mid-chunk.  A failure partway
    through the chunk raises :class:`~repro.scenarios.dispatch.ChunkExecutionError`
    carrying the rounds completed so far (the parent journals them before
    retrying or re-raising), the worker traceback as a string (traceback
    objects do not pickle), and the work still pending — the round that
    raised first, then everything the chunk never reached.
    """
    results: List[Tuple[int, int, RunRecord]] = []
    cache = ComponentCache()
    try:
        for position, (index, payload, instances) in enumerate(tasks):
            completed: List[int] = []
            try:
                spec = spec_from_dict(payload)
                for instance, record in run_point_rounds(
                    cache, spec, instances, latency_model
                ):
                    results.append((index, instance, record))
                    completed.append(instance)
            except Exception as exc:
                remaining: List[ChunkTask] = [
                    (index, payload, [i for i in instances if i not in completed])
                ]
                remaining.extend(tasks[position + 1 :])
                try:  # carry the typed error along when it survives pickling
                    cause = pickle.loads(pickle.dumps(exc))
                except Exception:
                    cause = None
                raise ChunkExecutionError(
                    results, traceback.format_exc(), remaining, cause
                ) from None
    finally:
        cache.close()
    return results


def execute_parallel(
    tasks,
    workers: int,
    latency_model: Optional[LatencyModel] = None,
    backend: str = "process",
    failure_mode: str = "raise",
) -> Iterator[Tuple[int, int, RunRecord]]:
    """Run pending grid rounds through an executor backend, yielding as they land.

    Yields ``(grid index, instance, record)`` in *completion* order — the
    caller owns grid-order reassembly (and journaling, which wants completion
    order anyway).  ``backend`` names an
    :data:`~repro.scenarios.dispatch.EXECUTOR_BACKENDS` entry; the default
    local process pool cancels not-yet-started chunks on a worker exception,
    so a resumed run only repeats the unfinished chunks.

    ``failure_mode="quarantine"`` opts the backend into crash tolerance:
    failing chunks retry with a literal bound, a dead worker process is
    survived in a fresh pool, and rounds that keep failing stream back as
    :class:`~repro.scenarios.dispatch.ChunkQuarantine` sentinels instead of
    records (the caller journals them and continues).
    """
    if latency_model is not None:
        try:
            pickle.dumps(latency_model)
        except Exception as exc:
            raise SpecError(
                "latency_model",
                f"the latency-model override cannot be shipped to worker "
                f"processes (not picklable): {exc}; run with workers=1 or "
                f"express the model as a spec 'latency' kind",
            ) from exc
    chunks = chunk_tasks(tasks, workers)
    if not chunks:
        return
    worker = functools.partial(execute_chunk, latency_model=latency_model)
    executor = create_backend(backend)
    executor.failure_mode = failure_mode
    yield from executor.execute(chunks, worker, workers)
