"""Executor dispatch: worker resolution policy + pluggable chunk backends.

Both parallel executors — the sweep pool (:mod:`repro.scenarios.parallel`) and
the resilience-audit pool (:mod:`repro.scenarios.resilience_parallel`) — share
the same execution shape: group work into amortisation-preserving chunks, run
each chunk through a picklable worker function, stream results back in
completion order, and let the caller reassemble deterministic grid order and
journal per chunk.  This module owns that shape once:

* :func:`resolve_workers` — the worker-count policy.  ``workers="auto"``
  resolves from the CPUs this process may actually use
  (:func:`repro.common.available_cpus`, affinity-aware); an explicit count
  larger than that degrades to the available count with a stderr warning
  instead of oversubscribing; a single available CPU resolves to the
  sequential path, where a pool only adds overhead.
* :class:`ExecutorBackend` — the dispatch interface.  ``"serial"`` and
  ``"process"`` ship built in, registered in :data:`EXECUTOR_BACKENDS` exactly
  like mechanism kinds in ``MECHANISMS``; a future multi-host work-queue
  backend plugs in here without touching either executor.

**The backend contract** (what any new backend must guarantee):

1. *Chunk determinism* — a chunk is a pure function of its payload: the worker
   rehydrates components from spec dicts and every component is bit-identical
   however often it is rebuilt, so running a chunk anywhere (in-process, a
   local worker, another host) yields identical records.
2. *Journal-per-chunk* — results are yielded chunk by chunk as they complete;
   the caller appends them to the results journal immediately, so a crash
   loses at most the in-flight chunks.
3. *Fingerprint-guarded resume* — backends only ever receive the *pending*
   work items; the caller computed those against a journal whose manifest
   fingerprint matched the spec.  A backend must neither reorder fields nor
   rewrite records, or resumed runs would stop being bit-identical.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple, Union

from repro.common import available_cpus
from repro.scenarios.registry import Registry
from repro.scenarios.spec import ComponentSpec, SpecError

__all__ = [
    "CHUNKS_PER_WORKER",
    "MAX_CHUNK_RETRIES",
    "ChunkExecutionError",
    "ChunkQuarantine",
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "ProcessExecutorBackend",
    "SerialExecutorBackend",
    "WorkerPlan",
    "create_backend",
    "reset_oversubscription_warnings",
    "resolve_workers",
    "split_chunks",
]

#: What callers may pass as ``workers``: nothing (sequential), an explicit
#: positive count, or ``"auto"`` (size from the CPUs actually available).
WorkerSpec = Union[None, int, str]

#: Target chunk count per worker.  >1 for two reasons: load balancing (work
#: items vary widely in cost across a grid) and checkpoint granularity — a
#: chunk is the unit of result return, so it bounds how much work a crash can
#: lose between journal appends under parallel execution.
CHUNKS_PER_WORKER = 4

#: Literal retry bound for the crash-tolerant executor path: an item whose
#: chunk has failed this many times is quarantined instead of retried again.
#: A literal (not configuration) so the retry loop is provably bounded — the
#: same contract lint rule RPA009 enforces on deterministic code.
MAX_CHUNK_RETRIES = 2


# ------------------------------------------------------------- failure model --
class ChunkExecutionError(Exception):
    """A worker chunk failed partway through; carries what survives the crash.

    Raised *inside* a worker (see
    :func:`repro.scenarios.parallel.execute_chunk`) so the parent loses
    neither the rounds the chunk completed before the failure
    (``partial_results``, yielded — and therefore journaled — before any
    retry or re-raise) nor the original traceback (``traceback``, a string,
    because traceback objects do not cross process boundaries).
    ``remaining_items`` lists the work items that still need running: the
    item that raised first, then every item the chunk never reached.
    ``cause`` is the original exception object when it pickles losslessly
    (``SpecError`` does), so fail-fast callers re-raise the path-precise
    typed error instead of a stringly wrapper; ``None`` otherwise.
    """

    def __init__(
        self,
        partial_results: List[Any],
        traceback_str: str,
        remaining_items: List[Any],
        cause: Optional[BaseException] = None,
    ) -> None:
        self.partial_results = list(partial_results)
        self.traceback = str(traceback_str)
        self.remaining_items = list(remaining_items)
        self.cause = cause
        super().__init__(self.error)

    @property
    def error(self) -> str:
        """The final line of the worker traceback — the exception itself."""
        lines = [line for line in self.traceback.strip().splitlines() if line.strip()]
        return lines[-1].strip() if lines else "worker chunk failed"

    def __reduce__(self):
        # Exceptions with a multi-argument __init__ do not survive pickling by
        # default (unpickling re-invokes the class with ``self.args``); being
        # shipped across the process boundary is this class's whole purpose.
        return (
            ChunkExecutionError,
            (self.partial_results, self.traceback, self.remaining_items, self.cause),
        )


@dataclass(frozen=True)
class ChunkQuarantine:
    """Sentinel yielded in place of results for items given up on.

    The crash-tolerant executor emits one of these into the result stream
    when an item is still failing after :data:`MAX_CHUNK_RETRIES` attempts.
    ``items`` holds the backend-agnostic work items exactly as the chunker
    built them (for the sweep executor: ``(grid index, spec payload,
    instances)`` tuples), so the caller can map them back to grid rounds,
    journal the failure, and continue — ``--resume`` then re-executes only
    the quarantined rounds.
    """

    items: Tuple[Any, ...]
    error: str
    traceback: str = ""


# ------------------------------------------------------------- worker policy --
#: Oversubscription warnings already printed this process, keyed by
#: ``(requested, cpus)``.  One CLI invocation resolves the same request more
#: than once (the audit harnesses plan up front, then the executor they call
#: re-resolves), and re-printing an identical warning per resolution reads as
#: N distinct problems.  Warn once per distinct resolution instead; tests
#: reset via :func:`reset_oversubscription_warnings`.
_WARNED_OVERSUBSCRIPTIONS: set = set()


def reset_oversubscription_warnings() -> None:
    """Forget which oversubscription warnings were printed (test isolation)."""
    _WARNED_OVERSUBSCRIPTIONS.clear()


@dataclass(frozen=True)
class WorkerPlan:
    """The resolved execution plan for one sweep/audit invocation.

    ``workers`` is the resolved process count (1 for the sequential path);
    ``backend`` names the :data:`EXECUTOR_BACKENDS` entry to dispatch through;
    ``requested`` preserves what the caller asked for (``None``, an int, or
    ``"auto"``) so artifacts can record both sides of the resolution.
    """

    requested: WorkerSpec
    workers: int
    backend: str
    capped: bool = False

    @property
    def parallel(self) -> bool:
        return self.backend != "serial" and self.workers > 1


def resolve_workers(
    workers: WorkerSpec,
    *,
    backend: Optional[str] = None,
    path: str = "workers",
) -> WorkerPlan:
    """Resolve a requested worker count into a :class:`WorkerPlan`.

    Policy:

    * ``None`` or ``1`` — the sequential in-process path.
    * ``"auto"`` — as many workers as CPUs this process may run on
      (:func:`repro.common.available_cpus`); on a single available CPU this
      *is* the sequential path, so pool overhead can never be the default.
    * an explicit ``N > available CPUs`` — degrades to the available count
      with a stderr warning instead of oversubscribing (``capped=True``).
      The warning prints once per distinct ``(requested, cpus)`` resolution
      per process, not once per call — one invocation resolves the same
      request repeatedly (harness plan + executor re-resolution).
    * anything else (0, negatives, other strings) — :class:`SpecError`.

    ``backend`` overrides the dispatch target for parallel plans (default
    ``"process"``); the sequential fallback always plans ``"serial"``.
    """
    cpus = available_cpus()
    capped = False
    if workers is None:
        count = 1
    elif isinstance(workers, str):
        if workers != "auto":
            raise SpecError(
                path, f"workers must be a positive integer or 'auto', got {workers!r}"
            )
        count = cpus
    elif isinstance(workers, bool) or not isinstance(workers, int):
        raise SpecError(
            path, f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    elif workers < 1:
        raise SpecError(path, f"workers must be a positive integer, got {workers}")
    else:
        count = workers
        if count > cpus:
            capped = True
            count = cpus
            if (workers, cpus) not in _WARNED_OVERSUBSCRIPTIONS:
                _WARNED_OVERSUBSCRIPTIONS.add((workers, cpus))
                print(
                    f"workers: requested {workers} workers but only {cpus} "
                    f"CPU{'s are' if cpus != 1 else ' is'} available; running "
                    f"{count} to avoid oversubscription",
                    file=sys.stderr,
                )
    if count <= 1:
        return WorkerPlan(requested=workers, workers=1, backend="serial", capped=capped)
    return WorkerPlan(
        requested=workers, workers=count, backend=backend or "process", capped=capped
    )


# ----------------------------------------------------------------- chunking --
def split_chunks(chunks: List[List[Any]], target: int) -> List[List[Any]]:
    """Split the largest chunks until there are ``target`` of them (or none splits).

    Shared by both executors' chunkers: work items sharing an amortisation key
    start out in one chunk, then the largest chunks are split toward
    ``workers * CHUNKS_PER_WORKER`` total — a grid with fewer distinct keys
    than workers would otherwise serialise.  Splitting is free in correctness
    terms (chunk determinism, point 1 of the backend contract) and only trades
    some cache sharing for parallelism, load balance and journal-checkpoint
    granularity.  Indivisible chunks (single items) are never split, so the
    grouping invariant of each chunker — all rounds of one grid point, all
    cells of one ``(schedule, seed)`` cell — survives.
    """
    chunks = list(chunks)
    while len(chunks) < target:
        largest = max(chunks, key=len, default=None)
        if largest is None or len(largest) < 2:
            break
        chunks.remove(largest)
        middle = (len(largest) + 1) // 2
        chunks.append(largest[:middle])
        chunks.append(largest[middle:])
    return chunks


# ----------------------------------------------------------------- backends --
class ExecutorBackend:
    """Runs worker chunks and streams back their results (see module docstring).

    ``execute`` receives the pre-built chunks, a picklable ``worker`` callable
    (``worker(chunk) -> list of results``) and the resolved worker count; it
    yields individual results in whatever order chunks complete.  The caller
    owns order reassembly and journaling.
    """

    def execute(
        self,
        chunks: List[List[Any]],
        worker: Callable[[List[Any]], List[Any]],
        workers: int,
    ) -> Iterator[Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - stateless built-ins
        """Release backend resources (idempotent); built-ins hold none."""


class SerialExecutorBackend(ExecutorBackend):
    """Run every chunk inline, in order — the degenerate one-worker backend."""

    def execute(self, chunks, worker, workers: int = 1) -> Iterator[Any]:
        for chunk in chunks:
            yield from worker(chunk)


class ProcessExecutorBackend(ExecutorBackend):
    """Run chunks in a local ``ProcessPoolExecutor``, streaming completion order.

    The pool prefers the ``fork`` start method where available, so workers
    inherit runtime registrations (mechanism/workload kinds a calling program
    registered after import).  On spawn-only platforms, custom kinds must be
    registered at import time of a module the workers also import.

    Failure handling is governed by :attr:`failure_mode`:

    * ``"raise"`` (the default) — a worker exception cancels the
      not-yet-started chunks and re-raises in the parent carrying the
      worker's traceback.  Results of chunks that already completed have been
      yielded (and journaled) by then, and the partial results of the
      *failing* chunk are yielded before the raise, so a resumed run only
      repeats the rounds that never ran.
    * ``"quarantine"`` — crash tolerance: a failing chunk is retried with a
      literal bound (:data:`MAX_CHUNK_RETRIES`).  A worker exception
      (:class:`ChunkExecutionError`) names the poison item, which retries
      alone while its untried chunk-mates requeue with a clean slate.  A dead
      worker process (``BrokenProcessPool``) breaks the *whole pool*, so the
      shared-pool failure cannot be attributed: every unfinished chunk of the
      broken pool replays in **isolation** — its own single-chunk pool —
      where a repeat death is unambiguous evidence.  Isolated deaths charge
      the chunk's failure count and bisect multi-item chunks until the
      poison item is cornered; innocent chunk-mates complete on their
      isolated replay without being charged.  An item still failing after
      the bounded retries is yielded as a :class:`ChunkQuarantine` sentinel
      instead of its results, so the caller can journal the failure and
      keep going.
    """

    #: "raise" (fail fast, the historical contract) or "quarantine" (crash
    #: tolerance).  A class default overridden per instance by callers that
    #: opted in — the sweep/chaos engines — so ``execute``'s signature stays
    #: backend-agnostic.
    failure_mode = "raise"

    def execute(self, chunks, worker, workers: int) -> Iterator[Any]:
        pending: List[Tuple[List[Any], int]] = [
            (list(chunk), 0) for chunk in chunks if chunk
        ]
        # Chunks suspected of killing their worker; each replays alone in a
        # single-chunk pool so the next death is attributable.
        suspects: List[Tuple[List[Any], int]] = []
        # Each iteration runs one batch in one fresh pool (mandatory after a
        # worker death broke the previous one).  Bounded: every isolated
        # failure either bisects a chunk or raises its failure count toward
        # MAX_CHUNK_RETRIES, and un-charged shared-pool breaks only move
        # chunks into isolation.
        while pending or suspects:
            if pending:
                batch, pending = pending, []
                yield from self._run_batch(batch, pending, suspects, worker, workers)
            else:
                batch = [suspects.pop(0)]
                yield from self._run_batch(batch, pending, suspects, worker, 1)

    def _run_batch(self, batch, pending, suspects, worker, workers: int) -> Iterator[Any]:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(batch)), mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(worker, items): (items, failures)
                for items, failures in batch
            }
            try:
                for future in as_completed(futures):
                    items, failures = futures[future]
                    try:
                        yield from future.result()
                    except ChunkExecutionError as exc:
                        yield from exc.partial_results
                        if self.failure_mode != "quarantine":
                            if exc.cause is not None:
                                # Re-raise the original, typed error; the
                                # chunk context (partials journaled, worker
                                # traceback) rides along as __cause__.
                                raise exc.cause from exc
                            raise RuntimeError(
                                "sweep worker raised while executing a chunk "
                                "(rounds completed before the failure were "
                                "journaled); worker traceback:\n"
                                f"{exc.traceback}"
                            ) from exc
                        yield from self._after_worker_error(pending, exc, failures)
                    except BrokenProcessPool:
                        if self.failure_mode != "quarantine":
                            raise
                        yield from self._after_worker_death(
                            suspects, items, failures, alone=len(batch) == 1
                        )
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    def _after_worker_error(self, pending, exc: ChunkExecutionError, failures: int):
        """Requeue after an in-worker exception: the poison item is known."""
        if not exc.remaining_items:  # defensive: nothing left to run
            return
        poison, rest = exc.remaining_items[0], list(exc.remaining_items[1:])
        if rest:
            # The items after the poison one never ran; they are not suspects.
            pending.append((rest, 0))
        failures += 1
        if failures >= MAX_CHUNK_RETRIES:
            yield ChunkQuarantine(
                items=(poison,), error=exc.error, traceback=exc.traceback
            )
        else:
            pending.append(([poison], failures))

    def _after_worker_death(self, suspects, items: List[Any], failures: int, alone: bool):
        """Requeue after ``BrokenProcessPool``.

        A break in a *shared* pool is unattributable — one dead worker fails
        every in-flight future — so the chunk is not charged, only moved to
        the isolation queue.  A break while running *alone* is attributable:
        charge the chunk, bisect multi-item chunks to corner the poison
        item, quarantine a single item that exhausted its retries.
        """
        if not alone:
            suspects.append((items, failures))
            return
        failures += 1
        if len(items) > 1:
            # Bisect: the poison item is cornered in log2(n) replays, and
            # its chunk-mates escape the quarantine with their results.
            middle = (len(items) + 1) // 2
            suspects.append((items[:middle], failures))
            suspects.append((items[middle:], failures))
        elif failures >= MAX_CHUNK_RETRIES:
            yield ChunkQuarantine(
                items=tuple(items),
                error="worker process died while executing this item "
                "(BrokenProcessPool)",
            )
        else:
            suspects.append((items, failures))


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS configs)
        return None


#: Executor backends by name, registered exactly like mechanism kinds.  A
#: multi-host backend registers here and becomes reachable from every sweep
#: and audit via ``resolve_workers(..., backend="<kind>")``.
EXECUTOR_BACKENDS = Registry("executor backend")
EXECUTOR_BACKENDS.register("serial", SerialExecutorBackend)
EXECUTOR_BACKENDS.register("process", ProcessExecutorBackend)


def create_backend(kind: str, path: str = "workers.backend") -> ExecutorBackend:
    """Build the named backend, with a path-precise error for unknown kinds."""
    return EXECUTOR_BACKENDS.create(ComponentSpec(kind), path)
