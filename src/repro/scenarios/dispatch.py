"""Executor dispatch: worker resolution policy + pluggable chunk backends.

Both parallel executors — the sweep pool (:mod:`repro.scenarios.parallel`) and
the resilience-audit pool (:mod:`repro.scenarios.resilience_parallel`) — share
the same execution shape: group work into amortisation-preserving chunks, run
each chunk through a picklable worker function, stream results back in
completion order, and let the caller reassemble deterministic grid order and
journal per chunk.  This module owns that shape once:

* :func:`resolve_workers` — the worker-count policy.  ``workers="auto"``
  resolves from the CPUs this process may actually use
  (:func:`repro.common.available_cpus`, affinity-aware); an explicit count
  larger than that degrades to the available count with a stderr warning
  instead of oversubscribing; a single available CPU resolves to the
  sequential path, where a pool only adds overhead.
* :class:`ExecutorBackend` — the dispatch interface.  ``"serial"`` and
  ``"process"`` ship built in, registered in :data:`EXECUTOR_BACKENDS` exactly
  like mechanism kinds in ``MECHANISMS``; a future multi-host work-queue
  backend plugs in here without touching either executor.

**The backend contract** (what any new backend must guarantee):

1. *Chunk determinism* — a chunk is a pure function of its payload: the worker
   rehydrates components from spec dicts and every component is bit-identical
   however often it is rebuilt, so running a chunk anywhere (in-process, a
   local worker, another host) yields identical records.
2. *Journal-per-chunk* — results are yielded chunk by chunk as they complete;
   the caller appends them to the results journal immediately, so a crash
   loses at most the in-flight chunks.
3. *Fingerprint-guarded resume* — backends only ever receive the *pending*
   work items; the caller computed those against a journal whose manifest
   fingerprint matched the spec.  A backend must neither reorder fields nor
   rewrite records, or resumed runs would stop being bit-identical.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Union

from repro.common import available_cpus
from repro.scenarios.registry import Registry
from repro.scenarios.spec import ComponentSpec, SpecError

__all__ = [
    "CHUNKS_PER_WORKER",
    "EXECUTOR_BACKENDS",
    "ExecutorBackend",
    "ProcessExecutorBackend",
    "SerialExecutorBackend",
    "WorkerPlan",
    "create_backend",
    "resolve_workers",
    "split_chunks",
]

#: What callers may pass as ``workers``: nothing (sequential), an explicit
#: positive count, or ``"auto"`` (size from the CPUs actually available).
WorkerSpec = Union[None, int, str]

#: Target chunk count per worker.  >1 for two reasons: load balancing (work
#: items vary widely in cost across a grid) and checkpoint granularity — a
#: chunk is the unit of result return, so it bounds how much work a crash can
#: lose between journal appends under parallel execution.
CHUNKS_PER_WORKER = 4


# ------------------------------------------------------------- worker policy --
@dataclass(frozen=True)
class WorkerPlan:
    """The resolved execution plan for one sweep/audit invocation.

    ``workers`` is the resolved process count (1 for the sequential path);
    ``backend`` names the :data:`EXECUTOR_BACKENDS` entry to dispatch through;
    ``requested`` preserves what the caller asked for (``None``, an int, or
    ``"auto"``) so artifacts can record both sides of the resolution.
    """

    requested: WorkerSpec
    workers: int
    backend: str
    capped: bool = False

    @property
    def parallel(self) -> bool:
        return self.backend != "serial" and self.workers > 1


def resolve_workers(
    workers: WorkerSpec,
    *,
    backend: Optional[str] = None,
    path: str = "workers",
) -> WorkerPlan:
    """Resolve a requested worker count into a :class:`WorkerPlan`.

    Policy:

    * ``None`` or ``1`` — the sequential in-process path.
    * ``"auto"`` — as many workers as CPUs this process may run on
      (:func:`repro.common.available_cpus`); on a single available CPU this
      *is* the sequential path, so pool overhead can never be the default.
    * an explicit ``N > available CPUs`` — degrades to the available count
      with a stderr warning instead of oversubscribing (``capped=True``).
    * anything else (0, negatives, other strings) — :class:`SpecError`.

    ``backend`` overrides the dispatch target for parallel plans (default
    ``"process"``); the sequential fallback always plans ``"serial"``.
    """
    cpus = available_cpus()
    capped = False
    if workers is None:
        count = 1
    elif isinstance(workers, str):
        if workers != "auto":
            raise SpecError(
                path, f"workers must be a positive integer or 'auto', got {workers!r}"
            )
        count = cpus
    elif isinstance(workers, bool) or not isinstance(workers, int):
        raise SpecError(
            path, f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    elif workers < 1:
        raise SpecError(path, f"workers must be a positive integer, got {workers}")
    else:
        count = workers
        if count > cpus:
            capped = True
            count = cpus
            print(
                f"workers: requested {workers} workers but only {cpus} "
                f"CPU{'s are' if cpus != 1 else ' is'} available; running "
                f"{count} to avoid oversubscription",
                file=sys.stderr,
            )
    if count <= 1:
        return WorkerPlan(requested=workers, workers=1, backend="serial", capped=capped)
    return WorkerPlan(
        requested=workers, workers=count, backend=backend or "process", capped=capped
    )


# ----------------------------------------------------------------- chunking --
def split_chunks(chunks: List[List[Any]], target: int) -> List[List[Any]]:
    """Split the largest chunks until there are ``target`` of them (or none splits).

    Shared by both executors' chunkers: work items sharing an amortisation key
    start out in one chunk, then the largest chunks are split toward
    ``workers * CHUNKS_PER_WORKER`` total — a grid with fewer distinct keys
    than workers would otherwise serialise.  Splitting is free in correctness
    terms (chunk determinism, point 1 of the backend contract) and only trades
    some cache sharing for parallelism, load balance and journal-checkpoint
    granularity.  Indivisible chunks (single items) are never split, so the
    grouping invariant of each chunker — all rounds of one grid point, all
    cells of one ``(schedule, seed)`` cell — survives.
    """
    chunks = list(chunks)
    while len(chunks) < target:
        largest = max(chunks, key=len, default=None)
        if largest is None or len(largest) < 2:
            break
        chunks.remove(largest)
        middle = (len(largest) + 1) // 2
        chunks.append(largest[:middle])
        chunks.append(largest[middle:])
    return chunks


# ----------------------------------------------------------------- backends --
class ExecutorBackend:
    """Runs worker chunks and streams back their results (see module docstring).

    ``execute`` receives the pre-built chunks, a picklable ``worker`` callable
    (``worker(chunk) -> list of results``) and the resolved worker count; it
    yields individual results in whatever order chunks complete.  The caller
    owns order reassembly and journaling.
    """

    def execute(
        self,
        chunks: List[List[Any]],
        worker: Callable[[List[Any]], List[Any]],
        workers: int,
    ) -> Iterator[Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - stateless built-ins
        """Release backend resources (idempotent); built-ins hold none."""


class SerialExecutorBackend(ExecutorBackend):
    """Run every chunk inline, in order — the degenerate one-worker backend."""

    def execute(self, chunks, worker, workers: int = 1) -> Iterator[Any]:
        for chunk in chunks:
            yield from worker(chunk)


class ProcessExecutorBackend(ExecutorBackend):
    """Run chunks in a local ``ProcessPoolExecutor``, streaming completion order.

    The pool prefers the ``fork`` start method where available, so workers
    inherit runtime registrations (mechanism/workload kinds a calling program
    registered after import).  On spawn-only platforms, custom kinds must be
    registered at import time of a module the workers also import.  A worker
    exception cancels the not-yet-started chunks and re-raises in the parent;
    results of chunks that already completed have been yielded (and journaled)
    by then, so a resumed run only repeats the unfinished chunks.
    """

    def execute(self, chunks, worker, workers: int) -> Iterator[Any]:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)), mp_context=_pool_context()
        ) as pool:
            futures = [pool.submit(worker, chunk) for chunk in chunks]
            try:
                for future in as_completed(futures):
                    yield from future.result()
            except BaseException:
                for future in futures:
                    future.cancel()
                raise


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS configs)
        return None


#: Executor backends by name, registered exactly like mechanism kinds.  A
#: multi-host backend registers here and becomes reachable from every sweep
#: and audit via ``resolve_workers(..., backend="<kind>")``.
EXECUTOR_BACKENDS = Registry("executor backend")
EXECUTOR_BACKENDS.register("serial", SerialExecutorBackend)
EXECUTOR_BACKENDS.register("process", ProcessExecutorBackend)


def create_backend(kind: str, path: str = "workers.backend") -> ExecutorBackend:
    """Build the named backend, with a path-precise error for unknown kinds."""
    return EXECUTOR_BACKENDS.create(ComponentSpec(kind), path)
