"""Sweep execution: run every point of a :class:`SweepSpec`, amortising state.

Mechanisms, workloads, topologies and latency models are resolved once per
distinct configuration (:class:`ComponentCache`) and shared across grid
points, so the vectorized engine's pivot pool and solve memo survive the
whole sweep — the same amortisation the hand-written figure experiments
performed, now applied to every sweep automatically.  Components the sweep
itself created are closed when the sweep finishes, even when a grid point
raises.

:func:`run_sweep` additionally supports

* **parallel execution** (``workers=N``): grid points are dispatched to a
  process pool in amortisation-preserving chunks
  (:mod:`repro.scenarios.parallel`); records come back in deterministic grid
  order regardless of completion order, bit-identical to a sequential run on
  every deterministic :class:`RunRecord` field;
* **a persistent results store** (``store=path``): every record is journaled
  as it completes (:class:`repro.scenarios.store.ResultsStore`) and
  ``resume=True`` skips grid rounds the journal already holds.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.net.latency import LatencyModel
from repro.obs.context import current_observation
from repro.scenarios.runner import (
    RunRecord,
    build_latency_model,
    build_mechanism,
    build_topology,
    build_workload,
    run_scenario,
)
from repro.scenarios.spec import ScenarioSpec, SpecError, SweepSpec, spec_to_dict

__all__ = ["ComponentCache", "SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """All records of one sweep, in grid order, with JSON export.

    ``executed_rounds`` counts the rounds this invocation actually ran;
    ``resumed_rounds`` counts the rounds served from a results journal
    (``run_sweep(..., store=..., resume=True)``).  For a store-less sweep
    ``executed_rounds == len(records)`` and ``resumed_rounds == 0``.

    ``quarantined`` lists the rounds the crash-tolerant executor gave up on
    (``run_sweep(..., failure_mode="quarantine")``): one ``{"point",
    "instance", "error"}`` dict per skipped round, in completion order.
    Those rounds have no :class:`RunRecord` in ``records``; with a store
    they are journaled as ``quarantine`` entries and a later ``--resume``
    re-executes exactly them.
    """

    name: str
    base: Dict[str, Any]
    records: List[RunRecord] = field(default_factory=list)
    executed_rounds: int = 0
    resumed_rounds: int = 0
    quarantined: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "sweep": self.name,
            "base": self.base,
            "records": [record.to_dict() for record in self.records],
        }
        if self.quarantined:
            data["quarantined"] = [dict(entry) for entry in self.quarantined]
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def series(self) -> Dict[str, List[RunRecord]]:
        """Records grouped by series label, preserving grid order."""
        groups: Dict[str, List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.series, []).append(record)
        return groups


class ComponentCache:
    """Memoised spec-to-component resolution shared across grid points.

    One instance backs one executor — the sequential sweep loop, a parallel
    worker's chunk, or any caller that runs many related scenarios.  Each
    component family is built once per distinct canonical configuration key
    and shared by every round that hashes to it, so the vectorized engine's
    pivot pool and solve memo are amortised across the whole grid.  Sharing
    is bit-exact: workloads and latency models are pure functions of their
    construction parameters (every ``generate``/``delay`` call derives its
    randomness from explicit seeds), and mechanism caches only memoise pure
    solves.

    :meth:`close` shuts down every mechanism the cache created (idempotent);
    always call it — or use the cache as a context manager — so worker-side
    pivot pools do not outlive the sweep, even when a grid point raises.
    """

    def __init__(self) -> None:
        self._mechanisms: Dict[Tuple[Any, ...], Any] = {}
        self._workloads: Dict[Tuple[Any, ...], Any] = {}
        self._topologies: Dict[Tuple[Any, ...], Any] = {}
        self._latencies: Dict[Tuple[Any, ...], Any] = {}

    def mechanism(self, spec: ScenarioSpec):
        return _cached(self._mechanisms, _mechanism_key(spec), build_mechanism, spec)

    def workload(self, spec: ScenarioSpec):
        return _cached(self._workloads, _workload_key(spec), build_workload, spec)

    def topology(self, spec: ScenarioSpec):
        if spec.topology is None:
            return None
        return _cached(self._topologies, _topology_key(spec), build_topology, spec)

    def latency(self, spec: ScenarioSpec, topology=None) -> LatencyModel:
        key = _latency_key(spec)
        if key not in self._latencies:
            self._latencies[key] = build_latency_model(spec, topology)
        return self._latencies[key]

    def close(self) -> None:
        """Release engine resources held by cached mechanisms (idempotent)."""
        mechanisms = list(self._mechanisms.values())
        self._mechanisms.clear()
        for mechanism in mechanisms:
            close = getattr(mechanism, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ComponentCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_sweep(
    sweep: SweepSpec,
    *,
    latency_model: Optional[LatencyModel] = None,
    workers: Union[None, int, str] = None,
    backend: Optional[str] = None,
    store=None,
    store_format: Optional[str] = None,
    resume: bool = False,
    failure_mode: str = "raise",
) -> SweepResult:
    """Run every grid point of the sweep and collect the records in grid order.

    Args:
        sweep: the sweep specification.
        latency_model: optional pre-built model overriding every point's
            ``latency`` reference (used by the figure experiments to honour a
            caller-supplied model object that has no spec representation).
            Raises :class:`SpecError` when the sweep itself varies ``latency``
            — the override would silently swallow that axis.
        workers: run grid points in a pool of worker processes.  ``"auto"``
            sizes the pool from the CPUs this process may actually use;
            an explicit count larger than that degrades to the available
            count with a stderr warning; ``None``/``1`` (and any resolution
            landing on one CPU) is the sequential, in-process path.  See
            :func:`~repro.scenarios.dispatch.resolve_workers`.  Chunking
            preserves the per-configuration state amortisation; records are
            identical to a sequential run on all deterministic fields and
            come back in the same grid order.
        backend: dispatch parallel chunks through a named
            :data:`~repro.scenarios.dispatch.EXECUTOR_BACKENDS` entry instead
            of the default local ``"process"`` pool.
        store: a results journal — a path (``str``/``PathLike``) or a
            :class:`~repro.scenarios.store.ResultsStore` — appended to as
            records complete.  The journal doubles as the sweep's artifact
            and as a checkpoint for ``resume``.
        store_format: with a path ``store``, which
            :data:`~repro.scenarios.store.STORE_BACKENDS` file format a fresh
            journal is written in (``"jsonl"``/``"columnar"``; default jsonl).
            Existing journals are sniffed — a format contradicting what is on
            disk is a :class:`SpecError` naming both formats.
        resume: with ``store``, skip grid rounds the journal already holds
            (the journal's manifest must match this sweep) and re-run only
            the missing ones.  Journaled records are returned bit-identically
            regardless of the journal's backend.
        failure_mode: what a parallel run does when a worker fails.
            ``"raise"`` (default) fails fast with the worker's traceback
            after journaling every completed round; ``"quarantine"`` opts
            into the crash-tolerant executor — bounded chunk retries, worker
            death survived in a fresh pool, and rounds that keep failing
            recorded in :attr:`SweepResult.quarantined` (and journaled) while
            the rest of the grid completes.  The sequential path always
            fails fast: there is no worker boundary to contain the failure.
    """
    from repro.scenarios.dispatch import ChunkQuarantine, resolve_workers

    if failure_mode not in ("raise", "quarantine"):
        raise SpecError(
            "failure_mode",
            f"failure_mode must be 'raise' or 'quarantine', got {failure_mode!r}",
        )
    plan = resolve_workers(workers, backend=backend)
    if latency_model is not None:
        conflict = _latency_override_conflict(sweep)
        if conflict is not None:
            raise SpecError(
                conflict,
                "this sweep varies the latency model, but the caller-supplied "
                "latency_model override applies to every grid point and would "
                "silently ignore the variation; drop the override or the "
                "latency override in the sweep grid",
            )
    scenarios = sweep.scenarios()

    journal = _as_store(store, store_format)
    completed: Dict[Tuple[int, int], RunRecord] = {}
    if journal is not None:
        completed = journal.begin(
            sweep, total_rounds=sum(spec.rounds for spec in scenarios), resume=resume
        )

    tasks = [
        (
            index,
            spec,
            [i for i in range(spec.rounds) if (index, i) not in completed],
        )
        for index, spec in enumerate(scenarios)
    ]
    fresh: Dict[Tuple[int, int], RunRecord] = {}
    quarantined: List[Dict[str, Any]] = []
    quarantined_keys: set = set()
    try:
        if plan.parallel and any(t[2] for t in tasks):
            from repro.scenarios.parallel import execute_parallel

            stream = execute_parallel(
                tasks, plan.workers, latency_model, plan.backend, failure_mode
            )
        else:
            stream = _execute_serial(tasks, latency_model)
        try:
            for item in stream:
                if isinstance(item, ChunkQuarantine):
                    for q_index, _payload, q_instances in item.items:
                        for q_instance in q_instances:
                            quarantined.append(
                                {
                                    "point": q_index,
                                    "instance": q_instance,
                                    "error": item.error,
                                }
                            )
                            quarantined_keys.add((q_index, q_instance))
                            if journal is not None:
                                journal.append_quarantine(
                                    q_index, q_instance, item.error, item.traceback
                                )
                    continue
                index, instance, record = item
                fresh[(index, instance)] = record
                if journal is not None:
                    journal.append(index, instance, record)
        finally:
            stream.close()
    finally:
        if journal is not None:
            journal.close()

    result = SweepResult(
        name=sweep.name,
        base=spec_to_dict(sweep.base),
        executed_rounds=len(fresh),
        resumed_rounds=len(completed),
        quarantined=quarantined,
    )
    for index, spec in enumerate(scenarios):
        for instance in range(spec.rounds):
            record = fresh.get((index, instance))
            if record is None and (index, instance) in quarantined_keys:
                continue  # the executor gave up on this round; no record exists
            if record is None:
                record = completed[(index, instance)]
            result.records.append(record)
    _observe_sweep(sweep, scenarios, fresh, completed, quarantined)
    return result


def _observe_sweep(sweep, scenarios, fresh, completed, quarantined) -> None:
    """Observability hook: per-grid-point executor spans + sweep counters.

    Emitted here — after the grid-order reassembly, on the parent process —
    rather than inside the executors, so the trace is identical whether the
    rounds ran serially, in a worker pool, or came out of a resumed journal.
    Executor spans have no sim clock; their timeline is the grid itself
    (``ts`` = grid index, ``dur`` = the point's total modelled elapsed).
    """
    obs = current_observation()
    if obs is None:
        return
    tracer = obs.tracer
    metrics = obs.metrics
    if tracer is not None and tracer.active:
        for index, spec in enumerate(scenarios):
            elapsed = sum(
                record.elapsed_seconds
                for (point, _instance), record in sorted(fresh.items())
                if point == index
            )
            executed = sum(1 for point, _ in fresh if point == index)
            reused = sum(1 for point, _ in completed if point == index)
            tracer.emit(
                "grid_point",
                "executor",
                ts=float(index),
                dur=float(max(elapsed, 0.0)),
                sweep=sweep.name,
                point=index,
                scenario=spec.name,
                executed=executed,
                reused=reused,
            )
    if metrics is not None:
        metrics.counter("sweep.points").inc(len(scenarios))
        metrics.counter("sweep.rounds_executed").inc(len(fresh))
        metrics.counter("sweep.rounds_reused").inc(len(completed))
        metrics.counter("executor.quarantined").inc(len(quarantined))
        for _key, record in sorted(fresh.items()):
            metrics.histogram("executor.round_elapsed").observe(record.elapsed_seconds)


# ------------------------------------------------------------------- execution --
def run_point_rounds(
    cache: ComponentCache,
    spec: ScenarioSpec,
    instances,
    latency_model: Optional[LatencyModel] = None,
) -> Iterator[Tuple[int, RunRecord]]:
    """Run the given workload instances of one grid point through the cache.

    Shared by the sequential sweep loop and the parallel workers
    (:func:`repro.scenarios.parallel.execute_chunk`), so the two paths cannot
    drift apart on how components are resolved and amortised.
    """
    instances = list(instances)
    if not instances:
        return
    mechanism = cache.mechanism(spec)
    workload = cache.workload(spec)
    topology = cache.topology(spec)
    model = latency_model
    if model is None and spec.runner != "centralized":
        # The centralised baseline never consumes latency; keep it unbuilt so
        # the cached path stays semantically identical to bare run_scenario.
        model = cache.latency(spec, topology)
    for instance in instances:
        yield instance, run_scenario(
            spec,
            instance,
            mechanism=mechanism,
            workload=workload,
            latency_model=model,
            topology=topology,
        )


def _execute_serial(tasks, latency_model) -> Iterator[Tuple[int, int, RunRecord]]:
    cache = ComponentCache()
    try:
        for index, spec, instances in tasks:
            for instance, record in run_point_rounds(cache, spec, instances, latency_model):
                yield index, instance, record
    finally:
        cache.close()


def _as_store(store, store_format=None):
    if store is None:
        return None
    from repro.scenarios.store import ResultsStore

    if isinstance(store, ResultsStore):
        if store_format is not None:
            store.format = store_format
        return store
    return ResultsStore(store, format=store_format)


def _latency_override_conflict(sweep: SweepSpec) -> Optional[str]:
    """The spec path of a latency variation in the grid, or ``None``."""
    for i, point in enumerate(sweep.points):
        for key in point:
            if key == "latency" or key.startswith("latency."):
                return f"points[{i}].{key}"
    for key, _values in sweep.axes:
        if key == "latency" or key.startswith("latency."):
            return f"axes.{key}"
    return None


# ----------------------------------------------------------------- cache keys --
def _cached(cache: Dict, key, builder, spec: ScenarioSpec):
    if key not in cache:
        cache[key] = builder(spec)
    return cache[key]


def _canonical(value: Any) -> Tuple[Any, ...]:
    """A hashable, order-insensitive canonical form of a spec parameter value.

    Mappings are sorted by key at every nesting level, so semantically equal
    params that differ only in dict insertion order produce the same key.
    Scalars — mapping keys included — are tagged with their type: conflating
    ``1``/``1.0``/``True`` (or the keys ``2``/``"2"``) could alias two
    configurations that build different components, whereas distinguishing
    them merely costs a cache miss.
    """
    if isinstance(value, Mapping):
        # Mapping keys are hashable scalars, so their canonical forms are
        # mutually comparable tuples — sortable without stringification.
        return (
            "map",
            tuple(sorted((_canonical(k), _canonical(v)) for k, v in value.items())),
        )
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical(item) for item in value))
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, numbers.Integral):
        return ("int", int(value))
    if isinstance(value, numbers.Real):
        return ("float", float(value))
    if isinstance(value, str):
        return ("str", value)
    if value is None:
        return ("none",)
    return ("repr", type(value).__name__, repr(value))


def _component_key(component) -> Tuple[Any, ...]:
    return (component.kind, _canonical(component.params))


def _mechanism_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.mechanism), spec.engine)


def _workload_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.effective_workload()), spec.seed)


def _topology_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.topology), spec.seed, spec.providers, spec.users)


def _latency_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    key = _component_key(spec.latency)
    if spec.latency.kind == "community":
        # The model is derived from the generated topology: key it like one.
        return key + _topology_key(spec)
    return key
