"""Sweep execution: run every point of a :class:`SweepSpec`, amortising state.

Mechanisms (and workloads) are resolved once per distinct configuration and
shared across grid points, so the vectorized engine's pivot pool and solve
memo survive the whole sweep — the same amortisation the hand-written figure
experiments performed, now applied to every sweep automatically.  Mechanisms
the sweep itself created are closed when the sweep finishes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.net.latency import LatencyModel
from repro.scenarios.runner import (
    RunRecord,
    build_mechanism,
    build_topology,
    build_workload,
    run_scenario,
)
from repro.scenarios.spec import ScenarioSpec, SweepSpec, spec_to_dict

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """All records of one sweep, in grid order, with JSON export."""

    name: str
    base: Dict[str, Any]
    records: List[RunRecord] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.name,
            "base": self.base,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def series(self) -> Dict[str, List[RunRecord]]:
        """Records grouped by series label, preserving grid order."""
        groups: Dict[str, List[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.series, []).append(record)
        return groups


def run_sweep(
    sweep: SweepSpec,
    *,
    latency_model: Optional[LatencyModel] = None,
) -> SweepResult:
    """Run every grid point of the sweep and collect the records.

    Args:
        sweep: the sweep specification.
        latency_model: optional pre-built model overriding every point's
            ``latency`` reference (used by the figure experiments to honour a
            caller-supplied model object that has no spec representation).
    """
    scenarios = sweep.scenarios()
    result = SweepResult(name=sweep.name, base=spec_to_dict(sweep.base))

    mechanisms: Dict[Tuple[Any, ...], Any] = {}
    workloads: Dict[Tuple[Any, ...], Any] = {}
    topologies: Dict[Tuple[Any, ...], Any] = {}
    try:
        for spec in scenarios:
            mechanism = _cached(mechanisms, _mechanism_key(spec), build_mechanism, spec)
            workload = _cached(workloads, _workload_key(spec), build_workload, spec)
            topology = None
            if spec.topology is not None:
                topology = _cached(topologies, _topology_key(spec), build_topology, spec)
            for instance in range(spec.rounds):
                result.records.append(
                    run_scenario(
                        spec,
                        instance,
                        mechanism=mechanism,
                        workload=workload,
                        latency_model=latency_model,
                        topology=topology,
                    )
                )
    finally:
        for mechanism in mechanisms.values():
            close = getattr(mechanism, "close", None)
            if close is not None:
                close()
    return result


def _cached(cache: Dict, key, builder, spec: ScenarioSpec):
    if key not in cache:
        cache[key] = builder(spec)
    return cache[key]


def _component_key(component) -> Tuple[Any, ...]:
    # repr keeps the key hashable even when parameters hold lists.
    return (component.kind, repr(sorted(component.params.items())))


def _mechanism_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.mechanism), spec.engine)


def _workload_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.effective_workload()), spec.seed)


def _topology_key(spec: ScenarioSpec) -> Tuple[Any, ...]:
    return (_component_key(spec.topology), spec.seed, spec.providers, spec.users)
