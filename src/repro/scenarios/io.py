"""Loading and dumping scenario / sweep specs as JSON or TOML files.

The on-disk shape is exactly what :func:`~repro.scenarios.spec.spec_to_dict`
and :func:`~repro.scenarios.spec.sweep_to_dict` produce: plain tables of
scalars, lists and sub-tables, with no ``None`` values (TOML has no null).
The format is chosen by file extension (``.json`` / ``.toml``).

TOML reading uses the standard library's :mod:`tomllib`; writing uses a small
emitter restricted to the spec shape (scalars, lists of scalars, tables,
arrays of tables) — enough for a lossless round-trip of every spec this
package can produce, without depending on a third-party TOML writer.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Union

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: stdlib tomllib arrived in 3.11
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]  # JSON specs still work

_TOML_DECODE_ERROR = tomllib.TOMLDecodeError if tomllib is not None else ()

from repro.scenarios.spec import (
    ScenarioSpec,
    SpecError,
    SweepSpec,
    spec_from_dict,
    spec_to_dict,
    sweep_from_dict,
    sweep_to_dict,
)

__all__ = [
    "load_spec",
    "load_sweep",
    "load_resilience",
    "load_chaos",
    "load_any",
    "dump_spec",
    "dump_sweep",
    "dump_resilience",
    "dump_chaos",
    "dumps_toml",
]

_FORMATS = (".json", ".toml")


def _format_of(path: Union[str, os.PathLike]) -> str:
    extension = os.path.splitext(os.fspath(path))[1].lower()
    if extension not in _FORMATS:
        raise SpecError(
            str(path),
            f"cannot infer spec format from extension {extension!r}; "
            "use a .json or .toml file",
        )
    return extension


def _read_table(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    extension = _format_of(path)
    if extension == ".toml" and tomllib is None:
        raise SpecError(
            str(path),
            "reading TOML specs requires Python 3.11+ (tomllib) or the 'tomli' "
            "package; use a JSON spec file on this interpreter",
        )
    try:
        if extension == ".json":
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
    except FileNotFoundError:
        raise SpecError(str(path), "spec file not found") from None
    except OSError as exc:
        raise SpecError(str(path), f"cannot read spec file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(str(path), f"invalid JSON: {exc}") from exc
    except _TOML_DECODE_ERROR as exc:
        raise SpecError(str(path), f"invalid TOML: {exc}") from exc
    if not isinstance(data, Mapping):
        raise SpecError(str(path), f"expected a table at the top level, got {type(data).__name__}")
    return dict(data)


def load_spec(path: Union[str, os.PathLike]) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a ``.json`` or ``.toml`` file."""
    data = _read_table(path)
    try:
        return spec_from_dict(data)
    except SpecError as exc:
        raise SpecError(str(path), exc.args[0]) from exc


def load_sweep(path: Union[str, os.PathLike]) -> SweepSpec:
    """Load a :class:`SweepSpec` from a ``.json`` or ``.toml`` file."""
    data = _read_table(path)
    try:
        return sweep_from_dict(data)
    except SpecError as exc:
        raise SpecError(str(path), exc.args[0]) from exc


def load_resilience(path: Union[str, os.PathLike]):
    """Load a :class:`~repro.scenarios.resilience.ResilienceSpec` from a file.

    A resilience spec file is a ``base`` scenario table plus the audit fields
    (``k`` / ``coalitions`` / ``adversaries`` / ``schedules`` / ``seeds``);
    it is loaded only by the ``resilience`` entry points, so ``load_any``'s
    sweep detection is unaffected.
    """
    from repro.scenarios.resilience import resilience_from_dict

    data = _read_table(path)
    try:
        return resilience_from_dict(data)
    except SpecError as exc:
        raise SpecError(str(path), exc.args[0]) from exc


def load_chaos(path: Union[str, os.PathLike]):
    """Load a :class:`~repro.scenarios.chaos.ChaosSpec` from a file.

    A chaos spec file is a ``base`` scenario table plus the audit fields
    (``faults`` / ``recovery`` / ``seeds``); it is loaded only by the
    ``chaos`` entry points, so ``load_any``'s sweep detection is unaffected.
    """
    from repro.scenarios.chaos import chaos_from_dict

    data = _read_table(path)
    try:
        return chaos_from_dict(data)
    except SpecError as exc:
        raise SpecError(str(path), exc.args[0]) from exc


def load_any(path: Union[str, os.PathLike]) -> Union[ScenarioSpec, SweepSpec]:
    """Load whichever spec the file holds.

    A table with a ``base``, ``points`` or ``axes`` key is a sweep; anything
    else is a single scenario.
    """
    data = _read_table(path)
    is_sweep = any(key in data for key in ("base", "points", "axes"))
    try:
        return sweep_from_dict(data) if is_sweep else spec_from_dict(data)
    except SpecError as exc:
        raise SpecError(str(path), exc.args[0]) from exc


def dump_spec(spec: ScenarioSpec, path: Union[str, os.PathLike]) -> None:
    """Write the spec to ``path`` as JSON or TOML (by extension)."""
    _write_table(spec_to_dict(spec), path)


def dump_sweep(sweep: SweepSpec, path: Union[str, os.PathLike]) -> None:
    """Write the sweep spec to ``path`` as JSON or TOML (by extension)."""
    _write_table(sweep_to_dict(sweep), path)


def dump_resilience(spec, path: Union[str, os.PathLike]) -> None:
    """Write a resilience spec to ``path`` as JSON or TOML (by extension)."""
    from repro.scenarios.resilience import resilience_to_dict

    _write_table(resilience_to_dict(spec), path)


def dump_chaos(spec, path: Union[str, os.PathLike]) -> None:
    """Write a chaos spec to ``path`` as JSON or TOML (by extension)."""
    from repro.scenarios.chaos import chaos_to_dict

    _write_table(chaos_to_dict(spec), path)


def _write_table(data: Dict[str, Any], path: Union[str, os.PathLike]) -> None:
    extension = _format_of(path)
    if extension == ".json":
        text = json.dumps(data, indent=2) + "\n"
    else:
        text = dumps_toml(data)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


# ------------------------------------------------------------------ TOML writing --
def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialize a spec-shaped mapping to TOML text.

    Supports the value shapes spec serialization produces: strings, booleans,
    integers, floats, homogeneous lists of scalars, nested tables, lists of
    tables (emitted as ``[[arrays.of.tables]]``), and mixed lists of scalars
    and tables (tables emitted inline — the shape of an adversary library
    like ``["equivocate", {kind = "crash", max_sends = 4}]``).
    """
    lines: List[str] = []
    _emit_table(data, prefix=(), lines=lines)
    return "\n".join(lines) + "\n"


def _emit_table(table: Mapping[str, Any], prefix, lines: List[str]) -> None:
    scalar_items = []
    table_items = []
    array_items = []
    for key, value in table.items():
        if isinstance(value, Mapping):
            table_items.append((key, value))
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(item, Mapping) for item in value
        ):
            array_items.append((key, value))
        else:
            scalar_items.append((key, value))
    for key, value in scalar_items:
        lines.append(f"{_toml_key(key)} = {_toml_value(value, key)}")
    for key, value in table_items:
        lines.append("")
        lines.append(f"[{'.'.join(_toml_key(part) for part in (*prefix, key))}]")
        _emit_table(value, (*prefix, key), lines)
    for key, entries in array_items:
        header = ".".join(_toml_key(part) for part in (*prefix, key))
        for entry in entries:
            lines.append("")
            lines.append(f"[[{header}]]")
            _emit_table(entry, (*prefix, key), lines)


def _toml_key(key: str) -> str:
    if key and all(c.isalnum() or c in "-_" for c in key):
        return key
    return json.dumps(key)


def _toml_value(value: Any, key: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SpecError(key, "non-finite floats are not representable in spec files")
        text = repr(value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item, key) for item in value) + "]"
    if isinstance(value, Mapping):
        inner = ", ".join(
            f"{_toml_key(k)} = {_toml_value(v, k)}" for k, v in value.items()
        )
        return "{" + inner + "}"
    raise SpecError(key, f"cannot serialize {type(value).__name__} values to TOML")
