"""Parallel resilience audits: coalition-deviation cells through a backend.

The same dispatch machinery as the parallel sweep executor
(:mod:`repro.scenarios.dispatch`), specialised to the audit grid: cells are
grouped into chunks by their ``(schedule, seed)`` baseline-sharing key, and
each chunk runs in one worker through the same :class:`~repro.scenarios
.resilience.AuditContext` the sequential path uses — so each worker solves the
honest baseline once per ``(schedule, seed)`` group it holds, exactly as the
sequential loop does globally.  When load balancing splits a group across
chunks, the extra workers recompute a baseline that is bit-identical (the
simulation is a pure function of ``(mechanism, workload, schedule, seed)``),
so chunking can never change a verdict — only wall-clock.

Workers rehydrate the audit from a ``resilience_to_dict`` payload: nothing but
JSON-shaped data crosses the process boundary, and every result is a plain
frozen :class:`~repro.scenarios.resilience.ResilienceRecord`.  Results stream
back in completion order carrying their ``(point, instance)`` key; the caller
(:func:`~repro.scenarios.resilience.run_resilience`) reassembles deterministic
grid order regardless of scheduling.  Journaling is equally caller-side and
store-agnostic — ``run_resilience`` appends completed cells to whatever
:data:`~repro.scenarios.store.STORE_BACKENDS` backend owns the journal, so
audit artifacts may be jsonl or columnar without this module knowing.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterator, List, Tuple

from repro.scenarios.dispatch import CHUNKS_PER_WORKER, create_backend, split_chunks
from repro.scenarios.resilience import (
    ResilienceRecord,
    ResilienceSpec,
    execute_cells,
    resilience_from_dict,
    resilience_to_dict,
)

__all__ = ["chunk_cells", "execute_chunk", "execute_parallel"]

#: One unit of worker work: the (grid point, seed instance) of a cell.
CellTask = Tuple[int, int]


def chunk_cells(
    spec: ResilienceSpec, cells: List[CellTask], workers: int
) -> List[List[CellTask]]:
    """Group pending audit cells into worker chunks.

    Cells sharing a ``(schedule, seed)`` baseline start out in one chunk, then
    the largest chunks are split toward ``workers * CHUNKS_PER_WORKER`` total
    (:func:`~repro.scenarios.dispatch.split_chunks`) — an audit with one
    schedule and one seed (the common case) would otherwise serialise.
    Splitting only costs a bit-identical baseline recomputation in the extra
    workers; it never changes a verdict.
    """
    grid = spec.cells()
    grouped: Dict[Tuple[int, int], List[CellTask]] = {}
    for point, instance in cells:
        grouped.setdefault((grid[point][0], instance), []).append((point, instance))
    return split_chunks(list(grouped.values()), workers * CHUNKS_PER_WORKER)


def execute_chunk(
    payload: Dict[str, Any], cells: List[CellTask]
) -> List[Tuple[int, int, ResilienceRecord]]:
    """Worker body: run one chunk through a fresh audit context.

    ``execute_cells`` closes its context (and any engine pools the mechanism
    holds) in a ``finally``, even when a cell raises mid-chunk.
    """
    spec = resilience_from_dict(payload)
    return list(execute_cells(spec, cells))


def execute_parallel(
    spec: ResilienceSpec,
    cells: List[CellTask],
    workers: int,
    backend: str = "process",
) -> Iterator[Tuple[int, int, ResilienceRecord]]:
    """Run pending audit cells through an executor backend, yielding as they land.

    Yields ``(point, instance, record)`` in *completion* order — the caller
    owns grid-order reassembly (and journaling, which wants completion order
    anyway).  ``backend`` names an
    :data:`~repro.scenarios.dispatch.EXECUTOR_BACKENDS` entry; the default
    local process pool cancels not-yet-started chunks on a worker exception,
    so a resumed audit only repeats the unfinished chunks.
    """
    chunks = chunk_cells(spec, cells, workers)
    if not chunks:
        return
    worker = functools.partial(execute_chunk, resilience_to_dict(spec))
    yield from create_backend(backend).execute(chunks, worker, workers)
