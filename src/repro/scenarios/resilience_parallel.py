"""Parallel resilience audits: coalition-deviation cells in a process pool.

The same chunking machinery as the parallel sweep executor
(:mod:`repro.scenarios.parallel`), specialised to the audit grid: cells are
grouped into chunks by their ``(schedule, seed)`` baseline-sharing key, and
each chunk runs in one worker through the same :class:`~repro.scenarios
.resilience.AuditContext` the sequential path uses — so each worker solves the
honest baseline once per ``(schedule, seed)`` group it holds, exactly as the
sequential loop does globally.  When load balancing splits a group across
chunks, the extra workers recompute a baseline that is bit-identical (the
simulation is a pure function of ``(mechanism, workload, schedule, seed)``),
so chunking can never change a verdict — only wall-clock.

Workers rehydrate the audit from a ``resilience_to_dict`` payload: nothing but
JSON-shaped data crosses the process boundary, and every result is a plain
frozen :class:`~repro.scenarios.resilience.ResilienceRecord`.  Results stream
back in completion order carrying their ``(point, instance)`` key; the caller
(:func:`~repro.scenarios.resilience.run_resilience`) reassembles deterministic
grid order regardless of scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Dict, Iterator, List, Tuple

from repro.scenarios.parallel import CHUNKS_PER_WORKER, _pool_context
from repro.scenarios.resilience import (
    ResilienceRecord,
    ResilienceSpec,
    execute_cells,
    resilience_from_dict,
    resilience_to_dict,
)

__all__ = ["chunk_cells", "execute_chunk", "execute_parallel"]

#: One unit of worker work: the (grid point, seed instance) of a cell.
CellTask = Tuple[int, int]


def chunk_cells(
    spec: ResilienceSpec, cells: List[CellTask], workers: int
) -> List[List[CellTask]]:
    """Group pending audit cells into worker chunks.

    Cells sharing a ``(schedule, seed)`` baseline start out in one chunk, then
    the largest chunks are split toward ``workers * CHUNKS_PER_WORKER`` total —
    an audit with one schedule and one seed (the common case) would otherwise
    serialise.  Splitting only costs a bit-identical baseline recomputation in
    the extra workers; it never changes a verdict.
    """
    grid = spec.cells()
    grouped: Dict[Tuple[int, int], List[CellTask]] = {}
    for point, instance in cells:
        grouped.setdefault((grid[point][0], instance), []).append((point, instance))
    chunks = list(grouped.values())
    while len(chunks) < workers * CHUNKS_PER_WORKER:
        largest = max(chunks, key=len, default=None)
        if largest is None or len(largest) < 2:
            break
        chunks.remove(largest)
        middle = (len(largest) + 1) // 2
        chunks.append(largest[:middle])
        chunks.append(largest[middle:])
    return chunks


def execute_chunk(
    payload: Dict[str, Any], cells: List[CellTask]
) -> List[Tuple[int, int, ResilienceRecord]]:
    """Worker body: run one chunk through a fresh audit context.

    ``execute_cells`` closes its context (and any engine pools the mechanism
    holds) in a ``finally``, even when a cell raises mid-chunk.
    """
    spec = resilience_from_dict(payload)
    return list(execute_cells(spec, cells))


def execute_parallel(
    spec: ResilienceSpec, cells: List[CellTask], workers: int
) -> Iterator[Tuple[int, int, ResilienceRecord]]:
    """Run pending audit cells in a process pool, yielding records as they land.

    Yields ``(point, instance, record)`` in *completion* order — the caller
    owns grid-order reassembly (and journaling, which wants completion order
    anyway).  A worker exception cancels the not-yet-started chunks and
    re-raises in the parent; records of chunks that already completed have
    been yielded (and journaled) by then, so a resumed audit only repeats the
    unfinished chunks.
    """
    chunks = chunk_cells(spec, cells, workers)
    if not chunks:
        return
    payload = resilience_to_dict(spec)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)), mp_context=_pool_context()
    ) as pool:
        futures = [pool.submit(execute_chunk, payload, chunk) for chunk in chunks]
        try:
            for future in as_completed(futures):
                yield from future.result()
        except BaseException:
            for future in futures:
                future.cancel()
            raise
