"""Built-in sweep specs: the paper's Figure 4 and Figure 5 experiments as data.

These builders produce pure-data :class:`~repro.scenarios.spec.SweepSpec`
objects whose execution through :func:`~repro.scenarios.sweep.run_sweep` is
exactly what :class:`~repro.bench.harness.Figure4Experiment` and
:class:`~repro.bench.harness.Figure5Experiment` run — the experiments are thin
wrappers over these specs, and ``repro-auction fig4`` / ``fig5`` and
``repro-auction sweep --spec fig4.json`` share one code path (locked by
``tests/scenarios/test_differential.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.auctions.engine import DEFAULT_ENGINE
from repro.scenarios.spec import ComponentSpec, ScenarioSpec, SpecError, SweepSpec

__all__ = ["figure4_sweep", "figure5_sweep", "builtin_sweep", "BUILTIN_SWEEPS"]


def figure4_sweep(
    num_providers: int = 8,
    k_values: Sequence[int] = (1, 2, 3),
    n_values: Sequence[int] = (100, 200, 400, 600, 800, 1000),
    seed: int = 0,
) -> SweepSpec:
    """Figure 4 (§6.2): double-auction running time, centralised vs k ∈ {1,2,3}.

    The distributed points run the protocol on the minimum ``2k+1`` executors
    out of the ``num_providers`` sellers, exactly as the paper's evaluation.
    """
    base = ScenarioSpec(
        name="fig4",
        mechanism=ComponentSpec("double"),
        providers=num_providers,
        latency=ComponentSpec("wan"),
        seed=seed,
        measure_compute=True,
    )
    points: List[Dict[str, object]] = []
    for n in n_values:
        points.append({"users": n, "runner": "centralized", "series": "centralised"})
        for k in k_values:
            executors = 2 * k + 1
            if executors > num_providers:
                raise SpecError(
                    "axes.k",
                    f"k={k} needs {executors} providers, have {num_providers}",
                )
            points.append(
                {
                    "users": n,
                    "config.k": k,
                    "executors": executors,
                    "series": f"distributed k={k}",
                }
            )
    return SweepSpec(base=base, name="fig4", points=tuple(points))


def figure5_sweep(
    num_providers: int = 8,
    p_values: Sequence[int] = (1, 2, 4),
    n_values: Sequence[int] = (25, 50, 75, 100, 125),
    epsilon: float = 0.25,
    engine: Optional[str] = DEFAULT_ENGINE,
    seed: int = 0,
) -> SweepSpec:
    """Figure 5 (§6.3): standard-auction running time for parallelism p ∈ {1,2,4}.

    ``p = 1`` is the centralised baseline; ``p > 1`` runs the parallel
    allocator over all providers with ``k = ⌊m/p⌋ - 1``.  ``engine`` defaults
    to the library default (the vectorized engine); pass ``"reference"`` to
    time the reference implementation — results are bit-identical either way.
    """
    base = ScenarioSpec(
        name="fig5",
        mechanism=ComponentSpec("standard", {"epsilon": epsilon}),
        engine=engine,
        providers=num_providers,
        latency=ComponentSpec("wan"),
        seed=seed,
        measure_compute=True,
    )
    points: List[Dict[str, object]] = []
    for n in n_values:
        for p in p_values:
            if p < 1 or p > num_providers:
                raise SpecError(
                    "axes.parallelism", f"parallelism must be in [1, {num_providers}]"
                )
            if p <= 1:
                points.append(
                    {"users": n, "runner": "centralized", "series": "p=1 (centralised)"}
                )
            else:
                k = num_providers // p - 1
                points.append(
                    {
                        "users": n,
                        "config.k": k,
                        "config.parallel": True,
                        "config.num_groups": p,
                        "series": f"p={p} (distributed, k={k})",
                    }
                )
    return SweepSpec(base=base, name="fig5", points=tuple(points))


#: Named builders reachable from the CLI (``repro-auction sweep --figure ...``).
BUILTIN_SWEEPS = {
    "fig4": figure4_sweep,
    "fig5": figure5_sweep,
}


def builtin_sweep(name: str, **kwargs) -> SweepSpec:
    """Build a named built-in sweep, forwarding keyword overrides."""
    builder = BUILTIN_SWEEPS.get(name)
    if builder is None:
        raise SpecError(
            "figure",
            f"unknown built-in sweep {name!r}; available: {', '.join(sorted(BUILTIN_SWEEPS))}",
        )
    return builder(**kwargs)
