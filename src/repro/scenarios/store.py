"""Persistent sweep results behind pluggable store backends.

One :class:`ResultsStore` file is both the sweep's durable artifact and its
checkpoint.  The same machinery journals resilience audits
(:mod:`repro.scenarios.resilience`): the store is parametrised by a record
type (any class with a lossless ``to_dict``/``from_dict`` pair — default
:class:`~repro.scenarios.runner.RunRecord`) and by the manifest fingerprint,
which sweeps derive from the sweep spec and audits from the resilience spec.

Since the columnar-results-plane refactor the *file format* is a pluggable
backend behind the :data:`STORE_BACKENDS` registry (the same
:class:`~repro.scenarios.registry.Registry` contract the mechanism and
executor layers use — see DESIGN.md, "The results plane"):

* ``jsonl`` — the interchange format and the default.  One JSON object per
  line: line 1 the manifest, every further line one completed round.
* ``columnar`` (:mod:`repro.scenarios.columnar`) — typed NumPy
  structured-array chunks, memory-mapped on read, strings interned via a
  per-file dictionary.  Built for 10^5+-record sweeps where parsing JSON
  per record dominates analysis time.

Every backend honours one contract (:class:`StoreBackend`):

* a **manifest** written first::

      {"kind": "manifest", "version": 1, "sweep": "<name>",
       "fingerprint": "<sha256 of the canonical sweep spec>",
       "total_rounds": <grid rounds>}

* **append** of ``(point, instance, record)`` rounds, flushed as they
  complete — per round under sequential execution, per worker chunk under
  parallel execution — in *completion* order; the ``point`` index makes
  reassembly order-independent.  Appending is O(1) I/O per record: opening
  an existing journal for resume reads it **once**, and no append re-reads
  what came before.

* **torn-tail tolerance**: a partial final line / chunk — the signature of
  a crash mid-append — is ignored on load and truncated away before the
  journal is re-opened for appending; corruption anywhere else is an error.

* **resume**: ``begin(sweep, resume=True)`` verifies the journal's manifest
  fingerprint against the run about to start (a changed sweep must go to a
  fresh path) and returns the rounds already journaled, which the engines
  then skip.  Journaled records rehydrate bit-identically — the canonical
  JSON of every rehydrated record is byte-equal across backends, which is
  why ``convert_journal`` (fingerprint-preserving) lets ``--resume``
  continue a run across formats.

* **summary**: streaming aggregation (:mod:`repro.scenarios.aggregate`)
  over the journal without materialising the record list.

The file's format is *sniffed* from its first bytes, so readers never need
to be told which backend wrote a journal; an explicit ``--store-format``
that contradicts the sniffed format is a spec error naming both formats.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.scenarios.aggregate import StreamingSummary
from repro.scenarios.registry import Registry
from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import ComponentSpec, SpecError, SweepSpec, sweep_to_dict

__all__ = [
    "ResultsStore",
    "StoreBackend",
    "JsonlStoreBackend",
    "STORE_BACKENDS",
    "DEFAULT_STORE_FORMAT",
    "sweep_fingerprint",
    "sniff_format",
    "make_backend",
    "convert_journal",
]

#: Key of one journaled round: (grid point index, workload instance).
RoundKey = Tuple[int, int]

#: One journaled round before rehydration: (point, instance, record dict).
RawRow = Tuple[int, int, Dict[str, Any]]

#: The interchange format; what a fresh path gets when no format is requested.
DEFAULT_STORE_FORMAT = "jsonl"

#: First bytes of a columnar journal (defined here so sniffing needs no import
#: of the columnar module; :mod:`repro.scenarios.columnar` re-uses it).
COLUMNAR_MAGIC = b"RPACOL1\n"

#: Store backends: journal file formats.  Factories are the backend classes,
#: invoked as ``cls(path=..., record_type=...)``.
STORE_BACKENDS = Registry("store backend")


def sweep_fingerprint(sweep: SweepSpec) -> str:
    """A stable digest of the sweep's full canonical spec (name, base, grid)."""
    payload = json.dumps(sweep_to_dict(sweep), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoreBackend:
    """The backend-agnostic results-journal contract.

    Subclasses implement the five format-specific primitives — ``_create``,
    ``_open_resume``, ``append_raw``, ``read_raw`` and ``summary`` — against
    *raw rows* (plain record dicts); this base class owns everything
    format-independent: the exists/resume guard, manifest validation, and
    rehydration through ``record_type.from_dict`` at the typed edge.  Keeping
    backends raw is what lets ``convert_journal`` and ``results summarize``
    work on any journal without knowing its record class.
    """

    #: Registry kind; subclasses must override with a non-empty literal
    #: (enforced by lint rule RPA008).
    kind = ""

    VERSION = 1

    def __init__(self, path: Union[str, os.PathLike], record_type=RunRecord) -> None:
        self.path = os.fspath(path)
        self.record_type = record_type

    # -- lifecycle (shared template) -------------------------------------------------
    def begin(
        self,
        sweep,
        total_rounds: int,
        *,
        resume: bool = False,
        fingerprint: Optional[str] = None,
    ) -> Dict[RoundKey, Any]:
        """Open the journal for this run and return the rounds it already holds.

        A fresh path gets a manifest; an existing journal requires
        ``resume=True`` (guarding against accidentally mixing two runs into
        one artifact) and a manifest matching the run about to start.
        ``sweep`` is the manifest owner — a :class:`SweepSpec` by default, or
        any named spec when ``fingerprint`` is supplied by the caller (the
        resilience executor passes its own audit fingerprint).
        """
        if fingerprint is None:
            fingerprint = sweep_fingerprint(sweep)
        if os.path.exists(self.path):
            if not resume:
                raise SpecError(
                    self.path,
                    "results journal already exists; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a new output path",
                )
            _manifest, rows = self._open_resume(fingerprint)
            return self._rehydrate(rows)
        self.create(
            {
                "kind": "manifest",
                "version": self.VERSION,
                "sweep": sweep.name,
                "fingerprint": fingerprint,
                "total_rounds": total_rounds,
            }
        )
        return {}

    def create(self, manifest: Dict[str, Any]) -> None:
        """Create a fresh journal holding exactly ``manifest`` (verbatim).

        ``convert_journal`` calls this directly with the source journal's
        manifest — including its fingerprint — which is what makes a
        converted journal resumable by the original run.
        """
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._create(dict(manifest))

    def append(self, point: int, instance: int, record) -> None:
        """Journal one completed round (durable by the next flush point)."""
        self.append_raw(point, instance, record.to_dict())

    def append_quarantine(
        self, point: int, instance: int, error: str, traceback: str = ""
    ) -> None:
        """Journal a round the crash-tolerant executor gave up on.

        Quarantine entries are diagnostics, not results: readers skip them
        (they are *not* part of the completed set), which is exactly what
        makes ``--resume`` re-execute quarantined rounds.  The default is a
        no-op so backends without a free-form line format (columnar) stay
        correct — the round is simply absent, which resumes identically.
        """

    def read(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], Dict[RoundKey, Any]]:
        """Load the journal: its manifest and the typed records it holds.

        With ``expected_fingerprint``, the manifest must match it — the
        resume path's guarantee that a journal is only ever continued by the
        sweep that started it.
        """
        manifest, rows = self.read_raw(expected_fingerprint=expected_fingerprint)
        return manifest, self._rehydrate(rows)

    def flush(self) -> None:
        """Make everything appended so far durable (no-op when not open)."""

    def close(self) -> None:
        """Flush and release the journal handle (idempotent)."""

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- format-specific primitives --------------------------------------------------
    def _create(self, manifest: Dict[str, Any]) -> None:
        """Write a fresh journal containing ``manifest`` and open it for append."""
        raise NotImplementedError

    def _open_resume(self, fingerprint: str) -> Tuple[Dict[str, Any], List[RawRow]]:
        """Validate + load an existing journal, repair its tail, open for append."""
        raise NotImplementedError

    def append_raw(self, point: int, instance: int, row: Dict[str, Any]) -> None:
        """Journal one raw record dict.  Must be O(1) I/O per record."""
        raise NotImplementedError

    def read_raw(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], List[RawRow]]:
        """Load the manifest and every raw row, in file order."""
        raise NotImplementedError

    def summary(self) -> Dict[str, Any]:
        """Streaming aggregate over the journal (never builds the record list)."""
        raise NotImplementedError

    # -- shared validation plumbing --------------------------------------------------
    def _validate_manifest(
        self, manifest: Any, expected_fingerprint: Optional[str]
    ) -> Dict[str, Any]:
        if not isinstance(manifest, dict) or manifest.get("kind") != "manifest":
            raise SpecError(
                self.path, "not a results journal (first line must be the manifest)"
            )
        if manifest.get("version") != self.VERSION:
            raise SpecError(
                self.path,
                f"unsupported results-journal version {manifest.get('version')!r} "
                f"(this build writes version {self.VERSION})",
            )
        if expected_fingerprint is not None and manifest.get("fingerprint") != expected_fingerprint:
            raise SpecError(
                self.path,
                "journal manifest does not match this sweep (its name, base spec "
                "or grid changed since the journal was written); choose a new "
                "output path for the changed sweep",
            )
        return manifest

    def _rehydrate(self, rows: List[RawRow]) -> Dict[RoundKey, Any]:
        completed: Dict[RoundKey, Any] = {}
        for point, instance, row in rows:
            try:
                completed[(int(point), int(instance))] = self.record_type.from_dict(row)
            except (KeyError, TypeError, ValueError) as exc:
                raise SpecError(
                    self.path, f"corrupt results journal: malformed record line ({exc})"
                ) from exc
        return completed

    def _summary_payload(
        self, manifest: Dict[str, Any], summary: StreamingSummary
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "path": self.path,
            "backend": self.kind,
            "sweep": manifest.get("sweep"),
            "fingerprint": manifest.get("fingerprint"),
            "total_rounds": manifest.get("total_rounds"),
        }
        payload.update(summary.to_dict())
        return payload


class JsonlStoreBackend(StoreBackend):
    """The interchange backend: an append-only JSONL journal.

    Human-greppable, diff-able, and readable by anything with a JSON parser;
    the price is O(records) text parsing on every read.  Opening for resume
    is a *single* pass — the same read that loads completed rounds computes
    the valid byte extent, so tail repair is a truncate, not a second scan.
    """

    kind = "jsonl"

    def __init__(self, path: Union[str, os.PathLike], record_type=RunRecord) -> None:
        super().__init__(path, record_type)
        self._handle = None

    # -- primitives ------------------------------------------------------------------
    def _create(self, manifest: Dict[str, Any]) -> None:
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write(manifest)

    def _open_resume(self, fingerprint: str) -> Tuple[Dict[str, Any], List[RawRow]]:
        entries, valid_end, needs_newline = self._load()
        manifest, rows = self._interpret(entries, fingerprint)
        # Tail repair without a second read: ``_load`` already knows how many
        # leading bytes parse cleanly.  A torn final line is truncated away (a
        # record after it would weld onto the partial text — one line lost and
        # one permanently invalid); a valid final line whose trailing newline
        # never reached the disk gets it now.
        size = os.path.getsize(self.path)
        if valid_end < size:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
        elif needs_newline:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
        self._handle = open(self.path, "a", encoding="utf-8")
        return manifest, rows

    def append_raw(self, point: int, instance: int, row: Dict[str, Any]) -> None:
        if self._handle is None:
            raise SpecError(self.path, "results journal is not open; call begin() first")
        self._write(
            {"kind": "record", "point": int(point), "instance": int(instance), "record": row}
        )

    def append_quarantine(
        self, point: int, instance: int, error: str, traceback: str = ""
    ) -> None:
        """Journal the failure record of a quarantined round.

        ``_interpret`` skips non-``record`` kinds, so quarantine lines never
        enter the completed set — a later ``--resume`` re-executes the round
        — but the error and worker traceback survive in the artifact for
        forensics (``grep '"kind":"quarantine"' journal.jsonl``).
        """
        if self._handle is None:
            raise SpecError(self.path, "results journal is not open; call begin() first")
        entry: Dict[str, Any] = {
            "kind": "quarantine",
            "point": int(point),
            "instance": int(instance),
            "error": str(error),
        }
        if traceback:
            entry["traceback"] = str(traceback)
        self._write(entry)

    def read_raw(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], List[RawRow]]:
        entries, _valid_end, _needs_newline = self._load()
        return self._interpret(entries, expected_fingerprint)

    def summary(self) -> Dict[str, Any]:
        """Stream the journal line-by-line into constant-size accumulators.

        Rows are parsed, folded into :class:`StreamingSummary` and dropped;
        neither the record list nor any record object is ever built.  A torn
        final line is tolerated exactly as in ``read``.
        """
        self.flush()
        summary = StreamingSummary()
        manifest: Optional[Dict[str, Any]] = None
        pending_error: Optional[int] = None
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            raise SpecError(self.path, "results journal not found") from None
        except OSError as exc:
            raise SpecError(self.path, f"cannot read results journal: {exc}") from exc
        with handle:
            for number, line in enumerate(handle, start=1):
                if pending_error is not None:
                    raise SpecError(
                        self.path,
                        f"corrupt results journal: line {pending_error} is not valid JSON",
                    )
                text = line.strip()
                if not text:
                    continue
                try:
                    entry = json.loads(text)
                except ValueError:
                    pending_error = number  # only an error if any line follows
                    continue
                if manifest is None:
                    manifest = self._validate_manifest(entry, None)
                    continue
                if isinstance(entry, dict) and entry.get("kind") == "record":
                    row = entry.get("record")
                    if isinstance(row, dict):
                        summary.add_row(row)
        if manifest is None:
            raise SpecError(
                self.path, "not a results journal (first line must be the manifest)"
            )
        return self._summary_payload(manifest, summary)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- plumbing --------------------------------------------------------------------
    def _load(self) -> Tuple[List[Any], int, bool]:
        """Single-pass parse: (entries, valid byte extent, missing final newline).

        ``valid_end`` is the byte offset up to which the file parses cleanly;
        a torn final line (crash mid-append) lies beyond it and is simply not
        part of the journal.  Corruption on any non-final line is an error.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise SpecError(self.path, "results journal not found") from None
        except OSError as exc:
            raise SpecError(self.path, f"cannot read results journal: {exc}") from exc

        segments = data.splitlines(keepends=True)
        entries: List[Any] = []
        valid_end = 0
        torn = False
        for number, segment in enumerate(segments, start=1):
            stripped = segment.strip()
            if not stripped:
                valid_end += len(segment)
                continue
            try:
                entries.append(json.loads(stripped.decode("utf-8")))
            except (UnicodeDecodeError, ValueError):
                if number == len(segments):
                    torn = True  # torn final line: crash mid-append; the rest is intact
                    break
                raise SpecError(
                    self.path, f"corrupt results journal: line {number} is not valid JSON"
                ) from None
            valid_end += len(segment)
        needs_newline = not torn and bool(data) and not data.endswith(b"\n")
        return entries, valid_end, needs_newline

    def _interpret(
        self, entries: List[Any], expected_fingerprint: Optional[str]
    ) -> Tuple[Dict[str, Any], List[RawRow]]:
        if not entries:
            raise SpecError(
                self.path, "not a results journal (first line must be the manifest)"
            )
        manifest = self._validate_manifest(entries[0], expected_fingerprint)
        rows: List[RawRow] = []
        for entry in entries[1:]:
            if not isinstance(entry, dict) or entry.get("kind") != "record":
                continue  # unknown line kinds: written by a newer build, skip
            try:
                rows.append((int(entry["point"]), int(entry["instance"]), entry["record"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise SpecError(
                    self.path, f"corrupt results journal: malformed record line ({exc})"
                ) from exc
        return manifest, rows

    def _write(self, entry: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()


def sniff_format(path: Union[str, os.PathLike]) -> Optional[str]:
    """Identify which backend wrote the journal at ``path`` (None when absent).

    Columnar journals start with :data:`COLUMNAR_MAGIC`; anything else is
    treated as ``jsonl`` so that the jsonl backend — not the sniffer —
    produces the canonical diagnostics for files that are no journal at all.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(COLUMNAR_MAGIC))
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise SpecError(path, f"cannot read results journal: {exc}") from exc
    return "columnar" if head == COLUMNAR_MAGIC else "jsonl"


def make_backend(
    kind: str, path: Union[str, os.PathLike], record_type=RunRecord
) -> StoreBackend:
    """Instantiate the registered backend ``kind`` for ``path``.

    Unknown kinds become a path-precise :class:`SpecError` listing what is
    registered — the same contract every other registry in the library has.
    """
    path = os.fspath(path)
    spec = ComponentSpec(kind, {"path": path, "record_type": record_type})
    return STORE_BACKENDS.create(spec, path)


class ResultsStore:
    """A results journal with a pluggable file format.

    The store facade every engine writes through.  ``format`` picks the
    backend for a *fresh* path (default ``jsonl``); existing files are
    sniffed, so readers never state a format — and an explicit ``format``
    contradicting what is on disk is a spec error pointing at
    ``repro-auction results convert`` rather than a parse failure deep in
    the wrong backend.
    """

    VERSION = StoreBackend.VERSION

    def __init__(
        self,
        path: Union[str, os.PathLike],
        record_type=RunRecord,
        format: Optional[str] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.record_type = record_type
        self.format = format
        self._backend: Optional[StoreBackend] = None

    # -- backend resolution ----------------------------------------------------------
    @property
    def backend(self) -> StoreBackend:
        """The resolved backend (sniffs the file on first use)."""
        if self._backend is None:
            on_disk = sniff_format(self.path)
            if on_disk is not None and self.format is not None and on_disk != self.format:
                raise SpecError(
                    self.path,
                    f"this journal holds {on_disk!r} data but --store-format "
                    f"requested {self.format!r}; drop --store-format to use the "
                    f"journal as-is, or rewrite it first with "
                    f"'repro-auction results convert {self.path} NEW_PATH "
                    f"--to {self.format}'",
                )
            kind = on_disk or self.format or DEFAULT_STORE_FORMAT
            self._backend = make_backend(kind, self.path, record_type=self.record_type)
        self._backend.record_type = self.record_type  # honour late reassignment
        return self._backend

    @property
    def backend_kind(self) -> str:
        return self.backend.kind

    # -- delegated journal surface ---------------------------------------------------
    def begin(
        self,
        sweep,
        total_rounds: int,
        *,
        resume: bool = False,
        fingerprint: Optional[str] = None,
    ) -> Dict[RoundKey, Any]:
        return self.backend.begin(
            sweep, total_rounds, resume=resume, fingerprint=fingerprint
        )

    def append(self, point: int, instance: int, record) -> None:
        self.backend.append(point, instance, record)

    def append_quarantine(
        self, point: int, instance: int, error: str, traceback: str = ""
    ) -> None:
        self.backend.append_quarantine(point, instance, error, traceback)

    def read(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], Dict[RoundKey, Any]]:
        return self.backend.read(expected_fingerprint=expected_fingerprint)

    def summary(self) -> Dict[str, Any]:
        return self.backend.summary()

    def flush(self) -> None:
        if self._backend is not None:
            self._backend.flush()

    def close(self) -> None:
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def convert_journal(
    source: Union[str, os.PathLike],
    destination: Union[str, os.PathLike],
    to: Optional[str] = None,
) -> Dict[str, Any]:
    """Rewrite the journal at ``source`` into ``destination`` in another format.

    The manifest is copied **verbatim** — fingerprint included — so the
    converted journal answers ``--resume`` for exactly the run that produced
    the original; rows are copied raw, in file order, preserving the
    duplicate-round later-wins semantics of ``read``.  ``to`` defaults to
    "the other" format of the jsonl/columnar pair.
    """
    source = os.fspath(source)
    destination = os.fspath(destination)
    source_kind = sniff_format(source)
    if source_kind is None:
        raise SpecError(source, "results journal not found")
    if to is not None and to not in STORE_BACKENDS:
        raise SpecError(
            "--to",
            f"unknown store backend kind {to!r}; "
            f"available: {', '.join(STORE_BACKENDS.available())}",
        )
    target_kind = to or ("columnar" if source_kind == "jsonl" else "jsonl")
    if target_kind == source_kind:
        raise SpecError(
            destination,
            f"journal at {source} already holds {source_kind!r} data; "
            f"pick a different --to format",
        )
    if os.path.exists(destination):
        raise SpecError(
            destination,
            "results journal already exists; choose a fresh output path "
            "for the converted copy",
        )
    reader = make_backend(source_kind, source)
    manifest, rows = reader.read_raw()
    writer = make_backend(target_kind, destination)
    try:
        writer.create(manifest)
        for point, instance, row in rows:
            writer.append_raw(point, instance, row)
    finally:
        writer.close()
    return {
        "source": source,
        "destination": destination,
        "from": source_kind,
        "to": target_kind,
        "records": len(rows),
    }


STORE_BACKENDS.register("jsonl", JsonlStoreBackend)

# The columnar backend registers itself on import; importing it last keeps the
# cycle harmless (columnar.py imports the contract from this module, which is
# fully defined by here).  The guard covers the reverse entry order — someone
# importing repro.scenarios.columnar directly — where that module is already
# mid-initialisation and will finish registering itself.
if "columnar" not in STORE_BACKENDS:
    import repro.scenarios.columnar  # noqa: E402,F401  (registration import)
