"""Persistent sweep results: an append-only JSONL journal with a manifest.

One :class:`ResultsStore` file is both the sweep's durable artifact and its
checkpoint.  The same machinery journals resilience audits
(:mod:`repro.scenarios.resilience`): the store is parametrised by a record
type (any class with a lossless ``to_dict``/``from_dict`` pair — default
:class:`~repro.scenarios.runner.RunRecord`) and by the manifest fingerprint,
which sweeps derive from the sweep spec and audits from the resilience spec.
The format is one JSON object per line:

* line 1 — the manifest::

      {"kind": "manifest", "version": 1, "sweep": "<name>",
       "fingerprint": "<sha256 of the canonical sweep spec>",
       "total_rounds": <grid rounds>}

* every further line — one completed round::

      {"kind": "record", "point": <grid index>, "instance": <round>,
       "record": {<RunRecord.to_dict()>}}

Records are appended (and flushed) as they complete — per round under
sequential execution, per worker chunk under parallel execution — in
*completion* order, not grid order; the ``point`` index makes reassembly
order-independent.  A torn final line — the signature of a crash mid-append
— is ignored on load and repaired (truncated) before the journal is
re-opened for appending; corruption anywhere else is an error.

Resume semantics: ``begin(sweep, resume=True)`` verifies the journal's
manifest fingerprint against the sweep about to run (same name, base spec
and grid — a changed sweep must go to a fresh path) and returns the rounds
already journaled, which the sweep engine then skips.  Journaled records
rehydrate bit-identically: ``json`` round-trips floats exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple, Union

from repro.scenarios.runner import RunRecord
from repro.scenarios.spec import SpecError, SweepSpec, sweep_to_dict

__all__ = ["ResultsStore", "sweep_fingerprint"]

#: Key of one journaled round: (grid point index, workload instance).
RoundKey = Tuple[int, int]


def sweep_fingerprint(sweep: SweepSpec) -> str:
    """A stable digest of the sweep's full canonical spec (name, base, grid)."""
    payload = json.dumps(sweep_to_dict(sweep), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultsStore:
    """An append-only JSONL journal of sweep records plus a run manifest."""

    VERSION = 1

    def __init__(
        self, path: Union[str, os.PathLike], record_type=RunRecord
    ) -> None:
        self.path = os.fspath(path)
        self.record_type = record_type
        self._handle = None

    # -- lifecycle -----------------------------------------------------------------
    def begin(
        self,
        sweep,
        total_rounds: int,
        *,
        resume: bool = False,
        fingerprint: Optional[str] = None,
    ) -> Dict[RoundKey, Any]:
        """Open the journal for this run and return the rounds it already holds.

        A fresh path gets a manifest line; an existing journal requires
        ``resume=True`` (guarding against accidentally mixing two runs into
        one artifact) and a manifest matching the run about to start.
        ``sweep`` is the manifest owner — a :class:`SweepSpec` by default, or
        any named spec when ``fingerprint`` is supplied by the caller (the
        resilience executor passes its own audit fingerprint).
        """
        if fingerprint is None:
            fingerprint = sweep_fingerprint(sweep)
        completed: Dict[RoundKey, Any] = {}
        if os.path.exists(self.path):
            if not resume:
                raise SpecError(
                    self.path,
                    "results journal already exists; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a new output path",
                )
            _manifest, completed = self.read(expected_fingerprint=fingerprint)
            self._repair_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write(
                {
                    "kind": "manifest",
                    "version": self.VERSION,
                    "sweep": sweep.name,
                    "fingerprint": fingerprint,
                    "total_rounds": total_rounds,
                }
            )
        return completed

    def append(self, point: int, instance: int, record) -> None:
        """Journal one completed round (flushed immediately)."""
        if self._handle is None:
            raise SpecError(self.path, "results journal is not open; call begin() first")
        self._write(
            {
                "kind": "record",
                "point": point,
                "instance": instance,
                "record": record.to_dict(),
            }
        )

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------------
    def read(
        self, expected_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], Dict[RoundKey, Any]]:
        """Load the journal: its manifest and the records it holds.

        With ``expected_fingerprint``, the manifest must match it — the
        resume path's guarantee that a journal is only ever continued by the
        sweep that started it.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            raise SpecError(self.path, "results journal not found") from None
        except OSError as exc:
            raise SpecError(self.path, f"cannot read results journal: {exc}") from exc

        entries = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if number == len(lines):
                    break  # torn final line: crash mid-append; the rest is intact
                raise SpecError(
                    self.path, f"corrupt results journal: line {number} is not valid JSON"
                ) from None
        if not entries or not isinstance(entries[0], dict) or entries[0].get("kind") != "manifest":
            raise SpecError(
                self.path, "not a results journal (first line must be the manifest)"
            )
        manifest = entries[0]
        if manifest.get("version") != self.VERSION:
            raise SpecError(
                self.path,
                f"unsupported results-journal version {manifest.get('version')!r} "
                f"(this build writes version {self.VERSION})",
            )
        if expected_fingerprint is not None and manifest.get("fingerprint") != expected_fingerprint:
            raise SpecError(
                self.path,
                "journal manifest does not match this sweep (its name, base spec "
                "or grid changed since the journal was written); choose a new "
                "output path for the changed sweep",
            )
        completed: Dict[RoundKey, Any] = {}
        for entry in entries[1:]:
            if not isinstance(entry, dict) or entry.get("kind") != "record":
                continue  # unknown line kinds: written by a newer build, skip
            try:
                key = (int(entry["point"]), int(entry["instance"]))
                completed[key] = self.record_type.from_dict(entry["record"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SpecError(
                    self.path, f"corrupt results journal: malformed record line ({exc})"
                ) from exc
        return manifest, completed

    # -- plumbing ------------------------------------------------------------------
    def _repair_torn_tail(self) -> None:
        """Make the journal append-safe after a crash mid-append.

        ``read`` *tolerates* a torn final line, but appending after one would
        concatenate the next record onto the partial text, losing that record
        and leaving an invalid line in the middle of the file — permanently
        unreadable once anything follows it.  So before re-opening for
        append: drop an unparsable final line, and newline-terminate a valid
        final line whose trailing ``\\n`` never made it to disk.
        """
        with open(self.path, "rb") as handle:
            data = handle.read()
        lines = data.splitlines(keepends=True)
        if not lines:
            return
        tail = lines[-1].strip()
        torn = False
        if tail:
            try:
                json.loads(tail.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                torn = True
        if torn:
            with open(self.path, "wb") as handle:
                handle.write(b"".join(lines[:-1]))
        elif not data.endswith(b"\n"):
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def _write(self, entry: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()
